//! The end-to-end **live** pipeline: a simulated archive re-published
//! in compressed wall-clock time by a faulty `LiveFeeder`, tailed by a
//! watermark-released live stream, consumed by the sharded runtime's
//! `run_live` — which closes time bins off the broker watermark, not
//! stream EOF. This is also the binary CI's `live-soak` job drives.
//!
//! ```sh
//! # ~15 s of wall clock: one virtual hour at 240x (from a terminal;
//! # closing stdin — ctrl-d — requests a clean shutdown). With stdin
//! # redirected from /dev/null (CI), pass --no-stdin or the instant
//! # EOF reads as a shutdown request.
//! cargo run --release --example live_pipeline
//! # instant cooperative-shutdown check (the ctrl-c path):
//! cargo run --release --example live_pipeline -- --shutdown-test < /dev/null
//! ```
//!
//! Exit codes: `0` success; `2` records were dropped; `3` too few
//! bins; `4` the watchdog expired (livelock — the soak's reason to
//! exist); `5` peak RSS exceeded the cap (a reader went back to
//! slurping whole files instead of streaming bounded windows).
//! Shutdown is cooperative: closing stdin (the ctrl-c /
//! SIGTERM-equivalent path in this dependency-free setup) raises a
//! flag that `run_live` honours between steps, so teardown can never
//! hang.
//!
//! The archive is gzip-compressed **in place** after simulation, so
//! every open below — the historical ground-truth reads and the live
//! tail — exercises sniff → streaming inflate → framing; the live
//! stream additionally decodes with `DecodeMode::Parallel`, so the
//! zero-dropped-records comparison against the sequential historical
//! run re-proves decode-mode equivalence end to end.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bgpstream_repro::bgpstream::{BgpStream, Clock, DecodeMode};
use bgpstream_repro::broker::{Index, LocalBroker};
use bgpstream_repro::collector_sim::feeder::bgpstream_clock::SharedClock;
use bgpstream_repro::collector_sim::{CrashPlan, FaultPlan, LiveFeeder, Stall, WorkerKill};
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{
    run_pipeline_until, Chaos, ElemCounter, KillSpec, PfxMonitor, Plugin, Supervisor,
    SupervisorConfig,
};
use bgpstream_repro::worlds;

struct Args {
    /// Virtual seconds replayed per wall second.
    speed: u64,
    /// Minimum bins the soak must close.
    min_bins: u64,
    /// Shard workers.
    workers: usize,
    /// Watchdog: raise the stop flag (and fail) after this much wall
    /// time — a livelocked pipeline must fail loudly, not stall CI.
    max_wall_secs: u64,
    /// Only prove the cooperative-shutdown path: raise the stop flag
    /// up front and require a prompt, clean exit.
    shutdown_test: bool,
    /// Do not watch stdin for shutdown (CI soak: stdin is /dev/null,
    /// whose immediate EOF would otherwise abort the run — and piping
    /// from `sleep` to keep it open stalls the step for the sleep's
    /// full duration after the soak finishes).
    no_stdin: bool,
    /// Peak-RSS cap in MiB (`VmHWM` from `/proc/self/status`). The
    /// readers stream dumps through bounded windows; a regression to
    /// whole-file (or whole-decompressed-file) slurping shows up here.
    max_rss_mb: u64,
    /// Chaos soak: schedule worker kills (including a restart storm)
    /// and torn checkpoint writes, run under the supervisor, and
    /// require the zero-dropped-records claim to survive the crashes.
    chaos: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        speed: 240,
        min_bins: 10,
        workers: 2,
        max_wall_secs: 120,
        shutdown_test: false,
        no_stdin: false,
        max_rss_mb: 512,
        chaos: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a numeric value"))
        };
        match a.as_str() {
            "--speed" => args.speed = num("--speed").max(1),
            "--min-bins" => args.min_bins = num("--min-bins"),
            "--workers" => args.workers = num("--workers").max(1) as usize,
            "--max-wall-secs" => args.max_wall_secs = num("--max-wall-secs").max(1),
            "--shutdown-test" => args.shutdown_test = true,
            "--no-stdin" => args.no_stdin = true,
            "--max-rss-mb" => args.max_rss_mb = num("--max-rss-mb").max(1),
            "--chaos" => args.chaos = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// Peak resident set (`VmHWM`) in KiB, where the platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = parse_args();
    const BIN: u64 = 300;

    // 1. Simulate the archive (one virtual hour, two collectors).
    let dir = worlds::scratch_dir("live-pipeline");
    let mut world = worlds::quickstart(dir.clone(), 42);
    world.sim.run_until(world.info.horizon);
    let manifest = world.sim.manifest().to_vec();
    println!(
        "# archive: {} files, {} records over {} virtual seconds",
        world.sim.stats().files,
        world.sim.stats().records,
        world.info.horizon
    );

    // 1b. Compress the archive in place, as the real projects publish
    //     it. Every open below — historical and live — must sniff the
    //     gzip magic and stream-decompress into bounded windows.
    let mut gz_bytes = 0u64;
    for m in &manifest {
        use std::io::Write as _;
        let plain = std::fs::read(&m.path).expect("archive file readable");
        let mut enc =
            flate_lite::write::GzEncoder::new(Vec::new(), flate_lite::Compression::fast());
        enc.write_all(&plain).expect("compress archive file");
        let gz = enc.finish().expect("finish gzip member");
        gz_bytes += gz.len() as u64;
        std::fs::write(&m.path, gz).expect("rewrite compressed file");
    }
    println!(
        "# archive gzip-compressed in place: {} -> {} bytes",
        world.sim.stats().bytes,
        gz_bytes
    );

    // 2. Historical ground truth: what a batch run over the final
    //    archive delivers. The soak's "zero dropped records" claim is
    //    live == this, to the record and to the elem.
    let mut hist_stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();
    let mut max_ts = 0u64;
    let mut probe = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();
    while let Some(r) = probe.next_record() {
        max_ts = max_ts.max(r.timestamp);
    }
    let stop = (max_ts / BIN) * BIN + BIN;
    let mut hist_stats = ElemCounter::new();
    let expected_records = run_pipeline_until(
        &mut hist_stream,
        BIN,
        stop,
        &mut [&mut hist_stats as &mut dyn Plugin],
    );
    let expected_elems = hist_stats.total_elems();

    // 3. Re-publish the archive live, with a deliberately hostile
    //    schedule: delay jitter, a mid-run stall, out-of-order and
    //    duplicate publications. The feeder maintains a truthful
    //    watermark, so none of this can drop records — only delay
    //    them.
    let live_index = Arc::new(Index::with_window(900));
    let plan = FaultPlan {
        extra_delay: (0, 120),
        stalls: vec![Stall {
            start: world.info.horizon / 3,
            duration: 400,
            collector: Some(0),
        }],
        swap_prob: 0.10,
        duplicate_prob: 0.20,
        // Under --chaos, workers die mid-bin at fixed fractions of the
        // record count — including one record that kills its worker
        // twice in a row (a restart storm) — and two checkpoint writes
        // are torn mid-flush. The supervisor must absorb all of it.
        crash: if args.chaos {
            let n = expected_records;
            CrashPlan {
                kills: vec![
                    WorkerKill {
                        worker: 0,
                        at_record: n / 6,
                        times: 1,
                    },
                    WorkerKill {
                        worker: 1 % args.workers,
                        at_record: n / 3,
                        times: 1,
                    },
                    WorkerKill {
                        worker: 0,
                        at_record: n / 2,
                        times: 1,
                    },
                    // Restart storm: re-fires on the post-restart replay.
                    WorkerKill {
                        worker: 1 % args.workers,
                        at_record: 3 * n / 4,
                        times: 2,
                    },
                ],
                torn_checkpoints: vec![(0, 1), (1 % args.workers, 2)],
            }
        } else {
            CrashPlan::none()
        },
    };
    let feeder = LiveFeeder::new(&manifest, live_index.clone(), &plan, 7);
    let drain_to = feeder.horizon().saturating_add(1);
    let shared = SharedClock::new(0);
    let clock = Clock::Manual(shared.0.clone());
    let stop_flag = Arc::new(AtomicBool::new(false));
    let timed_out = Arc::new(AtomicBool::new(false));

    // Cooperative shutdown: stdin EOF (the pipe closing is this
    // harness's ctrl-c) raises the same flag run_live polls.
    if !args.no_stdin {
        let flag = stop_flag.clone();
        std::thread::spawn(move || {
            use std::io::Read as _;
            let mut sink = Vec::new();
            let _ = std::io::stdin().read_to_end(&mut sink);
            flag.store(true, Ordering::SeqCst);
        });
    }
    // Watchdog: a livelock anywhere in the pipeline must fail the
    // process, not stall it.
    {
        let flag = stop_flag.clone();
        let timed_out = timed_out.clone();
        let max = args.max_wall_secs;
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(max));
            timed_out.store(true, Ordering::SeqCst);
            flag.store(true, Ordering::SeqCst);
        });
    }
    if args.shutdown_test {
        stop_flag.store(true, Ordering::SeqCst);
    }
    let feeder_handle = feeder.spawn_compressed(shared, args.speed, drain_to, stop_flag.clone());

    // 4. Tail it: live stream (watermark release) into run_live.
    let ranges: Vec<_> = world
        .sim
        .control_plane()
        .topology()
        .nodes
        .iter()
        .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
        .collect();
    let mut monitor = PfxMonitor::new(ranges);
    let mut stats = ElemCounter::new();
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(2))
        .decode_mode(DecodeMode::Parallel(args.workers))
        .start();
    let runtime = ShardedRuntime::builder()
        .workers(args.workers)
        .bin_size(BIN)
        .build();
    let wall_start = std::time::Instant::now();
    let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut monitor, &mut stats];
    let report = if args.chaos {
        let expected_fires: u64 = plan.crash.kills.iter().map(|k| k.times as u64).sum();
        let report = Supervisor::new(runtime)
            .with_config(SupervisorConfig {
                max_restarts: 8,
                backoff_base_ms: 5,
                backoff_max_ms: 50,
                stall_timeout_ms: 60_000,
                ..SupervisorConfig::default()
            })
            .with_chaos(Chaos {
                kills: plan
                    .crash
                    .kills
                    .iter()
                    .map(|k| KillSpec {
                        worker: k.worker,
                        at_record: k.at_record,
                        times: k.times,
                    })
                    .collect(),
                torn_checkpoints: plan.crash.torn_checkpoints.clone(),
            })
            .run_live(&mut stream, stop, Some(&stop_flag), &mut plugins)
            .expect("supervised run_live");
        println!(
            "# chaos: {} restarts ({} kills scheduled), {} partial bins",
            report.restarts,
            expected_fires,
            report.partial_bins.len()
        );
        if !report.shutdown {
            assert_eq!(
                report.restarts, expected_fires,
                "every scheduled kill must fire and restart exactly once"
            );
            assert!(
                report.partial_bins.is_empty(),
                "bounded kill schedule must never exhaust the restart budget"
            );
        }
        report
    } else {
        runtime
            .run_live(&mut stream, stop, Some(&stop_flag), &mut plugins)
            .expect("run_live")
    };
    stop_flag.store(true, Ordering::SeqCst);
    let feeder_stats = feeder_handle.join().expect("feeder thread");
    println!(
        "# live: {} records, {} bins, {} elems in {:.1}s wall \
         (feeder: {} files published, {} duplicate publications)",
        report.records,
        report.bins_closed,
        stats.total_elems(),
        wall_start.elapsed().as_secs_f64(),
        feeder_stats.published,
        feeder_stats.duplicates,
    );
    std::fs::remove_dir_all(&dir).ok();

    if timed_out.load(Ordering::SeqCst) {
        eprintln!(
            "FAIL: watchdog expired after {}s — livelock",
            args.max_wall_secs
        );
        std::process::exit(4);
    }
    if args.shutdown_test {
        assert!(report.shutdown, "stop flag must be honoured");
        println!("OK: cooperative shutdown path clean (no hang, workers joined)");
        return;
    }
    if report.shutdown {
        // stdin closed early: a clean-but-shortened run. Still a
        // success for the shutdown path, but the soak assertions need
        // the full session.
        println!("OK: early cooperative shutdown (stdin closed)");
        return;
    }
    if report.records != expected_records || stats.total_elems() != expected_elems {
        eprintln!(
            "FAIL: dropped data — live {}/{} records, {}/{} elems",
            report.records,
            expected_records,
            stats.total_elems(),
            expected_elems
        );
        std::process::exit(2);
    }
    if report.bins_closed < args.min_bins {
        eprintln!(
            "FAIL: only {} bins closed, expected at least {}",
            report.bins_closed, args.min_bins
        );
        std::process::exit(3);
    }
    if let Some(kb) = peak_rss_kb() {
        let mb = kb / 1024;
        println!("# peak RSS: {mb} MiB (cap {} MiB)", args.max_rss_mb);
        if mb > args.max_rss_mb {
            eprintln!(
                "FAIL: peak RSS {mb} MiB exceeds {} MiB — a reader is \
                 slurping whole (decompressed) files instead of streaming",
                args.max_rss_mb
            );
            std::process::exit(5);
        }
    }
    println!(
        "OK: zero dropped records ({} == historical), {} bins closed",
        report.records, report.bins_closed
    );
}
