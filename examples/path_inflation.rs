//! AS-path inflation (paper §4.2, Listing 1).
//!
//! Reads one day's RIB dumps from all collectors, compares the
//! observed BGP AS-path lengths against shortest paths on the
//! undirected AS graph built from the same data, and reports how much
//! routing policy inflates paths. The paper finds >30 % of
//! <VP, origin> pairs inflated by 1–11 hops.
//!
//! ```sh
//! cargo run --release --example path_inflation
//! ```

use bgpstream_repro::analytics::{path_inflation, rib_partitions};
use bgpstream_repro::worlds;

fn main() {
    let dir = worlds::scratch_dir("inflation");
    // A static (months = 0) full-size topology, four collectors.
    let (world, times) = worlds::longitudinal(
        dir.clone(),
        42,
        0,
        1,
        Some(bgpstream_repro::topology::TopologyConfig {
            seed: 42,
            n_transit: 80,
            n_edge: 500,
            ..Default::default()
        }),
    );
    let t = times[0];
    let parts = rib_partitions(&world.index, t, t);
    println!("# {} RIB partitions at t={}", parts.len(), t);

    let report = path_inflation(&world.index, &parts, 8);
    println!("pairs compared:        {}", report.pairs);
    println!(
        "inflated pairs:        {:.1}%  (paper: >30% on 2015 data, >20% on 2000-2001 data)",
        report.inflated_frac * 100.0
    );
    println!("max extra hops:        {}", report.max_extra_hops);
    println!("extra-hops histogram:");
    for (extra, n) in &report.histogram {
        println!(
            "  +{extra:2} hops: {n:8}  ({:.2}%)",
            *n as f64 * 100.0 / report.pairs as f64
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
