//! BGPReader (paper §4.1): the bgpdump-compatible command-line tool.
//!
//! Reads a CSV-manifest archive (as written by the collector
//! simulator) and prints matching elems in ASCII, one per line.
//!
//! ```sh
//! # Generate an archive first, then read it back:
//! cargo run --example bgpreader -- --demo
//! cargo run --example bgpreader -- <manifest.csv> [options]
//! ```
//!
//! Options (mirroring bgpreader's):
//!   -t <ribs|updates>   dump type filter
//!   -p <project>        project filter
//!   -c <collector>      collector filter
//!   -w <start>[,<end>]  time window (virtual seconds)
//!   -k <prefix>         keep only elems overlapping this prefix
//!   -j <peer-asn>       keep only elems from this VP
//!   -f <expression>     filter-language string, e.g.
//!                       "type updates and prefix more 11.0.0.0/8 and comm *:666"
//!   -m                  bgpdump one-line output format (drop-in mode)
//!   --json              ExaBGP-style JSON lines

use bgpstream_repro::bgpstream::ascii;
use bgpstream_repro::prelude::*;
use bgpstream_repro::worlds;

enum Format {
    Native,
    Bgpdump,
    Json,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!("usage: bgpreader (--demo | <manifest.csv>) [-t type] [-p project] [-c collector] [-w start[,end]] [-k prefix] [-j peer-asn]");
        std::process::exit(2);
    }

    // --demo: build a small archive on the fly and read that.
    let (manifest, scratch) = if args[0] == "--demo" {
        let dir = worlds::scratch_dir("bgpreader");
        let mut world = worlds::quickstart(dir.clone(), 7);
        world.sim.run_until(world.info.horizon);
        let manifest = world.sim.write_manifest().expect("manifest");
        (manifest, Some(dir))
    } else {
        (std::path::PathBuf::from(&args[0]), None)
    };

    let mut builder = BgpStream::builder().data_interface(DataInterface::CsvFile(manifest));
    let mut format = Format::Native;
    let mut start = 0u64;
    let mut end: Option<u64> = Some(u64::MAX - 1);
    let mut i = 1;
    while i + 1 < args.len() + 1 {
        let Some(flag) = args.get(i) else { break };
        let value = args.get(i + 1);
        match (flag.as_str(), value) {
            ("-t", Some(v)) => {
                builder = builder.record_type(v.parse::<DumpType>().expect("dump type"));
                i += 2;
            }
            ("-p", Some(v)) => {
                builder = builder.project(v);
                i += 2;
            }
            ("-c", Some(v)) => {
                builder = builder.collector(v);
                i += 2;
            }
            ("-w", Some(v)) => {
                let (s, e) = v.split_once(',').unwrap_or((v.as_str(), ""));
                start = s.parse().expect("window start");
                if !e.is_empty() {
                    end = Some(e.parse().expect("window end"));
                }
                i += 2;
            }
            ("-k", Some(v)) => {
                let p: Prefix = v.parse().expect("prefix");
                builder = builder.filter_prefix(p, PrefixMatch::MoreSpecific);
                i += 2;
            }
            ("-j", Some(v)) => {
                builder = builder.filter_peer_asn(Asn(v.parse().expect("asn")));
                i += 2;
            }
            ("-f", Some(v)) => {
                builder = match builder.filter_string(v) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("bad filter expression: {e}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            ("-m", _) => {
                format = Format::Bgpdump;
                i += 1;
            }
            ("--json", _) => {
                format = Format::Json;
                i += 1;
            }
            _ => {
                eprintln!("unknown/incomplete option {flag}");
                std::process::exit(2);
            }
        }
    }

    // `try_start` resolves the manifest here: a missing or malformed
    // CSV surfaces as a typed `BrokerError` before any reading begins.
    let mut stream = match builder.interval(start, end).try_start() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut n = 0u64;
    while let Some(record) = stream.next_record() {
        for elem in record.elems() {
            let line = match format {
                Format::Native => ascii::elem_line(&record, elem),
                Format::Bgpdump => ascii::bgpdump_line(elem),
                Format::Json => ascii::elem_json(&record, elem),
            };
            println!("{line}");
            n += 1;
        }
    }
    eprintln!("# {n} elems");
    if let Some(dir) = scratch {
        std::fs::remove_dir_all(&dir).ok();
    }
}
