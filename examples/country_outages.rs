//! Country-level outage monitoring (paper §6.2.4, Figure 10 — the
//! Iraq 2015 exam-blackout case study).
//!
//! The full §6.2 architecture in one process: per-collector BGPCorsaro
//! instances run the routing-tables (RT) plugin, publish per-bin diffs
//! to the Kafka-like queue, a sync server aligns collectors per bin,
//! and the per-country outage consumer counts visible prefixes
//! geolocated to the affected country.
//!
//! ```sh
//! cargo run --release --example country_outages
//! ```

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::{GeoMap, GlobalView, OutageConsumer};
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::mq::{Cluster, SyncPolicy, SyncServer};
use bgpstream_repro::worlds;

fn main() {
    let dir = worlds::scratch_dir("outage");
    let horizon = 24 * 3600;
    let mut world = worlds::outage_scenario(dir.clone(), 42, horizon, 2);
    let country = world.info.country.unwrap();
    let cc = String::from_utf8_lossy(&country).into_owned();
    println!(
        "# country {cc}: ISPs {:?} go down for 3h, twice",
        world
            .info
            .country_isps
            .iter()
            .map(|a| a.0)
            .collect::<Vec<_>>()
    );
    let geo = GeoMap::from_topology(world.sim.control_plane().topology());
    world.sim.run_until(horizon);

    // One BGPCorsaro + RT plugin per collector, publishing to the
    // queue (1-minute bins, full table every 30 bins).
    let mq = Cluster::shared();
    let bin = 300u64;
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 30);
        run_pipeline(&mut stream, bin, &mut [&mut rt]);
    }

    // Sync server: IODA-style completeness-biased policy.
    let mut sync = SyncServer::new(SyncPolicy::Timeout(1800), world.collectors.clone());
    for part in 0..mq.partitions("rt.meta").max(1) {
        for msg in mq.fetch("rt.meta", part, 0, usize::MAX / 2) {
            if let Ok((collector, bin)) = bgpstream_repro::corsaro::codec::decode_meta(&msg.payload)
            {
                sync.observe(&collector, bin, bin);
            }
        }
    }

    // Consumer: rebuild the global view bin by bin, counting prefixes
    // geolocated to each country that are visible from enough VPs.
    // (Offline replay: pull every queued message, apply in bin order
    // as the sync server releases bins.)
    let mut view = GlobalView::new();
    let mut consumer = OutageConsumer::new(geo, 3);
    let mut queued: Vec<bgpstream_repro::mq::Message> = (0..mq.partitions("rt.tables").max(1))
        .flat_map(|part| {
            let mut out = Vec::new();
            loop {
                let batch = mq.fetch("rt.tables", part, out.len() as u64, 1024);
                if batch.is_empty() {
                    break;
                }
                out.extend(batch);
            }
            out
        })
        .collect();
    queued.sort_by_key(|m| m.timestamp);
    let mut next = 0usize;
    for decision in sync.poll(u64::MAX) {
        while next < queued.len() && queued[next].timestamp <= decision.bin {
            if let Ok(rt) =
                bgpstream_repro::corsaro::codec::RtMessage::decode(&queued[next].payload)
            {
                view.apply(&rt);
            }
            next += 1;
        }
        consumer.observe_bin(&view, decision.bin);
    }

    println!("#  bin_time  visible_prefixes({cc})");
    if let Some(series) = consumer.country(country) {
        let max = series.iter().map(|(_, n)| *n).max().unwrap_or(0);
        for (t, n) in series {
            let bar = "#".repeat((n * 40).checked_div(max).unwrap_or(0));
            let flag = world
                .info
                .outages
                .iter()
                .any(|(s, d)| t >= s && t < &(s + d));
            println!(
                "{t:10}  {n:6} {bar}{}",
                if flag {
                    "   <-- scripted outage window"
                } else {
                    ""
                }
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
