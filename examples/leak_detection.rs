//! Route-leak detection — the §6.2 "verifying the occurrence of a
//! route leak" application.
//!
//! A multi-homed edge AS mis-applies its export filters for 30 virtual
//! minutes, re-exporting routes learned from one provider to the
//! other (RFC 7908). The example reconstructs per-VP routing tables
//! before/during/after the leak (what the RT plugin publishes to the
//! queue), feeds the diffs to the valley-free [`LeakDetector`] with a
//! ground-truth relationship oracle, and to the [`NewLinkDetector`],
//! which flags the never-before-seen adjacency the leak creates.
//!
//! ```sh
//! cargo run --example leak_detection
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use bgpstream_repro::bgp_types::{Asn, Prefix};
use bgpstream_repro::consumers::{AsWatch, LeakDetector, NewLinkDetector, RelOracle};
use bgpstream_repro::corsaro::codec::{DiffCell, RtMessage};
use bgpstream_repro::topology::control::ControlPlane;
use bgpstream_repro::topology::events::{Event, EventKind};
use bgpstream_repro::topology::gen::{generate, TopologyConfig};
use bgpstream_repro::topology::model::Tier;

fn main() {
    let topo = Arc::new(generate(&TopologyConfig::tiny(23)));
    let oracle = RelOracle::from_topology(&topo);
    println!(
        "# topology: {} ASes, oracle: {} directed relationships",
        topo.nodes.len(),
        oracle.len()
    );

    // The leaker: first multi-homed edge AS.
    let leaker = topo
        .nodes
        .iter()
        .find(|n| n.tier == Tier::Edge && n.providers.len() >= 2)
        .map(|n| n.asn)
        .expect("multi-homed edge");
    println!("# leaker: AS{leaker} (multi-homed edge)");

    let mut cp = ControlPlane::new(topo.clone(), u64::MAX);
    // VPs: a handful of transit ASes, like a collector's full feeds.
    let vps: Vec<Asn> = cp.transit_vp_candidates().into_iter().take(6).collect();
    let prefixes: Vec<Prefix> = cp.announced_prefixes();

    let mut leak_det = LeakDetector::new(oracle);
    let mut link_det = NewLinkDetector::new(600, 0); // learn through t=600
    let mut watch = AsWatch::new(leaker); // §6.2: track paths through one AS

    // Sample the control plane each minute; publish per-VP diffs like
    // the RT plugin would.
    let mut previous: HashMap<(Asn, Prefix), bgpstream_repro::bgp_types::AsPath> = HashMap::new();
    for bin in (0..3600u64).step_by(60) {
        match bin {
            1200 => {
                cp.apply(&Event::at(bin, EventKind::StartLeak { leaker }));
                println!("t={bin:>4}: AS{leaker} starts leaking");
            }
            3000 => {
                cp.apply(&Event::at(bin, EventKind::EndLeak { leaker }));
                println!("t={bin:>4}: leak fixed");
            }
            _ => {}
        }
        let mut cells = Vec::new();
        for &vp in &vps {
            for &prefix in &prefixes {
                let path = cp.route(vp, &prefix).map(|r| r.as_path);
                let key = (vp, prefix);
                if previous.get(&key) != path.as_ref() {
                    match &path {
                        Some(p) => previous.insert(key, p.clone()),
                        None => previous.remove(&key),
                    };
                    cells.push(DiffCell { vp, prefix, path });
                }
            }
        }
        if cells.is_empty() {
            continue;
        }
        let msg = RtMessage::Diff {
            collector: "rrc00".into(),
            bin,
            cells,
        };
        leak_det.apply(&msg);
        link_det.apply(&msg);
        watch.apply(&msg);
    }

    let (judged, unknown) = leak_det.stats();
    println!("\n# valley-free judge: {judged} paths judged, {unknown} unknown-relationship");
    println!("# leak alarms: {}", leak_det.alarms().len());
    for a in leak_det.alarms().iter().take(8) {
        println!(
            "  t={:>4} vp=AS{} prefix={} leaker=AS{} path={}",
            a.bin, a.vp, a.prefix, a.leaker, a.path
        );
    }
    let correct = leak_det
        .alarms()
        .iter()
        .filter(|a| a.leaker == leaker)
        .count();
    println!(
        "# attribution: {}/{} alarms name the scripted leaker AS{}",
        correct,
        leak_det.alarms().len(),
        leaker
    );

    println!(
        "\n# new-link alarms (warm-up through t=600): {}",
        link_det.alarms().len()
    );
    for a in link_det.alarms().iter().take(8) {
        println!(
            "  t={:>4} link AS{}-AS{} prefix={}",
            a.bin, a.link.0, a.link.1, a.prefix
        );
    }
    // A pure leak re-uses existing adjacencies (the leaker already had
    // links to both providers), so the new-link detector stays quiet —
    // the two detectors are complementary: valley-free analysis flags
    // mis-exported routes, new-link analysis flags forged adjacencies
    // (the MITM-hijack signature of §6.2's "suspicious AS links").
    println!("# (a pure leak creates no new adjacency — that is the MITM-hijack signature)");

    // The AS-watch consumer sees the leak as a surge of routes
    // traversing the leaker: normally a stub edge AS carries only its
    // own routes, during the leak it transits for its providers.
    println!("\n# AS{leaker} watch — routes traversing it per bin (max spans the leak):");
    let peak = watch.series().map(|s| s.routes).max().unwrap_or(0);
    let before = watch
        .series()
        .filter(|s| s.bin < 1200)
        .map(|s| s.routes)
        .max()
        .unwrap_or(0);
    println!("#   pre-leak max {before}, overall peak {peak}");
    println!(
        "#   upstream neighbors observed: {:?}",
        watch.upstreams().iter().map(|a| a.0).collect::<Vec<_>>()
    );

    assert!(
        leak_det.alarms().iter().any(|a| a.leaker == leaker),
        "the scripted leak must be detected"
    );
    assert!(
        peak > before,
        "the leak must raise the leaker's transit load"
    );
}
