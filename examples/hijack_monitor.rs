//! Prefix-hijack monitoring with BGPCorsaro's pfxmonitor plugin
//! (paper §6.1, Figure 6 — the GARR / AS137 case study).
//!
//! An attacker AS periodically announces more-specifics of a victim's
//! IP ranges. The pfxmonitor plugin tracks the number of unique
//! prefixes and unique origin ASNs overlapping the victim's ranges per
//! 5-minute bin; hijack episodes appear as spikes of the origin count
//! from 1 to 2.
//!
//! ```sh
//! cargo run --release --example hijack_monitor
//! ```

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::corsaro::{run_pipeline, PfxMonitor};
use bgpstream_repro::worlds;

fn main() {
    let dir = worlds::scratch_dir("hijack");
    let horizon = 12 * 3600;
    let mut world = worlds::hijack_scenario(dir.clone(), 42, horizon, 4);
    let victim = world.info.victim.unwrap();
    let attacker = world.info.attacker.unwrap();
    println!(
        "# victim AS{victim} announces {} ranges; attacker AS{attacker} runs {} hijack episodes",
        world.info.victim_ranges.len(),
        world.info.hijacks.len()
    );
    world.sim.run_until(horizon);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(horizon))
        .start();
    let mut monitor = PfxMonitor::new(world.info.victim_ranges.iter().copied());
    run_pipeline(&mut stream, 300, &mut [&mut monitor]);

    println!("#  bin_time  unique_prefixes  unique_origins");
    for p in &monitor.series {
        let marker = if p.origins > 1 {
            "   <-- hijack visible"
        } else {
            ""
        };
        println!(
            "{:10}  {:15}  {:14}{}",
            p.time, p.prefixes, p.origins, marker
        );
    }
    let spikes = monitor
        .series
        .windows(2)
        .filter(|w| w[0].origins == 1 && w[1].origins > 1)
        .count();
    println!(
        "# detected {spikes} origin-count spikes (ground truth: {} episodes)",
        world.info.hijacks.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
