//! Multi-tenant broker soak: one served [`BrokerService`] fielding
//! ~100 concurrent synthetic tenants while a faulty `LiveFeeder`
//! re-publishes the archive in compressed wall time. This is the
//! binary CI's `broker-soak` job drives.
//!
//! The fleet is a mix (see `collector_sim::clients`):
//!
//! * **historical pagers** — each loops windowed interval queries over
//!   the growing index to exhaustion, again and again, like a batch
//!   analysis fleet; overlapping query shapes exercise the service's
//!   memoized page cache;
//! * **live tailers** — each holds a live lease and polls it as the
//!   feeder's virtual clock advances; every third tailer *crashes*
//!   mid-session (drops its connection without closing) and a
//!   successor resumes the same lease id, which must stay
//!   exactly-once: across all incarnations each tailer sees every
//!   published dump exactly once.
//!
//! When the dust settles, the final served state is paged once more
//! through a fresh `RemoteBroker` and must match a `LocalBroker` over
//! the same index request for request, file for file.
//!
//! ```sh
//! cargo run --release --example broker_service_soak
//! cargo run --release --example broker_service_soak -- --clients 100 --speed 240
//! ```
//!
//! Exit codes: `0` success; `2` a tenant failed, a tailer broke
//! exactly-once, or served state diverged from local; `4` the
//! watchdog expired (livelock — the soak's reason to exist).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bgpstream_repro::broker::{
    BrokerClient, BrokerError, BrokerService, DumpType, Index, LocalBroker, Query, ReleasePolicy,
    RemoteBroker, ServiceConfig,
};
use bgpstream_repro::collector_sim::feeder::bgpstream_clock::SharedClock;
use bgpstream_repro::collector_sim::{page_history, FaultPlan, LiveTail, Stall};
use bgpstream_repro::collector_sim::{ClientReport, LiveFeeder};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

struct Args {
    /// Total tenants (half pagers, half tailers).
    clients: usize,
    /// Virtual seconds replayed per wall second.
    speed: u64,
    /// Archive simulation seed.
    seed: u64,
    /// Watchdog: raise the stop flag (and fail) after this much wall
    /// time — a livelocked service must fail loudly, not stall CI.
    max_wall_secs: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 100,
        speed: 240,
        seed: 42,
        max_wall_secs: 120,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a numeric value"))
        };
        match a.as_str() {
            "--clients" => args.clients = num("--clients").max(2) as usize,
            "--speed" => args.speed = num("--speed").max(1),
            "--seed" => args.seed = num("--seed"),
            "--max-wall-secs" => args.max_wall_secs = num("--max-wall-secs").max(1),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. Simulate the archive the feeder will re-publish.
    let dir = worlds::scratch_dir("broker-soak");
    let mut world = worlds::quickstart(dir.clone(), args.seed);
    world.sim.run_until(world.info.horizon);
    let manifest = world.sim.manifest().to_vec();
    let expected_files = manifest.len() as u64;
    println!(
        "# archive: {} files over {} virtual seconds; fleet: {} tenants",
        expected_files, world.info.horizon, args.clients
    );

    // 2. Stand the service up over the live index the feeder fills.
    let live_index = Arc::new(Index::with_window(900));
    let cluster = Cluster::shared();
    let cfg = ServiceConfig {
        // Generous TTL: on a loaded 1-CPU runner a tailer thread may
        // go unscheduled for a while; expiry semantics have their own
        // deterministic tests (tests/broker_service.rs).
        lease_ttl: Duration::from_secs(args.max_wall_secs),
        // Tight per-client budget so admission control actually
        // trips under the flood and the RemoteBroker retry absorbs it.
        max_inflight_per_client: 4,
        ..ServiceConfig::default()
    };
    let service = BrokerService::new(cluster.clone(), live_index.clone(), cfg).spawn();

    // 3. Re-publish on a hostile schedule; the watermark stays
    //    truthful, so faults delay dumps but can never lose them.
    let plan = FaultPlan {
        extra_delay: (0, 120),
        stalls: vec![Stall {
            start: world.info.horizon / 3,
            duration: 400,
            collector: Some(0),
        }],
        swap_prob: 0.2,
        duplicate_prob: 0.2,
        crash: collector_sim::CrashPlan::none(),
    };
    let feeder = LiveFeeder::new(&manifest, live_index.clone(), &plan, args.seed);
    let drain_to = feeder.horizon().saturating_add(1);
    let shared = SharedClock::new(0);
    let virtual_now: Arc<AtomicU64> = shared.0.clone();
    let stop_flag = Arc::new(AtomicBool::new(false));
    let timed_out = Arc::new(AtomicBool::new(false));
    {
        let flag = stop_flag.clone();
        let timed_out = timed_out.clone();
        let max = args.max_wall_secs;
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(max));
            timed_out.store(true, Ordering::SeqCst);
            flag.store(true, Ordering::SeqCst);
        });
    }
    let feeder_handle = feeder.spawn_compressed(shared, args.speed, drain_to, stop_flag.clone());

    // 4. Unleash the fleet.
    let quiesce = Arc::new(AtomicBool::new(false));
    let n_tailers = args.clients / 2;
    let n_pagers = args.clients - n_tailers;
    let wall_start = std::time::Instant::now();

    let mut pagers = Vec::new();
    for i in 0..n_pagers {
        let cluster = cluster.clone();
        let quiesce = quiesce.clone();
        let horizon = world.info.horizon;
        pagers.push(std::thread::spawn(
            move || -> Result<ClientReport, BrokerError> {
                let client: Arc<dyn BrokerClient> =
                    Arc::new(RemoteBroker::new(cluster, format!("hist-{i}")));
                // Diversify shapes mildly so the page cache sees both
                // repeats (hits) and distinct keys (misses).
                let query = Query {
                    start: (i as u64 % 4) * 900,
                    end: Some(horizon),
                    dump_types: if i % 3 == 0 {
                        vec![DumpType::Updates]
                    } else {
                        Vec::new()
                    },
                    ..Default::default()
                };
                let mut total = ClientReport::default();
                loop {
                    let page = page_history(&client, &query)?;
                    total.requests += page.requests;
                    total.files += page.files;
                    if quiesce.load(Ordering::SeqCst) {
                        return Ok(total);
                    }
                }
            },
        ));
    }

    let mut tailers = Vec::new();
    for i in 0..n_tailers {
        let cluster = cluster.clone();
        let stop = stop_flag.clone();
        let now = virtual_now.clone();
        tailers.push(std::thread::spawn(
            move || -> Result<ClientReport, BrokerError> {
                let query = Query {
                    start: 0,
                    end: None,
                    ..Default::default()
                };
                let client: Arc<dyn BrokerClient> =
                    Arc::new(RemoteBroker::new(cluster.clone(), format!("live-{i}-a")));
                let mut tail = LiveTail::open(client.clone(), &query, ReleasePolicy::Watermark)?;
                let mut total = ClientReport::default();
                let mut crashed = false;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let got = tail.poll(now.load(Ordering::SeqCst))?;
                    let seen = total.files + tail.report().files;
                    if seen >= expected_files {
                        break;
                    }
                    // Crash a third of the fleet once, a third of the way
                    // in: drop the connection without closing the lease,
                    // then resume the same lease id through a *new* client
                    // incarnation. The broker-side delivered-set must make
                    // the handover exactly-once.
                    if i % 3 == 1 && !crashed && seen >= expected_files / 3 {
                        crashed = true;
                        let lease = tail.lease();
                        let report = tail.report();
                        total.requests += report.requests;
                        total.files += report.files;
                        drop(tail); // no close(): the "crash"
                        let successor: Arc<dyn BrokerClient> =
                            Arc::new(RemoteBroker::new(cluster.clone(), format!("live-{i}-b")));
                        tail =
                            LiveTail::resume(successor, &query, ReleasePolicy::Watermark, lease)?;
                        continue;
                    }
                    if got == 0 {
                        let v = client.version();
                        client.wait_for_new(v, Duration::from_millis(10));
                    }
                }
                let report = tail.report();
                total.requests += report.requests;
                total.files += report.files;
                total.released_through = report.released_through;
                tail.close()?;
                Ok(total)
            },
        ));
    }

    // 5. Wait out the feeder, then let the pagers finish one last full
    //    pass over the final archive before releasing them.
    let feeder_stats = feeder_handle.join().expect("feeder thread");
    quiesce.store(true, Ordering::SeqCst);
    let mut failures = 0u64;
    let mut page_requests = 0u64;
    for h in pagers {
        match h.join().expect("pager thread") {
            Ok(report) => page_requests += report.requests,
            Err(e) => {
                eprintln!("FAIL: historical pager error: {e}");
                failures += 1;
            }
        }
    }
    let mut exactly_once_broken = 0u64;
    let mut poll_requests = 0u64;
    for (i, h) in tailers.into_iter().enumerate() {
        match h.join().expect("tailer thread") {
            Ok(report) => {
                poll_requests += report.requests;
                if !timed_out.load(Ordering::SeqCst) && report.files != expected_files {
                    eprintln!(
                        "FAIL: tailer {i} saw {} files, expected exactly {expected_files}",
                        report.files
                    );
                    exactly_once_broken += 1;
                }
            }
            Err(e) => {
                eprintln!("FAIL: live tailer {i} error: {e}");
                failures += 1;
            }
        }
    }
    stop_flag.store(true, Ordering::SeqCst);

    if timed_out.load(Ordering::SeqCst) {
        eprintln!(
            "FAIL: watchdog expired after {}s — livelock",
            args.max_wall_secs
        );
        std::process::exit(4);
    }

    // 6. Served state must equal local state, request for request.
    let final_query = Query {
        start: 0,
        end: Some(world.info.horizon),
        ..Default::default()
    };
    let remote: Arc<dyn BrokerClient> = Arc::new(RemoteBroker::new(cluster, "final-check"));
    let local: Arc<dyn BrokerClient> = LocalBroker::shared(live_index);
    let via_remote = page_history(&remote, &final_query).expect("final served page");
    let via_local = page_history(&local, &final_query).expect("final local page");
    let divergence = via_remote.files != via_local.files
        || via_remote.requests != via_local.requests
        || via_remote.files != expected_files;

    let stats = service.shutdown();
    println!(
        "# soak: {} page requests + {} live polls in {:.1}s wall; service answered {} \
         ({} busy sheds, {} cache hits / {} misses, {} leases opened, {} resumed)",
        page_requests,
        poll_requests,
        wall_start.elapsed().as_secs_f64(),
        stats.requests,
        stats.busy,
        stats.cache_hits,
        stats.cache_misses,
        stats.leases_opened,
        stats.leases_resumed,
    );
    println!(
        "# feeder: {} files published, {} duplicate publications",
        feeder_stats.published, feeder_stats.duplicates
    );
    std::fs::remove_dir_all(&dir).ok();

    if divergence {
        eprintln!(
            "FAIL: served final state diverged — remote {}f/{}req, local {}f/{}req, \
             archive {expected_files}f",
            via_remote.files, via_remote.requests, via_local.files, via_local.requests
        );
        std::process::exit(2);
    }
    if failures > 0 || exactly_once_broken > 0 {
        eprintln!(
            "FAIL: {failures} tenant error(s), {exactly_once_broken} exactly-once breach(es)"
        );
        std::process::exit(2);
    }
    let expected_resumes = (0..n_tailers).filter(|i| i % 3 == 1).count() as u64;
    if stats.leases_resumed != expected_resumes {
        eprintln!(
            "FAIL: {} lease resumes recorded, expected {expected_resumes} \
             (every crashed tailer must have resumed by id)",
            stats.leases_resumed
        );
        std::process::exit(2);
    }
    println!(
        "OK: {} tenants served, every tailer exactly-once ({} files each), served == local",
        args.clients, expected_files
    );
}
