//! Remotely-Triggered Black-Holing study (paper §4.3, Figure 4).
//!
//! Reproduces the measurement methodology: one live-style stream
//! filtered on black-holing communities (`*:666`) detects RTBH starts;
//! a second stream watches the black-holed prefixes for withdrawal;
//! upon detection we fire emulated traceroutes from ~50 probe ASes
//! toward the black-holed host, and repeat them after the RTBH ends.
//! The output is the two Figure 4 metrics per destination.
//!
//! ```sh
//! cargo run --release --example rtbh_study
//! ```

use bgpstream_repro::bgp_types::trie::PrefixMatch;
use bgpstream_repro::bgpstream::{BgpStream, CommunityFilter, ElemType};
use bgpstream_repro::broker::{DumpType, LocalBroker};
use bgpstream_repro::topology::dataplane::{select_probes, traceroute};
use bgpstream_repro::worlds;

fn main() {
    let dir = worlds::scratch_dir("rtbh");
    let horizon = 24 * 3600;
    let mut world = worlds::rtbh_scenario(dir.clone(), 42, horizon, 8);
    println!("# {} scripted RTBH episodes", world.info.rtbh.len());
    world.sim.run_until(horizon);

    // Stream 1: updates tagged with any black-holing community.
    let mut bh_stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .record_type(DumpType::Updates)
        .filter_community(CommunityFilter::any_asn(666))
        .filter_elem_type(ElemType::Announcement)
        .interval(0, Some(horizon))
        .start();
    let mut detected: Vec<(u64, bgpstream_repro::bgp_types::Prefix)> = Vec::new();
    while let Some(rec) = bh_stream.next_matching_record() {
        for e in rec.elems() {
            if let Some(p) = e.prefix {
                if !detected.iter().any(|(_, q)| *q == p) {
                    detected.push((e.time, p));
                }
            }
        }
    }
    println!(
        "# detected {} black-holed prefixes via community filter",
        detected.len()
    );

    // Stream 2: per-prefix withdrawal watch (end of RTBH).
    let mut episodes: Vec<(bgpstream_repro::bgp_types::Prefix, u64, u64)> = Vec::new();
    for (start, prefix) in &detected {
        let mut wd_stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .record_type(DumpType::Updates)
            .filter_prefix(*prefix, PrefixMatch::Exact)
            .filter_elem_type(ElemType::Withdrawal)
            .interval(*start, Some(horizon))
            .start();
        let mut end = horizon;
        'outer: while let Some(rec) = wd_stream.next_matching_record() {
            for e in rec.elems() {
                if e.time > *start {
                    end = e.time;
                    break 'outer;
                }
            }
        }
        episodes.push((*prefix, *start, end));
    }

    // Traceroute during vs after each RTBH, from ~50 probes. We replay
    // the control plane to the right virtual times.
    println!("#  prefix              during_dest%  after_dest%  during_origin%  after_origin%");
    for (prefix, start, end) in &episodes {
        let origin = world
            .info
            .rtbh
            .iter()
            .find(|(_, _, _, p)| p == prefix)
            .map(|(_, _, o, _)| *o);
        let Some(origin) = origin else { continue };
        let cp = world.sim.control_plane();
        let probes = select_probes(cp, origin, 50);
        // During: re-apply the RTBH state.
        cp.apply(&bgpstream_repro::topology::Event::at(
            *start + 1,
            bgpstream_repro::topology::EventKind::StartRtbh {
                origin,
                prefix: *prefix,
            },
        ));
        let during: Vec<_> = probes
            .iter()
            .filter_map(|p| traceroute(cp, *p, prefix))
            .collect();
        // After: withdraw it.
        cp.apply(&bgpstream_repro::topology::Event::at(
            *end + 1,
            bgpstream_repro::topology::EventKind::EndRtbh {
                origin,
                prefix: *prefix,
            },
        ));
        let after: Vec<_> = probes
            .iter()
            .filter_map(|p| traceroute(cp, *p, prefix))
            .collect();
        let pct =
            |v: &[bgpstream_repro::topology::dataplane::TraceResult],
             f: fn(&bgpstream_repro::topology::dataplane::TraceResult) -> bool| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().filter(|r| f(r)).count() as f64 * 100.0 / v.len() as f64
                }
            };
        println!(
            "{:20} {:11.0}% {:11.0}% {:14.0}% {:13.0}%",
            prefix.to_string(),
            pct(&during, |r| r.reached_dest),
            pct(&after, |r| r.reached_dest),
            pct(&during, |r| r.reached_origin),
            pct(&after, |r| r.reached_origin),
        );
    }
    println!("# paper shape: during RTBH most destinations unreachable from most probes;");
    println!("# after RTBH reachability restored; origin-AS reachability recovers fully.");
    std::fs::remove_dir_all(&dir).ok();
}
