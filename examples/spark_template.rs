//! The §5 "hello-world template": the partition-map-reduce skeleton
//! all of the paper's Spark analyses share, on the thread-pool
//! substitute.
//!
//! (i) build a list of data partitions split by time range and BGP
//! collector; (ii) map a stream-consuming function over every
//! partition; (iii) reduce per VP, per collector, and overall. This
//! template counts elems — swap the map body for your own analysis.
//!
//! ```sh
//! cargo run --release --example spark_template
//! ```

use std::collections::BTreeMap;

use bgpstream_repro::analytics::{par_map, rib_partitions};
use bgpstream_repro::bgpstream::{BgpStream, ElemType};
use bgpstream_repro::broker::{DumpType, LocalBroker};
use bgpstream_repro::worlds;

fn main() {
    // A longitudinal archive: 24 virtual months, snapshots every 6.
    let dir = worlds::scratch_dir("spark");
    let (world, times) = worlds::longitudinal(dir.clone(), 42, 24, 6, None);

    // (i) Partitions: one per (collector, snapshot).
    let partitions = rib_partitions(&world.index, 0, *times.last().unwrap());
    println!("# {} partitions (time-range x collector)", partitions.len());

    // (ii) Map: open one stream per partition, consume it with the
    // nested record/elem loops, emit per-VP counts.
    let index = world.index.clone();
    let mapped = par_map(partitions, 8, move |p| {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(index.clone()))
            .project(&p.project)
            .collector(&p.collector)
            .record_type(DumpType::Rib)
            .interval(p.time, Some(p.time))
            .start();
        let mut per_vp: BTreeMap<u32, u64> = BTreeMap::new();
        while let Some(record) = stream.next_record() {
            for elem in record.elems() {
                if elem.elem_type == ElemType::RibEntry {
                    *per_vp.entry(elem.peer_asn.0).or_default() += 1;
                }
            }
        }
        (p.time, p.collector.clone(), per_vp)
    });

    // (iii) Reduce at the three levels the paper uses.
    let mut per_vp: BTreeMap<(String, u32), u64> = BTreeMap::new();
    let mut per_collector: BTreeMap<String, u64> = BTreeMap::new();
    let mut overall = 0u64;
    for (_, collector, vps) in &mapped {
        for (vp, n) in vps {
            *per_vp.entry((collector.clone(), *vp)).or_default() += n;
            *per_collector.entry(collector.clone()).or_default() += n;
            overall += n;
        }
    }
    println!("\n# per-VP (top 10)");
    let mut vps: Vec<_> = per_vp.into_iter().collect();
    vps.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for ((collector, vp), n) in vps.into_iter().take(10) {
        println!("{collector:14} AS{vp:<8} {n:10}");
    }
    println!("\n# per-collector");
    for (c, n) in &per_collector {
        println!("{c:14} {n:10}");
    }
    println!("\n# overall: {overall} RIB elems");
    std::fs::remove_dir_all(&dir).ok();
}
