//! A §6.1 stateless-tagging census: classify every record of a
//! simulated archive (dump type, elem classes, address family,
//! black-holing communities, private ASNs, origin country) and print
//! per-bin tag frequencies — the "classification and tagging of BGP
//! records" plugin class, with a stateful counter downstream.
//!
//! ```sh
//! cargo run --example tag_census
//! ```

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::corsaro::tag::{run_tagged_pipeline, ClassifierTagger, GeoTagger, TagCounter};
use bgpstream_repro::worlds;

fn main() {
    let dir = worlds::scratch_dir("tag_census");
    let mut world = worlds::quickstart(dir.clone(), 17);
    world.sim.run_until(world.info.horizon);

    let topo = world.sim.control_plane().topology().clone();
    let mut classifier = ClassifierTagger;
    let mut geo = GeoTagger::new(topo.nodes.iter().map(|n| (n.asn, n.country)));
    let mut counter = TagCounter::new();

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();
    let records = run_tagged_pipeline(
        &mut stream,
        900,
        &mut [&mut classifier, &mut geo],
        &mut [&mut counter],
    );
    println!(
        "# {records} records classified into {} bins\n",
        counter.rows().len()
    );

    // Per-bin table of the protocol-level tags.
    let cols = [
        "rib",
        "updates",
        "announce",
        "withdraw",
        "state-change",
        "blackhole",
    ];
    println!(
        "{:>6} {}",
        "bin",
        cols.map(|c| format!("{c:>13}")).join(" ")
    );
    for (bin, row) in counter.rows() {
        let cells: String = cols
            .map(|c| format!("{:>13}", row.get(c).copied().unwrap_or(0)))
            .join(" ");
        println!("{bin:>6} {cells}");
    }

    // Aggregate geo census.
    let mut geo_totals: std::collections::BTreeMap<&str, u64> = Default::default();
    for (_, row) in counter.rows() {
        for (tag, n) in row {
            if let Some(cc) = tag.strip_prefix("geo:") {
                *geo_totals.entry(cc).or_insert(0) += n;
            }
        }
    }
    println!("\n# records per origin country:");
    for (cc, n) in &geo_totals {
        println!("  {cc}: {n}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
