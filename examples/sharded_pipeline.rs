//! Sharded BGPCorsaro: the quickstart archive consumed on a
//! multi-core runtime instead of the single-threaded pipeline.
//!
//! The stream read stays sequential (time order is the product), but
//! plugin processing fans out to N shard workers: `PfxMonitor`
//! partitions by prefix, `RtPlugin` by peer, each declared via
//! `Plugin::partitioning()`. Per-bin outputs merge deterministically,
//! so the series printed here are identical to what `run_pipeline`
//! would produce — run it with different `WORKERS` values to check.
//!
//! ```sh
//! WORKERS=4 cargo run --release --example sharded_pipeline
//! ```

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{ElemCounter, PfxMonitor, RtPlugin};
use bgpstream_repro::worlds;

fn main() {
    let workers: usize = std::env::var("WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);

    // Simulate one virtual hour of two collectors.
    let dir = worlds::scratch_dir("sharded-example");
    let mut world = worlds::quickstart(dir.clone(), 42);
    world.sim.run_until(world.info.horizon);
    println!(
        "# archive: {} files, {} records",
        world.sim.stats().files,
        world.sim.stats().records
    );

    // Monitor every announced range, reconstruct one collector's
    // tables, and count elems — three plugins, three partitionings
    // (by prefix, by peer, pinned).
    let ranges: Vec<_> = world
        .sim
        .control_plane()
        .topology()
        .nodes
        .iter()
        .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
        .collect();
    let mut monitor = PfxMonitor::new(ranges);
    let mut rt = RtPlugin::new(&world.collectors[0]);
    let mut stats = ElemCounter::new();

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();
    let runtime = ShardedRuntime::builder()
        .workers(workers)
        .bin_size(300)
        .build();
    let records = runtime.run(
        &mut stream,
        &mut [&mut monitor as &mut dyn ShardedPlugin, &mut rt, &mut stats],
    );

    println!("# {} records through {} workers", records, workers);
    for point in &monitor.series {
        println!(
            "bin {:>5}: {:>3} prefixes, {:>3} origins",
            point.time, point.prefixes, point.origins
        );
    }
    let last = rt.bin_series.last().expect("bins closed");
    println!(
        "# rt[{}]: {} elems in final bin, {} diff cells; {} elems total counted",
        world.collectors[0],
        last.elems,
        last.diff_cells,
        stats.total_elems()
    );
    std::fs::remove_dir_all(&dir).ok();
}
