//! Quickstart: simulate a small Internet with two collectors, then
//! consume the archive through libBGPStream exactly like the paper's
//! first code sample — configure a stream, iterate records, iterate
//! elems.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bgpstream_repro::bgpstream::ascii;
use bgpstream_repro::prelude::*;
use bgpstream_repro::worlds;

fn main() {
    // 1. Build and run the data-provider side: one RIPE RIS and one
    //    RouteViews collector observing a synthetic Internet for one
    //    virtual hour.
    let dir = worlds::scratch_dir("quickstart");
    let mut world = worlds::quickstart(dir.clone(), 42);
    world.sim.run_until(world.info.horizon);
    world.sim.write_manifest().expect("manifest");
    println!(
        "# simulated {} dump files ({} records, {} bytes) into {}",
        world.sim.stats().files,
        world.sim.stats().records,
        world.sim.stats().bytes,
        dir.display()
    );

    // 2. Configuration phase: request the updates of both projects
    //    over the first half hour. The broker sits behind the
    //    `BrokerClient` trait — swap `LocalBroker::shared(...)` for a
    //    `RemoteBroker` talking to a served `BrokerService` and
    //    nothing below this line changes (see the
    //    `broker_service_soak` example).
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .record_type(DumpType::Updates)
        .interval(0, Some(1800))
        .start();

    // 3. Reading phase: pull records, print their elems in bgpdump
    //    format (this is what the BGPReader tool does).
    let mut lines = 0;
    while let Some(record) = stream.next_record() {
        for elem in record.elems() {
            println!("{}", ascii::elem_line(&record, elem));
            lines += 1;
        }
    }
    let stats = stream.stats();
    println!(
        "# {} elems from {} records, {} files, {} overlap groups (max width {})",
        lines, stats.records, stats.files_opened, stats.groups, stats.max_group_width
    );

    std::fs::remove_dir_all(&dir).ok();
}
