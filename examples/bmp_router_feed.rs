//! Router-direct monitoring over BMP (RFC 7854) — the paper's §7
//! roadmap item ("adding native support for OpenBMP will enable
//! processing of streams sourced directly from BGP routers").
//!
//! A simulated edge router exports its BGP activity as a BMP byte
//! stream; an OpenBMP-style monitoring station bridges each message to
//! the MRT record a route collector would have produced; the bridged
//! file is then consumed through libBGPStream with a filter-language
//! expression — no collector in the loop.
//!
//! ```sh
//! cargo run --example bmp_router_feed
//! ```

use std::net::IpAddr;

use bgpstream_repro::bgp_types::{AsPath, Asn, BgpUpdate, PathAttributes, Prefix};
use bgpstream_repro::bgpstream::{ascii, BgpStream};
use bgpstream_repro::bmp::{
    station::MonitoringStation, BmpReader, PeerDownReason, RouterExporter, StationEvent,
    TerminationReason,
};
use bgpstream_repro::broker::{DataInterface, DumpType};
use bgpstream_repro::mrt::MrtWriter;

fn announce(prefixes: &[&str], path: &[u32]) -> BgpUpdate {
    BgpUpdate::announce(
        prefixes
            .iter()
            .map(|s| s.parse::<Prefix>().unwrap())
            .collect(),
        PathAttributes::route(
            AsPath::from_sequence(path.iter().copied()),
            "192.0.2.1".parse().unwrap(),
        ),
    )
}

fn main() {
    // ---- Router side -------------------------------------------------
    let peer1: IpAddr = "192.0.2.1".parse().unwrap();
    let peer2: IpAddr = "192.0.2.2".parse().unwrap();
    let mut router = RouterExporter::new(
        Vec::new(),
        "edge1.milan",
        "192.0.2.254".parse().unwrap(),
        Asn(137),
    );
    router.initiate("simulated JunOS 23.1 / BMP v3").unwrap();
    router.peer_up(peer1, Asn(3356), 1, 1000).unwrap();
    router.peer_up(peer2, Asn(174), 2, 1001).unwrap();
    // A morning of routing activity, as the router's Adj-RIBs-In see it.
    router
        .route_monitoring(
            peer1,
            Asn(3356),
            1,
            1010,
            announce(&["203.0.113.0/24"], &[3356, 44]),
        )
        .unwrap();
    router
        .route_monitoring(
            peer2,
            Asn(174),
            2,
            1030,
            announce(&["198.51.100.0/24", "198.51.100.128/25"], &[174, 9, 44]),
        )
        .unwrap();
    router.stats_report(peer1, Asn(3356), 1, 1060).unwrap();
    router
        .route_monitoring(
            peer1,
            Asn(3356),
            1,
            1090,
            BgpUpdate::withdraw(vec!["203.0.113.0/24".parse().unwrap()]),
        )
        .unwrap();
    router
        .peer_down(peer2, Asn(174), 2, 1120, PeerDownReason::RemoteNoData)
        .unwrap();
    router.terminate(TerminationReason::AdminClose).unwrap();
    let wire = router.into_inner();
    println!(
        "# router exported {} BMP messages ({} bytes)",
        router_msgs(&wire),
        wire.len()
    );

    // ---- Station side ------------------------------------------------
    let mut station = MonitoringStation::new(Asn(64512), "192.0.2.254".parse().unwrap());
    let mut reader = BmpReader::new(&wire[..]);
    let mut bridged = Vec::new();
    while let Some(msg) = reader.next() {
        let msg = msg.expect("well-formed stream");
        for ev in station.ingest(msg) {
            match ev {
                StationEvent::RouterUp {
                    sys_name,
                    sys_descr,
                } => println!(
                    "# router up: {} ({})",
                    sys_name.as_deref().unwrap_or("?"),
                    sys_descr.as_deref().unwrap_or("?")
                ),
                StationEvent::RouterDown(t) => println!("# router down: {:?}", t.reason),
                StationEvent::Stats {
                    peer_asn, stats, ..
                } => {
                    println!("# stats from AS{}: {} counters", peer_asn.0, stats.len())
                }
                StationEvent::Anomaly(a) => println!("# anomaly: {a}"),
                StationEvent::Record(rec) => bridged.push(rec),
            }
        }
    }
    println!("# station bridged {} MRT records", bridged.len());

    // ---- Into libBGPStream --------------------------------------------
    let dir = std::env::temp_dir().join(format!("bmp_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edge1.updates.1000.mrt");
    {
        let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
        for r in &bridged {
            w.write(r).unwrap();
        }
    }
    let mut stream = BgpStream::builder()
        .data_interface(DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path,
            interval_start: 1000,
            duration: 300,
        })
        .interval(1000, Some(2000))
        .filter_string("elemtype announcements and prefix more 198.51.100.0/24")
        .expect("filter expression")
        .start();
    println!("# announcements under 198.51.100.0/24, router-direct:");
    while let Some(record) = stream.next_record() {
        for elem in record.elems() {
            println!("{}", ascii::elem_line(&record, elem));
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

fn router_msgs(wire: &[u8]) -> u64 {
    let (msgs, _) = BmpReader::new(wire).read_all();
    msgs.len() as u64
}
