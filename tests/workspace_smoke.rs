//! Workspace smoke test: the top-level guard for the
//! broker → stream → elem pipeline. If this fails, the workspace is
//! miswired at a layer boundary regardless of what per-crate tests say.

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::worlds;

#[test]
fn quickstart_world_streams_ordered_records_end_to_end() {
    let dir = worlds::scratch_dir("workspace-smoke");
    let mut world = worlds::quickstart(dir.clone(), 7);
    let horizon = world.info.horizon;
    world.sim.run_until(horizon);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(horizon))
        .start();

    let mut records = 0u64;
    let mut elems = 0u64;
    let mut last_ts = 0u64;
    while let Some(record) = stream.next_record() {
        assert!(
            record.timestamp >= last_ts,
            "stream went backwards in time: {} after {}",
            record.timestamp,
            last_ts
        );
        last_ts = record.timestamp;
        records += 1;
        elems += record.elems().len() as u64;
    }

    assert!(records > 0, "quickstart world produced no records");
    assert!(elems > 0, "quickstart world produced no elems");

    std::fs::remove_dir_all(&dir).ok();
}
