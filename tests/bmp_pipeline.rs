//! End-to-end test of the §7 OpenBMP data path: a router exports BMP,
//! the monitoring station bridges it to MRT, the records are written
//! as a dump file, and libBGPStream consumes that file through the
//! SingleFile data interface — proving router-direct data flows
//! through the exact same machinery as archive data.

use std::net::IpAddr;

use bgp_types::{AsPath, Asn, BgpUpdate, PathAttributes, Prefix};
use bgpstream::{BgpStream, ElemType};
use bmp::{station, RouterExporter, TerminationReason};
use broker::{DataInterface, DumpType};
use mrt::MrtWriter;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn announce(prefixes: &[&str], path: &[u32]) -> BgpUpdate {
    BgpUpdate::announce(
        prefixes.iter().map(|s| p(s)).collect(),
        PathAttributes::route(
            AsPath::from_sequence(path.iter().copied()),
            "192.0.2.1".parse().unwrap(),
        ),
    )
}

#[test]
fn bmp_feed_flows_through_bgpstream() {
    let peer_ip: IpAddr = "192.0.2.1".parse().unwrap();
    let peer2_ip: IpAddr = "192.0.2.2".parse().unwrap();

    // Router side: one BMP session carrying two monitored peers.
    let mut ex = RouterExporter::new(
        Vec::new(),
        "edge1",
        "192.0.2.254".parse().unwrap(),
        Asn(64512),
    );
    ex.initiate("simulated JunOS").unwrap();
    ex.peer_up(peer_ip, Asn(65001), 1, 1000).unwrap();
    ex.peer_up(peer2_ip, Asn(65002), 2, 1001).unwrap();
    ex.route_monitoring(
        peer_ip,
        Asn(65001),
        1,
        1010,
        announce(&["203.0.113.0/24"], &[65001, 137]),
    )
    .unwrap();
    ex.route_monitoring(
        peer2_ip,
        Asn(65002),
        2,
        1020,
        announce(
            &["198.51.100.0/24", "198.51.100.128/25"],
            &[65002, 3356, 44],
        ),
    )
    .unwrap();
    ex.route_monitoring(
        peer_ip,
        Asn(65001),
        1,
        1030,
        BgpUpdate::withdraw(vec![p("203.0.113.0/24")]),
    )
    .unwrap();
    ex.peer_down(
        peer_ip,
        Asn(65001),
        1,
        1040,
        bmp::PeerDownReason::RemoteNoData,
    )
    .unwrap();
    ex.terminate(TerminationReason::AdminClose).unwrap();
    let wire = ex.into_inner();

    // Station side: bridge to MRT records.
    let (records, err) =
        station::bridge_stream(&wire[..], Asn(64512), "192.0.2.254".parse().unwrap());
    assert!(err.is_none());
    // 2 peer-up state changes + 3 updates + 1 peer-down state change.
    assert_eq!(records.len(), 6);

    // Write the bridged records as an MRT dump file.
    let dir = std::env::temp_dir().join(format!("bmp_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("updates.1000.mrt");
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut w = MrtWriter::new(file);
        for r in &records {
            w.write(r).unwrap();
        }
    }

    // Consume through libBGPStream.
    let mut stream = BgpStream::builder()
        .data_interface(DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path: path.clone(),
            interval_start: 1000,
            duration: 300,
        })
        .interval(1000, Some(2000))
        .start();

    let mut elems = Vec::new();
    while let Some(rec) = stream.next_record() {
        assert_eq!(rec.collector(), "local");
        elems.extend(rec.elems().to_vec());
    }
    // 2 establishment states + 1 announce + 2 announces + 1 withdrawal
    // + 1 down state.
    assert_eq!(elems.len(), 7);
    // Time-ordered.
    for w in elems.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    let announcements = elems
        .iter()
        .filter(|e| e.elem_type == ElemType::Announcement)
        .count();
    let withdrawals = elems
        .iter()
        .filter(|e| e.elem_type == ElemType::Withdrawal)
        .count();
    let states = elems
        .iter()
        .filter(|e| e.elem_type == ElemType::PeerState)
        .count();
    assert_eq!((announcements, withdrawals, states), (3, 1, 3));
    // The station stamped the right peers.
    assert!(elems.iter().any(|e| e.peer_asn == Asn(65001)));
    assert!(elems.iter().any(|e| e.peer_asn == Asn(65002)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bmp_feed_respects_stream_filters() {
    let peer_ip: IpAddr = "192.0.2.1".parse().unwrap();
    let mut ex = RouterExporter::new(
        Vec::new(),
        "edge1",
        "192.0.2.254".parse().unwrap(),
        Asn(64512),
    );
    ex.initiate("sim").unwrap();
    ex.peer_up(peer_ip, Asn(65001), 1, 1000).unwrap();
    ex.route_monitoring(
        peer_ip,
        Asn(65001),
        1,
        1010,
        announce(&["203.0.113.0/24"], &[65001, 137]),
    )
    .unwrap();
    ex.route_monitoring(
        peer_ip,
        Asn(65001),
        1,
        1020,
        announce(&["10.9.0.0/16"], &[65001, 9]),
    )
    .unwrap();
    let wire = ex.into_inner();
    let (records, _) =
        station::bridge_stream(&wire[..], Asn(64512), "192.0.2.254".parse().unwrap());

    let dir = std::env::temp_dir().join(format!("bmp_filtered_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("updates.1000.mrt");
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut w = MrtWriter::new(file);
        for r in &records {
            w.write(r).unwrap();
        }
    }

    // Filter-language expression applied to a router-direct stream.
    let mut stream = BgpStream::builder()
        .data_interface(DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path,
            interval_start: 1000,
            duration: 300,
        })
        .interval(1000, Some(2000))
        .filter_string("prefix more 203.0.113.0/24 and elemtype announcements")
        .unwrap()
        .start();

    let mut matched = Vec::new();
    while let Some((elem, _src)) = stream.next_elem() {
        matched.push(elem);
    }
    assert_eq!(matched.len(), 1);
    assert_eq!(matched[0].prefix, Some(p("203.0.113.0/24")));

    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("bmp_filtered_{}", std::process::id())),
    )
    .ok();
}
