//! Facade-level test of the sharded consumer runtime: a full
//! simulated archive consumed once sequentially and once sharded,
//! asserting identical outputs, and the downstream consumer layer
//! draining the queue with the sharded per-partition path.

use std::sync::Mutex;

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::{drain_rt, drain_rt_sharded};
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{run_pipeline, PfxMonitor, Plugin, RtPlugin};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

#[test]
fn sharded_runtime_reproduces_sequential_outputs_end_to_end() {
    let dir = worlds::scratch_dir("sharded-e2e");
    let mut world = worlds::hijack_scenario(dir.clone(), 13, 6 * 3600, 2);
    world.sim.run_until(world.info.horizon);

    let stream = |world: &worlds::World| {
        BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.info.horizon))
            .start()
    };

    // Sequential reference run.
    let seq_mq = Cluster::shared();
    let mut seq_pfx = PfxMonitor::new(world.info.victim_ranges.iter().copied());
    let mut seq_rt = RtPlugin::new(&world.collectors[0]).with_queue(seq_mq.clone(), 4);
    let seq_records = run_pipeline(
        &mut stream(&world),
        300,
        &mut [&mut seq_pfx as &mut dyn Plugin, &mut seq_rt],
    );
    assert!(seq_records > 0);

    // Sharded run, 4 workers.
    let shard_mq = Cluster::shared();
    let mut pfx = PfxMonitor::new(world.info.victim_ranges.iter().copied());
    let mut rt = RtPlugin::new(&world.collectors[0]).with_queue(shard_mq.clone(), 4);
    let runtime = ShardedRuntime::builder().workers(4).bin_size(300).build();
    let records = runtime.run(
        &mut stream(&world),
        &mut [&mut pfx as &mut dyn ShardedPlugin, &mut rt],
    );

    assert_eq!(records, seq_records);
    assert_eq!(pfx.series, seq_pfx.series);
    assert_eq!(rt.bin_series, seq_rt.bin_series);
    assert_eq!(rt.error_stats, seq_rt.error_stats);

    // The hijack signal survives sharding: the origin series must
    // spike during the scripted episodes in both runs.
    let spikes = |series: &[bgpstream_repro::corsaro::PfxPoint]| {
        series
            .windows(2)
            .filter(|w| w[0].origins < w[1].origins)
            .count()
    };
    assert!(spikes(&pfx.series) > 0);
    assert_eq!(spikes(&pfx.series), spikes(&seq_pfx.series));

    // Consumer side: the sharded drain sees exactly the messages the
    // sequential drain sees.
    let count = |m: &Mutex<u64>| {
        let m = m.lock().unwrap();
        *m
    };
    let seq_seen = Mutex::new(0u64);
    drain_rt(&seq_mq, "g", |_| *seq_seen.lock().unwrap() += 1);
    let shard_seen = Mutex::new(0u64);
    drain_rt_sharded(&shard_mq, "g", 4, |_| *shard_seen.lock().unwrap() += 1);
    assert!(count(&seq_seen) > 0);
    assert_eq!(count(&seq_seen), count(&shard_seen));

    std::fs::remove_dir_all(&dir).ok();
}
