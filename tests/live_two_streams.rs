//! The §4.3 two-stream live pattern: one live stream filtered on
//! black-holing communities triggers investigation of a prefix; a
//! second stream watches that prefix for withdrawal. Both run in live
//! mode against a simulator publishing in virtual time.

use std::time::Duration;

use bgpstream_repro::bgp_types::trie::PrefixMatch;
use bgpstream_repro::bgpstream::{BgpStream, Clock, CommunityFilter, ElemType};
use bgpstream_repro::broker::{DumpType, LocalBroker};
use bgpstream_repro::worlds;

#[test]
fn rtbh_detection_via_two_live_streams() {
    let dir = worlds::scratch_dir("two-streams");
    let horizon = 8 * 3600;
    let mut world = worlds::rtbh_scenario(dir.clone(), 81, horizon, 6);
    // Run the simulation fully (files registered with their
    // publication times), then replay it live through a shared clock.
    world.sim.run_until(horizon);
    let index = world.index.clone();
    let scripted = world.info.rtbh.clone();

    let clock = Clock::manual(0);
    let reader_clock = clock.clone();
    let reader_index = index.clone();
    let reader = std::thread::spawn(move || {
        // Stream 1: live, community-filtered.
        let mut bh = BgpStream::builder()
            .broker_client(LocalBroker::shared(reader_index.clone()))
            .record_type(DumpType::Updates)
            .filter_community(CommunityFilter::any_asn(666))
            .filter_elem_type(ElemType::Announcement)
            .live(0)
            .clock(reader_clock.clone())
            .live_grace(500)
            .poll_interval(Duration::from_millis(1))
            .start();
        // Detect the first black-holed prefix...
        let mut detected = None;
        'detect: while let Some(rec) = bh.next_record() {
            for e in rec.elems() {
                if let Some(p) = e.prefix {
                    detected = Some((e.time, p));
                    break 'detect;
                }
            }
        }
        let (t0, prefix) = detected?;
        // ...then watch it with a second live stream for withdrawal.
        let mut wd = BgpStream::builder()
            .broker_client(LocalBroker::shared(reader_index))
            .record_type(DumpType::Updates)
            .filter_prefix(prefix, PrefixMatch::Exact)
            .filter_elem_type(ElemType::Withdrawal)
            .live(t0)
            .clock(reader_clock)
            .live_grace(500)
            .poll_interval(Duration::from_millis(1))
            .start();
        while let Some(rec) = wd.next_record() {
            for e in rec.elems() {
                if e.time > t0 {
                    return Some((prefix, t0, e.time));
                }
            }
        }
        None
    });

    // Drive virtual time forward until the reader finishes. Live
    // windows (2 h) unlock only after their span + grace has elapsed,
    // so give generous virtual headroom.
    let mut t = 0;
    while !reader.is_finished() && t < horizon + 12 * 7200 {
        t += 600;
        clock.advance_to(t);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(reader.is_finished(), "live pipeline starved");
    let outcome = reader.join().expect("reader thread");
    let (prefix, start, end) = outcome.expect("no RTBH episode detected live");
    assert!(end > start, "withdrawal must follow detection");
    // The detected episode corresponds to a scripted one.
    let matches_script = scripted
        .iter()
        .any(|(s, d, _, p)| *p == prefix && start >= *s && end <= s + d + 7200);
    assert!(
        matches_script,
        "detected ({prefix}, {start}, {end}) not in script {scripted:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
