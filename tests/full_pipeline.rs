//! Workspace-level integration: the complete §6.2 monitoring pipeline
//! (simulator → archive → broker → stream → RT plugin → queue →
//! consumers) and the hijack detector over it.

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::{GlobalView, HijackAlarm, HijackDetector, MoasTracker};
use bgpstream_repro::corsaro::codec::RtMessage;
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

#[test]
fn hijack_is_detected_through_the_full_pipeline() {
    let dir = worlds::scratch_dir("pipe-hijack");
    let horizon = 6 * 3600;
    let mut world = worlds::hijack_scenario(dir.clone(), 61, horizon, 1);
    let attacker = world.info.attacker.unwrap();
    let (hijack_start, _) = world.info.hijacks[0];
    world.sim.run_until(horizon);

    // RT plugins per collector, publishing diffs per 5-minute bin.
    let mq = Cluster::shared();
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 0);
        run_pipeline(&mut stream, 300, &mut [&mut rt]);
    }

    // Consumers: replay queue in bin order; learn a pre-hijack
    // baseline, arm, then observe the rest.
    let mut queued = Vec::new();
    for part in 0..mq.partitions("rt.tables").max(1) {
        let mut off = 0u64;
        loop {
            let batch = mq.fetch("rt.tables", part, off, 1024);
            if batch.is_empty() {
                break;
            }
            off += batch.len() as u64;
            queued.extend(batch);
        }
    }
    assert!(!queued.is_empty(), "RT plugins published nothing");
    queued.sort_by_key(|m| m.timestamp);

    let mut view = GlobalView::new();
    let mut detector = HijackDetector::new();
    let mut moas = MoasTracker::new();
    let mut armed = false;
    let mut current_bin = None;
    for msg in &queued {
        if current_bin != Some(msg.timestamp) {
            if let Some(bin) = current_bin {
                detector.observe_bin(&view, bin);
                moas.observe(&view);
                if !armed && bin + 600 >= hijack_start / 2 {
                    detector.arm();
                    armed = true;
                }
            }
            current_bin = Some(msg.timestamp);
        }
        if let Ok(rt) = RtMessage::decode(&msg.payload) {
            view.apply(&rt);
        }
    }
    if let Some(bin) = current_bin {
        detector.observe_bin(&view, bin);
        moas.observe(&view);
    }

    assert!(armed, "detector never armed");
    assert!(
        !detector.alarms.is_empty(),
        "sub-prefix hijack went undetected"
    );
    let attacker_alarms = detector
        .alarms
        .iter()
        .filter(|a| match a {
            HijackAlarm::Moas { observed, .. } | HijackAlarm::SubPrefix { observed, .. } => {
                *observed == attacker
            }
        })
        .count();
    assert!(
        attacker_alarms > 0,
        "alarms do not name the attacker: {:?}",
        detector.alarms
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn moas_tracker_sees_more_overall_than_any_collector() {
    let dir = worlds::scratch_dir("pipe-moas");
    // High natural-MOAS world.
    let (world, times) = worlds::longitudinal(
        dir.clone(),
        62,
        0,
        1,
        Some(bgpstream_repro::topology::TopologyConfig {
            seed: 62,
            moas_frac: 0.10,
            ..Default::default()
        }),
    );
    let t = times[0];
    // Feed full RIBs straight into a view via the RT plugin path.
    let mq = Cluster::shared();
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(t, Some(t))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 1);
        run_pipeline(&mut stream, 3600, &mut [&mut rt]);
    }
    let mut view = GlobalView::new();
    view.consume(&mq, "test");
    let mut tracker = MoasTracker::new();
    tracker.observe(&view);
    assert!(tracker.overall_count() > 0, "no MOAS observed");
    assert!(
        tracker.overall_count() >= tracker.max_single_collector(),
        "aggregation cannot lose MOAS sets"
    );
    std::fs::remove_dir_all(&dir).ok();
}
