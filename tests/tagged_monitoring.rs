//! Integration test for the §6.1 stateless tagging pipeline over a
//! simulated archive: classifier + geo taggers feed a tag counter and
//! a tag-gated prefix monitor.

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::{DumpType, LocalBroker};
use bgpstream_repro::corsaro::tag::{
    run_tagged_pipeline, ClassifierTagger, GeoTagger, TagCounter, TAG_ANNOUNCE, TAG_RIB,
    TAG_UPDATES, TAG_V4,
};
use bgpstream_repro::worlds;

#[test]
fn tagged_pipeline_over_simulated_archive() {
    let dir = worlds::scratch_dir("tagged_monitoring");
    let mut world = worlds::quickstart(dir.clone(), 99);
    world.sim.run_until(world.info.horizon);

    // Geo map from topology ground truth.
    let topo = world.sim.control_plane().topology().clone();
    let geo = GeoTagger::new(topo.nodes.iter().map(|n| (n.asn, n.country)));
    assert!(!geo.is_empty());

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();

    let mut classifier = ClassifierTagger;
    let mut geo_tagger = geo;
    let mut counter = TagCounter::new();
    let records = run_tagged_pipeline(
        &mut stream,
        300,
        &mut [&mut classifier, &mut geo_tagger],
        &mut [&mut counter],
    );
    assert!(records > 0, "no records in archive");
    assert!(!counter.rows().is_empty());

    // Aggregate across bins.
    let mut totals: std::collections::BTreeMap<String, u64> = Default::default();
    for (_bin, row) in counter.rows() {
        for (tag, n) in row {
            *totals.entry(tag.clone()).or_insert(0) += n;
        }
    }
    // The archive contains both dump types and both record classes.
    assert!(
        totals.get(TAG_RIB).copied().unwrap_or(0) > 0,
        "no rib tags: {totals:?}"
    );
    assert!(
        totals.get(TAG_UPDATES).copied().unwrap_or(0) > 0,
        "no updates tags"
    );
    assert!(
        totals.get(TAG_ANNOUNCE).copied().unwrap_or(0) > 0,
        "no announce tags"
    );
    assert!(totals.get(TAG_V4).copied().unwrap_or(0) > 0, "no v4 tags");
    // Geo tags resolve for announced prefixes.
    let geo_total: u64 = totals
        .iter()
        .filter(|(t, _)| t.starts_with("geo:"))
        .map(|(_, n)| *n)
        .sum();
    assert!(geo_total > 0, "no geo tags: {totals:?}");
    // Tag counts are internally consistent: every record is rib xor
    // updates, so the two together equal the record count.
    assert_eq!(
        totals.get(TAG_RIB).copied().unwrap_or(0) + totals.get(TAG_UPDATES).copied().unwrap_or(0),
        records,
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tag_gate_scopes_inner_plugin_to_dump_type() {
    use bgpstream_repro::corsaro::pipeline::Plugin;
    use bgpstream_repro::corsaro::tag::TagGate;

    /// Counts records and asserts they are all Updates records.
    struct UpdatesOnly(u64);
    impl Plugin for UpdatesOnly {
        fn name(&self) -> &'static str {
            "updates-only"
        }
        fn process_record(&mut self, record: &bgpstream_repro::bgpstream::BgpStreamRecord) {
            assert_eq!(record.dump_type(), DumpType::Updates);
            self.0 += 1;
        }
        fn end_bin(&mut self, _s: u64, _e: u64) {}
    }

    let dir = worlds::scratch_dir("tag_gate");
    let mut world = worlds::quickstart(dir.clone(), 7);
    world.sim.run_until(world.info.horizon);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.info.horizon))
        .start();

    let mut classifier = ClassifierTagger;
    let mut gate = TagGate::new(Some(TAG_UPDATES), UpdatesOnly(0));
    let records = run_tagged_pipeline(&mut stream, 300, &mut [&mut classifier], &mut [&mut gate]);
    let (forwarded, dropped) = gate.stats();
    assert_eq!(forwarded + dropped, records);
    assert!(forwarded > 0, "no updates forwarded");
    assert!(dropped > 0, "no rib records dropped");
    assert_eq!(gate.inner().0, forwarded);

    std::fs::remove_dir_all(&dir).ok();
}
