//! The Figure 7 distributed live-monitoring architecture, end to end:
//! one BGPCorsaro instance per collector (its own thread, its own live
//! stream) runs the RT plugin and publishes per-bin diffs to the
//! Kafka-like queue; a sync server watches the per-(collector, bin)
//! meta-data and releases bins per its policy; a consumer applies
//! released bins to the global view in order.

use std::time::Duration;

use bgpstream_repro::bgpstream::{BgpStream, Clock};
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::GlobalView;
use bgpstream_repro::corsaro::codec::RtMessage;
use bgpstream_repro::corsaro::{run_pipeline_until, RtPlugin};
use bgpstream_repro::mq::sync::{SyncPolicy, SyncServer};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

#[test]
fn figure7_per_collector_corsaro_sync_server_consumer() {
    let dir = worlds::scratch_dir("fig7");
    let mut world = worlds::quickstart(dir.clone(), 41);
    let horizon = world.info.horizon;
    world.sim.run_until(horizon);

    let mq = Cluster::shared();
    mq.create_topic("rt.tables", world.collectors.len());
    let clock = Clock::manual(0);
    let stop = horizon - 600;

    // One BGPCorsaro instance per collector, each in its own thread
    // over its own live stream (the paper: "one instance per
    // collector, in order to distribute the computation").
    let handles: Vec<_> = world
        .collectors
        .iter()
        .cloned()
        .map(|collector| {
            let index = world.index.clone();
            let mq = mq.clone();
            let clock = clock.clone();
            std::thread::spawn(move || {
                let mut stream = BgpStream::builder()
                    .broker_client(LocalBroker::shared(index))
                    .collector(&collector)
                    .live(0)
                    .clock(clock)
                    .live_grace(500)
                    .poll_interval(Duration::from_millis(1))
                    .start();
                let mut rt = RtPlugin::new(&collector).with_queue(mq, 4);
                run_pipeline_until(&mut stream, 300, stop, &mut [&mut rt])
            })
        })
        .collect();

    // Drive virtual time: the collectors' live windows unlock as the
    // clock passes window span + grace.
    let mut t = 0;
    while handles.iter().any(|h| !h.is_finished()) && t < horizon + 20 * 7200 {
        t += 600;
        clock.advance_to(t);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        handles.iter().all(|h| h.is_finished()),
        "a per-collector corsaro instance starved"
    );
    for h in handles {
        let records = h.join().expect("corsaro thread");
        assert!(records > 0, "a collector processed nothing");
    }

    // Collect the published messages across partitions, in timestamp
    // order (the sync server sees arrivals as they land in Kafka).
    let mut msgs = Vec::new();
    for part in 0..mq.partitions("rt.tables") {
        let mut off = 0u64;
        loop {
            let batch = mq.fetch("rt.tables", part, off, 1024);
            if batch.is_empty() {
                break;
            }
            off += batch.len() as u64;
            msgs.extend(batch);
        }
    }
    assert!(!msgs.is_empty(), "nothing published to the queue");
    msgs.sort_by_key(|m| m.timestamp);

    // Sync server: IODA-style timeout policy over both collectors.
    let mut sync = SyncServer::new(SyncPolicy::Timeout(1800), world.collectors.clone());
    let mut decisions = Vec::new();
    let mut decoded = std::collections::HashMap::new();
    for m in &msgs {
        let rt = RtMessage::decode(&m.payload).expect("well-formed RT message");
        let (collector, bin) = (rt.collector().to_string(), m.timestamp);
        sync.observe(&collector, bin, bin);
        decisions.extend(sync.poll(bin));
        decoded.entry(bin).or_insert_with(Vec::new).push(rt);
    }
    decisions.extend(sync.poll(u64::MAX));
    assert!(!decisions.is_empty(), "sync server released nothing");
    // Released in time order, no duplicates.
    for w in decisions.windows(2) {
        assert!(w[0].bin < w[1].bin, "bins out of order");
    }
    // The steady state is complete bins from both collectors (the
    // paper's IODA deployment sees all VPs for 99 % of bins).
    let complete = decisions.iter().filter(|d| d.complete).count();
    assert!(
        complete * 2 >= decisions.len(),
        "mostly-incomplete bins: {complete}/{}",
        decisions.len()
    );

    // Consumer: apply released bins in decision order.
    let mut view = GlobalView::new();
    for d in &decisions {
        for rt in decoded.get(&d.bin).into_iter().flatten() {
            view.apply(rt);
        }
    }
    assert!(view.vp_count() > 0, "empty global view");
    assert!(!view.visible_prefixes().is_empty());
    assert_eq!(view.collectors().len(), world.collectors.len());

    std::fs::remove_dir_all(&dir).ok();
}
