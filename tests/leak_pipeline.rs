//! Workspace-level integration: a scripted RFC 7908 route leak flows
//! through the complete monitoring pipeline — simulator → MRT archive
//! → broker → sorted stream → RT plugin → queue → valley-free leak
//! detector — and the detector names the scripted leaker.

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::{LeakDetector, RelOracle};
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

#[test]
fn route_leak_is_detected_through_the_full_pipeline() {
    let dir = worlds::scratch_dir("pipe-leak");
    let horizon = 4 * 3600;
    let mut world = worlds::leak_scenario(dir.clone(), 77, horizon, 1);
    let leaker = world.info.leaker.unwrap();
    let (leak_start, leak_duration) = world.info.leaks[0];
    world.sim.run_until(horizon);

    // Ground-truth relationship oracle, as the paper's deployment
    // would use CAIDA AS-relationship inferences.
    let oracle = RelOracle::from_topology(world.sim.control_plane().topology());

    // RT plugins per collector, publishing diffs per 5-minute bin.
    let mq = Cluster::shared();
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 0);
        run_pipeline(&mut stream, 300, &mut [&mut rt]);
    }

    let mut detector = LeakDetector::new(oracle);
    let consumed = detector.consume(&mq, "leak-pipeline");
    assert!(consumed > 0, "RT plugins published nothing");

    let (judged, _unknown) = detector.stats();
    assert!(judged > 0, "no paths judged");
    assert!(
        !detector.alarms().is_empty(),
        "scripted leak went undetected"
    );
    // Every alarm names the scripted leaker (nobody else leaks), and
    // alarm bins fall inside the scripted episode (RIB/update
    // propagation may add one bin of slack).
    for a in detector.alarms() {
        assert_eq!(a.leaker, leaker, "false attribution: {a:?}");
        assert!(
            a.bin + 600 >= leak_start && a.bin <= leak_start + leak_duration + 600,
            "alarm at bin {} outside episode [{leak_start}, {}]",
            a.bin,
            leak_start + leak_duration
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_world_raises_no_leak_alarms() {
    let dir = worlds::scratch_dir("pipe-leak-clean");
    let mut world = worlds::quickstart(dir.clone(), 13);
    world.sim.run_until(world.info.horizon);
    let oracle = RelOracle::from_topology(world.sim.control_plane().topology());

    let mq = Cluster::shared();
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(0, Some(world.info.horizon))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 0);
        run_pipeline(&mut stream, 300, &mut [&mut rt]);
    }
    let mut detector = LeakDetector::new(oracle);
    detector.consume(&mq, "leak-clean");
    let (judged, unknown) = detector.stats();
    assert!(judged > 0);
    assert_eq!(unknown, 0, "ground-truth oracle must know every link");
    assert!(
        detector.alarms().is_empty(),
        "false positives in a leak-free world: {:?}",
        detector.alarms()
    );
    std::fs::remove_dir_all(&dir).ok();
}
