//! Property: for **any** publication fault schedule — delay jitter,
//! collector stalls, out-of-order and duplicate publication — the
//! live pipeline's output restricted to closed bins is byte-identical
//! to a historical run over the final archive, at any worker count.
//!
//! This is the PR 5 live-mode soundness argument, executed: the
//! `LiveFeeder` replays a finished archive under a generated fault
//! plan while maintaining a truthful publication watermark; the
//! watermark-released live stream delivers exactly the historical
//! window batches (late and duplicate publications dedup or hold
//! release back, never drop); and `run_live` closes bins off that
//! watermark, so the merged plugin outputs cannot observe the faults
//! at all.
//!
//! `tests/broker_service.rs` extends the same invariant across the
//! wire: the nastiest fixed schedule below is also replayed through a
//! served broker (`RemoteBroker` → `BrokerService`) and must still
//! reproduce the historical baseline byte for byte.

use std::sync::Arc;

use bgpstream_repro::bgpstream::{BgpStream, Clock};
use bgpstream_repro::broker::{Index, LocalBroker};
use bgpstream_repro::collector_sim::{CrashPlan, FaultPlan, LiveFeeder, Stall, WorkerKill};
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{
    run_pipeline_until, Chaos, ElemCounter, KillSpec, PfxMonitor, Plugin, Supervisor,
    SupervisorConfig,
};
use bgpstream_repro::worlds;
use proptest::prelude::*;

/// The archive under test, simulated once and shared by every case.
struct Fixture {
    manifest: Vec<bgpstream_repro::broker::DumpMeta>,
    ranges: Vec<bgpstream_repro::bgp_types::Prefix>,
    horizon: u64,
    /// Bin boundary just past the last record (both runs stop here).
    stop: u64,
    /// Historical baseline output.
    baseline: Output,
}

#[derive(Clone, PartialEq, Debug)]
struct Output {
    records: u64,
    pfx_bytes: Vec<u8>,
    stats_bytes: Vec<u8>,
}

const BIN: u64 = 300;

fn fixture() -> &'static Fixture {
    static FIXTURE: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = worlds::scratch_dir("live-equiv");
        let mut world = worlds::quickstart(dir.clone(), 23);
        world.sim.run_until(world.info.horizon);
        let manifest = world.sim.manifest().to_vec();
        let ranges: Vec<_> = world
            .sim
            .control_plane()
            .topology()
            .nodes
            .iter()
            .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
            .collect();
        let mk_stream = |index: &Arc<Index>, horizon| {
            BgpStream::builder()
                .broker_client(LocalBroker::shared(index.clone()))
                .interval(0, Some(horizon))
                .start()
        };
        let mut probe = mk_stream(&world.index, world.info.horizon);
        let mut max_ts = 0u64;
        while let Some(r) = probe.next_record() {
            max_ts = max_ts.max(r.timestamp);
        }
        let stop = (max_ts / BIN) * BIN + BIN;
        let mut pfx = PfxMonitor::new(ranges.iter().copied());
        let mut stats = ElemCounter::new();
        let mut stream = mk_stream(&world.index, world.info.horizon);
        let records = run_pipeline_until(
            &mut stream,
            BIN,
            stop,
            &mut [&mut pfx as &mut dyn Plugin, &mut stats],
        );
        assert!(records > 0, "fixture archive must hold records");
        let baseline = Output {
            records,
            pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
            stats_bytes: format!("{:?}", stats.series).into_bytes(),
        };
        Fixture {
            manifest,
            ranges,
            horizon: world.info.horizon,
            stop,
            baseline,
        }
        // `dir` intentionally not removed: dump files must outlive the
        // fixture for every proptest case (temp dir, cleaned by the OS).
    })
}

fn run_live_under(plan: &FaultPlan, seed: u64, workers: usize) -> Output {
    let fx = fixture();
    let live_index = Arc::new(Index::with_window(900));
    let mut feeder = LiveFeeder::new(&fx.manifest, live_index.clone(), plan, seed);
    let clock = Clock::manual(0);
    let horizon = feeder.horizon();
    let driver = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut t = 0u64;
            while !feeder.done() {
                t += 500;
                feeder.publish_until(t);
                clock.advance_to(t);
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            clock.advance_to(horizon.saturating_add(1));
        })
    };
    let mut pfx = PfxMonitor::new(fx.ranges.iter().copied());
    let mut stats = ElemCounter::new();
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(1))
        .start();
    let runtime = ShardedRuntime::builder()
        .workers(workers)
        .bin_size(BIN)
        .build();
    let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut pfx, &mut stats];
    let report = if plan.crash.is_empty() {
        runtime
            .run_live(&mut stream, fx.stop, None, &mut plugins)
            .expect("run_live")
    } else {
        // Crash schedules run under supervision: a manual supervisor
        // clock makes backoff instant, and the stall timeout is parked
        // out of reach so the only restarts are the scheduled kills.
        let cfg = SupervisorConfig {
            max_restarts: 16,
            backoff_base_ms: 1,
            backoff_max_ms: 4,
            stall_timeout_ms: u64::MAX / 4,
            clock: bgpstream_repro::bsync::time::Clock::manual(0),
            seed: seed ^ 0x5eed,
        };
        let chaos = Chaos {
            kills: plan
                .crash
                .kills
                .iter()
                .map(|k| KillSpec {
                    worker: k.worker,
                    at_record: k.at_record,
                    times: k.times,
                })
                .collect(),
            torn_checkpoints: plan.crash.torn_checkpoints.clone(),
        };
        let report = Supervisor::new(runtime)
            .with_config(cfg)
            .with_chaos(chaos)
            .run_live(&mut stream, fx.stop, None, &mut plugins)
            .expect("supervised run_live");
        assert_eq!(
            report.restarts,
            plan.crash.kills.len() as u64,
            "every scheduled kill fires exactly once"
        );
        assert!(
            report.partial_bins.is_empty(),
            "times=1 kills never degrade"
        );
        report
    };
    driver.join().expect("feeder driver");
    assert!(!report.shutdown);
    Output {
        records: report.records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
    }
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    let stall = (
        0u64..7200,
        0u64..2000,
        prop_oneof![Just(None), (0usize..2).prop_map(Some)],
    )
        .prop_map(|(start, duration, collector)| Stall {
            start,
            duration,
            collector,
        });
    (
        (0u64..600).prop_map(|hi| (0, hi)),
        proptest::collection::vec(stall, 0..3),
        0.0f64..0.6,
        0.0f64..0.6,
    )
        .prop_map(
            |(extra_delay, stalls, swap_prob, duplicate_prob)| FaultPlan {
                extra_delay,
                stalls,
                swap_prob,
                duplicate_prob,
                crash: CrashPlan::none(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random fault schedule × random worker count × random seed:
    /// closed-bin output must equal the historical baseline, byte for
    /// byte.
    #[test]
    fn live_closed_bins_equal_historical_for_any_fault_schedule(
        plan in arb_plan(),
        seed in 0u64..1_000,
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let fx = fixture();
        let live = run_live_under(&plan, seed, workers);
        prop_assert_eq!(
            &live, &fx.baseline,
            "diverged under plan {:?} seed {} workers {}", plan, seed, workers
        );
    }

    /// Random *crash* schedule on top of a random publication fault
    /// schedule: worker kills (single-fire) and torn checkpoint
    /// writes, recovered by the supervisor via checkpoint-restore-
    /// replay, must leave the closed-bin output byte-identical to the
    /// historical baseline — nothing dropped, nothing duplicated.
    #[test]
    fn live_closed_bins_survive_random_crash_schedules(
        mut plan in arb_plan(),
        kill_fracs in proptest::collection::vec((0usize..4, 1u64..100), 1..4),
        torn in proptest::collection::vec((0usize..4, 1u64..4), 0..3),
        seed in 0u64..1_000,
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let fx = fixture();
        // Kill points are generated as fractions of the record count
        // so schedules stay meaningful whatever the fixture's size.
        plan.crash = CrashPlan {
            kills: kill_fracs
                .iter()
                .map(|&(w, frac)| WorkerKill {
                    worker: w % workers,
                    at_record: fx.baseline.records * frac / 100,
                    times: 1,
                })
                .collect(),
            torn_checkpoints: torn.iter().map(|&(w, n)| (w % workers, n)).collect(),
        };
        let live = run_live_under(&plan, seed, workers);
        prop_assert_eq!(
            &live, &fx.baseline,
            "diverged under crash plan {:?} seed {} workers {}", plan, seed, workers
        );
    }
}

#[test]
fn live_equals_historical_under_the_nastiest_fixed_schedule() {
    // A deterministic worst case kept out of the generator so it always
    // runs: long delays, an all-collector stall, heavy reordering and
    // duplication — plus the full worker matrix.
    let fx = fixture();
    let plan = FaultPlan {
        extra_delay: (0, 900),
        stalls: vec![
            Stall {
                start: fx.horizon / 4,
                duration: 1800,
                collector: None,
            },
            Stall {
                start: fx.horizon / 2,
                duration: 900,
                collector: Some(1),
            },
        ],
        swap_prob: 0.5,
        duplicate_prob: 0.5,
        crash: CrashPlan::none(),
    };
    for workers in [1usize, 2, 4] {
        let live = run_live_under(&plan, 4242, workers);
        assert_eq!(live, fx.baseline, "workers={workers}");
    }
}

#[test]
fn live_equals_historical_under_publication_faults_plus_crash_storm() {
    // The nastiest publication schedule *and* a crash storm on top:
    // every worker dies at least once (worker 0 twice), two checkpoint
    // writes are torn. The supervisor must absorb all of it without
    // the closed-bin output drifting a byte.
    let fx = fixture();
    let n = fx.baseline.records;
    let plan = FaultPlan {
        extra_delay: (0, 900),
        stalls: vec![Stall {
            start: fx.horizon / 4,
            duration: 1800,
            collector: None,
        }],
        swap_prob: 0.5,
        duplicate_prob: 0.5,
        crash: CrashPlan {
            kills: vec![
                WorkerKill {
                    worker: 0,
                    at_record: n / 7,
                    times: 1,
                },
                WorkerKill {
                    worker: 1,
                    at_record: n / 3,
                    times: 1,
                },
                WorkerKill {
                    worker: 0,
                    at_record: n / 2,
                    times: 1,
                },
                WorkerKill {
                    worker: 1,
                    at_record: 5 * n / 6,
                    times: 1,
                },
            ],
            torn_checkpoints: vec![(0, 1), (1, 2)],
        },
    };
    for workers in [2usize, 4] {
        let live = run_live_under(&plan, 77, workers);
        assert_eq!(live, fx.baseline, "workers={workers}");
    }
}
