//! The served-broker contract: a pipeline is **byte-identical**
//! whether its stream talks to the broker in-process
//! ([`LocalBroker`]) or across the message queue
//! ([`RemoteBroker`] → [`BrokerService`]) — in historical mode and in
//! live mode under publication faults — and the service's multi-tenant
//! behaviours (lease expiry, resume-by-lease exactly-once, admission
//! control) surface as typed errors on the stream.

use std::sync::Arc;
use std::time::Duration;

use bgpstream_repro::bgpstream::{BgpStream, Clock};
use bgpstream_repro::broker::{
    BrokerClient, BrokerError, BrokerService, DumpMeta, DumpType, Index, LocalBroker, RemoteBroker,
    RemoteConfig, ServiceConfig,
};
use bgpstream_repro::collector_sim::{FaultPlan, LiveFeeder, Stall};
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{run_pipeline_until, ElemCounter, PfxMonitor, Plugin};
use bgpstream_repro::mq::Cluster;
use bgpstream_repro::worlds;

const BIN: u64 = 300;

/// The archive under test, simulated once and shared by every case.
struct Fixture {
    /// Final archive index (all dumps registered, fully published).
    index: Arc<Index>,
    manifest: Vec<DumpMeta>,
    ranges: Vec<bgpstream_repro::bgp_types::Prefix>,
    horizon: u64,
    /// Bin boundary just past the last record (all runs stop here).
    stop: u64,
    /// Historical output through the local broker — the baseline
    /// every other client/mode must reproduce byte for byte.
    baseline: Output,
}

#[derive(Clone, PartialEq, Debug)]
struct Output {
    records: u64,
    pfx_bytes: Vec<u8>,
    stats_bytes: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = worlds::scratch_dir("broker-svc");
        let mut world = worlds::quickstart(dir, 31);
        world.sim.run_until(world.info.horizon);
        let manifest = world.sim.manifest().to_vec();
        let ranges: Vec<_> = world
            .sim
            .control_plane()
            .topology()
            .nodes
            .iter()
            .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
            .collect();
        let mut probe = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.info.horizon))
            .start();
        let mut max_ts = 0u64;
        while let Some(r) = probe.next_record() {
            max_ts = max_ts.max(r.timestamp);
        }
        let stop = (max_ts / BIN) * BIN + BIN;
        let baseline = run_historical(
            LocalBroker::shared(world.index.clone()),
            &ranges,
            world.info.horizon,
            stop,
        );
        assert!(baseline.records > 0, "fixture archive must hold records");
        Fixture {
            index: world.index.clone(),
            manifest,
            ranges,
            horizon: world.info.horizon,
            stop,
            baseline,
        }
        // Scratch dir intentionally kept: dump files must outlive the
        // fixture for every test (temp dir, cleaned by the OS).
    })
}

/// Run the full historical plugin pipeline through `client`.
fn run_historical(
    client: Arc<dyn BrokerClient>,
    ranges: &[bgpstream_repro::bgp_types::Prefix],
    horizon: u64,
    stop: u64,
) -> Output {
    let mut pfx = PfxMonitor::new(ranges.iter().copied());
    let mut stats = ElemCounter::new();
    let mut stream = BgpStream::builder()
        .broker_client(client)
        .interval(0, Some(horizon))
        .start();
    let records = run_pipeline_until(
        &mut stream,
        BIN,
        stop,
        &mut [&mut pfx as &mut dyn Plugin, &mut stats],
    );
    assert!(
        stream.last_error().is_none(),
        "historical run hit {:?}",
        stream.last_error()
    );
    Output {
        records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
    }
}

/// Replay the archive under `plan` live faults and run the sharded
/// live pipeline through `mk_client` (handed the live index so it can
/// build either a local or a served client over it).
fn run_live_through(
    plan: &FaultPlan,
    seed: u64,
    workers: usize,
    mk_client: impl FnOnce(Arc<Index>) -> Arc<dyn BrokerClient>,
) -> Output {
    let fx = fixture();
    let live_index = Arc::new(Index::with_window(900));
    let mut feeder = LiveFeeder::new(&fx.manifest, live_index.clone(), plan, seed);
    let clock = Clock::manual(0);
    let horizon = feeder.horizon();
    let driver = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut t = 0u64;
            while !feeder.done() {
                t += 500;
                feeder.publish_until(t);
                clock.advance_to(t);
                std::thread::sleep(Duration::from_micros(300));
            }
            clock.advance_to(horizon.saturating_add(1));
        })
    };
    let mut pfx = PfxMonitor::new(fx.ranges.iter().copied());
    let mut stats = ElemCounter::new();
    let mut stream = BgpStream::builder()
        .broker_client(mk_client(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(Duration::from_millis(1))
        .start();
    let report = ShardedRuntime::builder()
        .workers(workers)
        .bin_size(BIN)
        .build()
        .run_live(
            &mut stream,
            fx.stop,
            None,
            &mut [&mut pfx as &mut dyn ShardedPlugin, &mut stats],
        )
        .expect("run_live");
    driver.join().expect("feeder driver");
    assert!(!report.shutdown);
    assert!(
        stream.last_error().is_none(),
        "live run hit {:?}",
        stream.last_error()
    );
    Output {
        records: report.records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
    }
}

#[test]
fn historical_pipeline_identical_through_local_and_remote() {
    let fx = fixture();
    let cluster = Cluster::shared();
    let handle =
        BrokerService::new(cluster.clone(), fx.index.clone(), ServiceConfig::default()).spawn();

    // Two remote tenants page the same interval back to back: both
    // must equal the local baseline, and the second rides the
    // service's memo cache.
    for client_id in ["hist-a", "hist-b"] {
        let remote: Arc<dyn BrokerClient> = Arc::new(RemoteBroker::new(cluster.clone(), client_id));
        let out = run_historical(remote, &fx.ranges, fx.horizon, fx.stop);
        assert_eq!(out, fx.baseline, "remote {client_id} diverged from local");
    }

    let stats = handle.shutdown();
    assert!(stats.requests > 0);
    assert_eq!(stats.busy, 0, "no admission sheds expected at this load");
    assert!(
        stats.cache_hits > 0,
        "second tenant must hit the memoized pages: {stats:?}"
    );
}

#[test]
fn live_pipeline_identical_through_local_and_remote_under_faults() {
    // The PR 5 live-equivalence invariant, extended across the wire:
    // the nastiest fixed fault schedule, run through a served broker,
    // must still produce the historical baseline byte for byte.
    let fx = fixture();
    let plan = FaultPlan {
        extra_delay: (0, 900),
        stalls: vec![
            Stall {
                start: fx.horizon / 4,
                duration: 1800,
                collector: None,
            },
            Stall {
                start: fx.horizon / 2,
                duration: 900,
                collector: Some(1),
            },
        ],
        swap_prob: 0.5,
        duplicate_prob: 0.5,
        crash: collector_sim::CrashPlan::none(),
    };
    let local = run_live_through(&plan, 77, 2, |idx| LocalBroker::shared(idx));
    assert_eq!(local, fx.baseline, "local live diverged from historical");
    let remote = run_live_through(&plan, 77, 2, |idx| {
        let cluster = Cluster::shared();
        // Leak the handle: the service lives for the whole test; its
        // thread parks on the request topic once the run ends.
        let _ = BrokerService::new(cluster.clone(), idx, ServiceConfig::default()).spawn();
        Arc::new(RemoteBroker::new(cluster, "live-remote"))
    });
    assert_eq!(remote, fx.baseline, "remote live diverged from historical");
}

/// Write a tiny updates dump holding keepalives at `stamps`.
fn write_dump(dir: &std::path::Path, name: &str, stamps: &[u32]) -> std::path::PathBuf {
    use bgpstream_repro::mrt::{Bgp4mp, MrtRecord, MrtWriter};
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
    for &ts in stamps {
        w.write(&MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn: bgpstream_repro::bgp_types::Asn(65001),
                local_asn: bgpstream_repro::bgp_types::Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: bgpstream_repro::bgp_types::BgpMessage::Keepalive,
            },
        ))
        .unwrap();
    }
    path
}

fn register(idx: &Index, path: std::path::PathBuf, start: u64) {
    idx.register(DumpMeta {
        project: "ris".into(),
        collector: "rrc00".into(),
        dump_type: DumpType::Updates,
        interval_start: start,
        duration: 300,
        path,
        available_at: 0,
        size: 1,
    });
}

#[test]
fn lease_expiry_mid_window_ends_the_stream_with_a_typed_error() {
    let dir = worlds::scratch_dir("svc-expiry");
    let idx = Arc::new(Index::with_window(900));
    register(&idx, write_dump(&dir, "w0.mrt", &[10, 20]), 0);
    idx.advance_watermark(900);
    let cluster = Cluster::shared();
    let handle = BrokerService::new(
        cluster.clone(),
        idx.clone(),
        ServiceConfig {
            lease_ttl: Duration::from_millis(80),
            ..Default::default()
        },
    )
    .spawn();
    let mut stream = BgpStream::builder()
        .broker_client(Arc::new(RemoteBroker::new(cluster, "expiring")))
        .live(0)
        .watermark_release()
        .clock(Clock::manual(0))
        .poll_interval(Duration::from_millis(1))
        .start();
    assert_eq!(stream.next_record().unwrap().timestamp, 10);
    assert_eq!(stream.next_record().unwrap().timestamp, 20);
    // The client goes quiet past the TTL (no polls, no renews): the
    // service reaps the lease even though the session is mid-window.
    std::thread::sleep(Duration::from_millis(200));
    assert!(stream.next_record().is_none(), "expired session must end");
    assert_eq!(stream.last_error(), Some(&BrokerError::LeaseExpired));
    let stats = handle.shutdown();
    assert_eq!(stats.leases_expired, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_by_lease_id_is_exactly_once_across_reconnect() {
    let dir = worlds::scratch_dir("svc-resume");
    let idx = Arc::new(Index::with_window(900));
    register(&idx, write_dump(&dir, "w0.mrt", &[10, 20]), 0);
    register(&idx, write_dump(&dir, "w1.mrt", &[910, 920]), 900);
    idx.advance_watermark(900); // releases window [0, 900) only
    let cluster = Cluster::shared();
    let handle = BrokerService::new(cluster.clone(), idx.clone(), ServiceConfig::default()).spawn();

    let mk = |resume| {
        let mut b = BgpStream::builder()
            .broker_client(Arc::new(RemoteBroker::new(cluster.clone(), "phoenix")))
            .live(0)
            .watermark_release()
            .clock(Clock::manual(0))
            .poll_interval(Duration::from_millis(1));
        if let Some(lease) = resume {
            b = b.resume_live_lease(lease);
        }
        b.start()
    };

    // Incarnation one drains the first window, then "crashes".
    let mut first = mk(None);
    let lease = first.live_lease().expect("live stream holds a lease");
    assert_eq!(first.next_record().unwrap().timestamp, 10);
    assert_eq!(first.next_record().unwrap().timestamp, 20);
    drop(first);

    // The second window becomes releasable while nobody is connected.
    idx.advance_watermark(1800);

    // Incarnation two re-attaches by lease id: the server-side cursor
    // remembers the first window was delivered, so the resumed stream
    // sees ONLY the new window — nothing duplicated, nothing lost.
    let mut second = mk(Some(lease));
    assert_eq!(second.live_lease(), Some(lease));
    assert_eq!(second.next_record().unwrap().timestamp, 910);
    assert_eq!(second.next_record().unwrap().timestamp, 920);
    let stats = handle.shutdown();
    assert_eq!(stats.leases_opened, 1);
    assert_eq!(stats.leases_resumed, 1);
    assert_eq!(stats.leases_expired, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admission_control_surfaces_busy_on_the_stream() {
    // A service admitting nothing: every request is shed with Busy.
    // The remote client retries its configured budget, then the error
    // surfaces as stream termination with a typed cause.
    let cluster = Cluster::shared();
    let handle = BrokerService::new(
        cluster.clone(),
        Arc::new(Index::with_window(900)),
        ServiceConfig {
            max_inflight_global: 0,
            ..Default::default()
        },
    )
    .spawn();
    let remote = Arc::new(RemoteBroker::with_config(
        cluster,
        "shed-me",
        RemoteConfig {
            busy_retries: 2,
            busy_backoff: Duration::from_micros(100),
            ..Default::default()
        },
    ));
    let mut stream = BgpStream::builder()
        .broker_client(remote.clone())
        .interval(0, Some(1000))
        .start();
    assert!(stream.next_record().is_none());
    assert_eq!(stream.last_error(), Some(&BrokerError::Busy));
    // Initial attempt + 2 retries, all shed.
    assert_eq!(remote.busy_sheds_observed(), 3);
    let stats = handle.shutdown();
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.busy, 3);
}
