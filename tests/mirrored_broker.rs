//! Integration: §3.2 mirror load balancing. The same archive is
//! replicated to a mirror root; the broker round-robins dump-file
//! paths across mirror and primary; the sorted stream output is
//! byte-identical to the unmirrored run, with requests actually
//! spread — and a *partial* mirror degrades only the spread, never
//! the data.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bgpstream_repro::bgpstream::{ascii, BgpStream};
use bgpstream_repro::broker::{LocalBroker, MirrorPolicy, MirrorSet};
use bgpstream_repro::worlds;

/// Recursively copy an archive tree.
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Drain a full stream into bgpdump-format lines.
fn drain(index: Arc<bgpstream_repro::broker::Index>, horizon: u64) -> Vec<String> {
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(index))
        .interval(0, Some(horizon))
        .start();
    let mut lines = Vec::new();
    while let Some(rec) = stream.next_record() {
        for elem in rec.elems() {
            lines.push(ascii::elem_line(&rec, elem));
        }
    }
    lines
}

#[test]
fn mirrored_stream_is_identical_and_spread() {
    let dir = worlds::scratch_dir("mirrors");
    let mut world = worlds::quickstart(dir.clone(), 31);
    world.sim.run_until(world.info.horizon);
    let horizon = world.info.horizon;

    // Baseline: no mirrors.
    let baseline = drain(world.index.clone(), horizon);
    assert!(!baseline.is_empty());

    // Full replica.
    let mirror_root = dir.parent().unwrap().join(format!(
        "{}-mirror",
        dir.file_name().unwrap().to_string_lossy()
    ));
    copy_tree(&dir, &mirror_root);
    let mirrors = Arc::new(MirrorSet::new(
        &dir,
        vec![mirror_root.clone()],
        MirrorPolicy::RoundRobin,
    ));
    world.index.set_mirrors(mirrors.clone());

    let mirrored = drain(world.index.clone(), horizon);
    assert_eq!(mirrored, baseline, "mirroring changed stream content");
    let hits = mirrors.hit_counts();
    assert!(hits[0] > 0, "mirror never used: {hits:?}");
    assert!(hits[1] > 0, "primary never used: {hits:?}");
    assert_eq!(mirrors.miss_count(), 0);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&mirror_root).ok();
}

/// Regression (loom_mirror model test's integration twin): demoting a
/// mirror while a stream is mid-poll must not skip or double-deliver
/// any window. The first half of the stream is served with the mirror
/// preferred; the mirror is then marked offline mid-stream and the
/// drain continues — the concatenated output must be byte-identical
/// to the unmirrored baseline, and the demoted mirror must serve
/// nothing more.
#[test]
fn demote_mid_poll_never_skips_or_repeats_a_window() {
    let dir = worlds::scratch_dir("mirrors-demote");
    let mut world = worlds::quickstart(dir.clone(), 33);
    world.sim.run_until(world.info.horizon);
    let horizon = world.info.horizon;
    let baseline = drain(world.index.clone(), horizon);
    assert!(baseline.len() > 4, "world too small to split mid-stream");

    let mirror_root = dir.parent().unwrap().join(format!(
        "{}-mirror",
        dir.file_name().unwrap().to_string_lossy()
    ));
    copy_tree(&dir, &mirror_root);
    let mirrors = Arc::new(MirrorSet::new(
        &dir,
        vec![mirror_root.clone()],
        MirrorPolicy::Preferred(0),
    ));
    world.index.set_mirrors(mirrors.clone());

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(horizon))
        .start();
    let mut lines = Vec::new();
    // First half: mirror preferred and online — it takes the traffic.
    while lines.len() < baseline.len() / 2 {
        let rec = stream.next_record().expect("baseline says more records");
        for elem in rec.elems() {
            lines.push(ascii::elem_line(&rec, elem));
        }
    }
    let mirror_hits_at_demotion = mirrors.hit_counts()[0];
    assert!(mirror_hits_at_demotion > 0, "mirror never served");

    // Health checker demotes the mirror mid-poll.
    mirrors.set_online(0, false);
    assert!(!mirrors.is_online(0));

    // Second half: every remaining window must still arrive, exactly
    // once, served by the primary.
    while let Some(rec) = stream.next_record() {
        for elem in rec.elems() {
            lines.push(ascii::elem_line(&rec, elem));
        }
    }
    assert_eq!(
        lines, baseline,
        "demotion mid-poll skipped or repeated a window"
    );
    assert_eq!(
        mirrors.hit_counts()[0],
        mirror_hits_at_demotion,
        "demoted mirror kept serving"
    );
    assert_eq!(mirrors.miss_count(), 0, "demotion must not count as a miss");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&mirror_root).ok();
}

#[test]
fn partial_mirror_degrades_spread_not_content() {
    let dir = worlds::scratch_dir("mirrors-partial");
    let mut world = worlds::quickstart(dir.clone(), 32);
    world.sim.run_until(world.info.horizon);
    let horizon = world.info.horizon;
    let baseline = drain(world.index.clone(), horizon);

    // Replica missing half its files (a mirror mid-sync).
    let mirror_root: PathBuf = dir.parent().unwrap().join(format!(
        "{}-mirror",
        dir.file_name().unwrap().to_string_lossy()
    ));
    copy_tree(&dir, &mirror_root);
    let mut removed = 0;
    fn prune(dir: &Path, removed: &mut u32) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_dir() {
                prune(&entry.path(), removed);
            } else if removed.is_multiple_of(2) {
                std::fs::remove_file(entry.path()).unwrap();
                *removed += 1;
            } else {
                *removed += 1;
            }
        }
    }
    prune(&mirror_root, &mut removed);
    assert!(removed > 0);

    let mirrors = Arc::new(MirrorSet::new(
        &dir,
        vec![mirror_root.clone()],
        MirrorPolicy::RoundRobin,
    ));
    world.index.set_mirrors(mirrors.clone());
    let mirrored = drain(world.index.clone(), horizon);
    assert_eq!(mirrored, baseline, "partial mirror corrupted the stream");
    assert!(
        mirrors.miss_count() > 0,
        "expected fall-backs from pruned mirror"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&mirror_root).ok();
}
