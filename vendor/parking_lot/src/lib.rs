//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with the poison-free `parking_lot`
//! API surface the workspace uses: `Mutex::lock()` returning a guard
//! directly, `RwLock::read()/write()`, and `Condvar::wait/wait_for`
//! taking `&mut MutexGuard`. Poisoned locks (a panic while holding the
//! guard) are recovered rather than propagated, matching parking_lot's
//! no-poisoning behaviour.
//!
//! The guard holds its std guard in an `Option` so the condvar can
//! release and reacquire it through a `&mut` borrow in safe code.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condvar wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified. The lock is released while waiting and
    /// reacquired before returning, like `parking_lot`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard taken during condvar wait");
        let reacquired = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let owned = guard.inner.take().expect("guard taken during condvar wait");
        let (reacquired, res) = self
            .0
            .wait_timeout(owned, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let res = c.wait_for(&mut ready, Duration::from_secs(5));
            assert!(!res.timed_out(), "worker never signalled");
        }
        t.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
