//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 256;

/// A recipe for generating values of `Self::Value`. Object-safe so
/// heterogeneous strategies can be boxed (see [`OneOf`]); no shrinking.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_RETRIES} retries: {}",
            self.whence
        );
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u32..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).new_value(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let s = OneOf::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(4);
        let (a, b, c) = (0u8..10, 10u8..20, 20u8..30).new_value(&mut rng);
        assert!(a < 10 && (10..20).contains(&b) && (20..30).contains(&c));
    }
}
