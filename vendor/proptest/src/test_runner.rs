//! Test configuration, case errors, and the deterministic RNG that
//! drives value generation.

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite fast
        // while still exercising the codecs broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`); the case is skipped.
    Reject(String),
    /// Assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic generator (splitmix64). Each test derives its stream
/// from the test path so runs are reproducible without global state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a test path (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for the small bounds tests use.
        self.next_u64() % bound
    }

    /// Derive an independent seed for one test case.
    pub fn fork(&mut self) -> u64 {
        self.next_u64()
    }
}
