//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, 0..8)` — a `Vec` whose length is drawn from `size`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_within_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u8..10, 2..6);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            lens.insert(v.len());
            assert!(v.iter().all(|e| *e < 10));
        }
        assert_eq!(lens.len(), 4, "all lengths 2..6 should appear");
    }
}
