//! `proptest::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `of(strategy)` — `None` about a quarter of the time, like the real
/// crate's default weighting, `Some(value)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
