//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! shim reimplements the subset of proptest the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter`, range and tuple strategies, `any::<T>()`,
//! `collection::vec`, `option::of`, simple `[a-z]{m,n}` string
//! strategies, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert*` / `prop_assume!`.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! values are generated from a deterministic per-test RNG (seeded from
//! the test path), there is **no shrinking** — a failing case is
//! reported as-is with its case seed — and rejection sampling is
//! bounded rather than globally budgeted.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The `proptest!` block: expands each `#[test] fn name(pat in strategy, ...)`
/// into a plain `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut seeder = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let strategies = ($($strategy,)+);
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let case_seed = seeder.fork();
                let mut case_rng = $crate::test_runner::TestRng::from_seed(case_seed);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::new_value(&strategies, &mut case_rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(16).max(256) {
                            panic!(
                                "proptest: too many rejected cases in {} ({} rejects): {}",
                                stringify!($name), rejected, e
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => panic!(
                        "proptest case {} of {} failed (seed {:#x}): {}",
                        case + 1, stringify!($name), case_seed, e
                    ),
                }
            }
        }
    )*};
}
