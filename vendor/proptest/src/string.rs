//! String strategies from a small regex subset.
//!
//! The real crate interprets `&str` strategies as full regexes. This
//! shim supports the forms the workspace actually uses — literal
//! characters and character classes `[a-z]`, optionally repeated with
//! `{m}` or `{m,n}` — and panics on anything fancier so new patterns
//! fail loudly rather than silently generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges, e.g. `[a-z0-9]` is `[('a','z'), ('0','9')]`.
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in {pattern:?}"));
                        assert!(lo <= hi, "inverted range in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' | '^' | '$' => {
                panic!("unsupported regex construct {c:?} in {pattern:?} (offline proptest shim)")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    n.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                ),
                None => {
                    let n = spec
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below((piece.max - piece.min) as u64 + 1) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = *hi as u64 - *lo as u64 + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repeat() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".new_value(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!("rrc".new_value(&mut rng), "rrc");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_constructs_panic() {
        let mut rng = TestRng::from_seed(8);
        let _ = "(a|b)".new_value(&mut rng);
    }
}
