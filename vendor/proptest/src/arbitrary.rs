//! `any::<T>()` — full-range value generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// Strategy form of [`Arbitrary`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
