//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of the `bytes` API the workspace actually
//! uses: big-endian `Buf`/`BufMut` cursors plus the `Bytes`/`BytesMut`
//! owned buffers. Semantics match the real crate for that subset;
//! zero-copy sharing is intentionally not reproduced (`Bytes` clones
//! are deep), which is fine for correctness and for the scale of the
//! tests and benches in this repository.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte source. All integer getters are
/// big-endian (network order), matching the real `bytes` crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let src = self.chunk();
        dst.copy_from_slice(&src[..dst.len()]);
        let n = dst.len();
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write sink for big-endian wire encoding.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable owned byte buffer. Unlike the real crate this is a plain
/// `Vec<u8>` with a read cursor: clones are deep copies.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

// Equality/hash are over the unread content only, like the real
// crate: a partially consumed buffer equals a fresh one with the
// same remaining bytes.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::iter::Skip<std::vec::IntoIter<u8>>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter().skip(self.pos)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer with a read cursor at the front: writes append
/// at the back, `Buf` reads consume from the front.
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    pos: usize,
}

// Content-only equality over the unread remainder, like `Bytes`.
impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Consume the buffer, yielding the unread remainder as `Bytes`.
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.data.drain(..self.pos);
        }
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Split off and return the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end");
        let head = self.data[self.pos..self.pos + at].to_vec();
        self.pos += at;
        BytesMut { data: head, pos: 0 }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, pos: 0 }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0xbeef);
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        b.put_u128(1 << 100);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 16 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xbeef);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_u128(), 1 << 100);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(!b.has_remaining());
    }

    #[test]
    fn freeze_drops_consumed_prefix() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        b.advance(2);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[3, 4]);
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![9u8, 1, 2]);
        a.advance(1);
        assert_eq!(a, Bytes::from(vec![1u8, 2]));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = h1.clone();
        use std::hash::{Hash, Hasher};
        a.hash(&mut h1);
        Bytes::from(vec![1u8, 2]).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());

        let mut m = BytesMut::from(&[9u8, 1, 2][..]);
        m.advance(1);
        assert_eq!(m, BytesMut::from(&[1u8, 2][..]));
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[0, 0, 1, 0];
        assert_eq!(s.get_u16(), 0);
        assert_eq!(s.get_u16(), 256);
        assert!(!s.has_remaining());
    }
}
