#![forbid(unsafe_code)]
//! A miniature [loom]/[CHESS]-style model checker for the workspace's
//! concurrency, written against the same offline constraint as every
//! other `vendor/` shim: pure safe Rust, std only.
//!
//! [loom]: https://github.com/tokio-rs/loom
//! [CHESS]: https://www.microsoft.com/en-us/research/project/chess-find-and-reproduce-heisenbugs-in-concurrent-programs/
//!
//! # How it works
//!
//! [`explore`] (or the panicking wrapper [`model`]) runs a closure
//! over and over. Each execution runs its threads as real OS threads,
//! but *serialized*: exactly one thread holds the scheduler's turn,
//! and every instrumented operation — [`sync::Mutex`] lock/unlock,
//! [`sync::Condvar`] wait/notify, [`sync::atomic`] access,
//! [`thread::spawn`]/join — is a decision point where the scheduler
//! picks the next thread from the enabled set. The driver enumerates
//! those decisions depth-first, bounded by a preemption budget
//! ([`Builder::max_preemptions`], CHESS-style) and an iteration budget,
//! so small models are exhaustive and larger ones deterministic
//! samples.
//!
//! Timed condvar waits are modeled as a nondeterministic choice: the
//! scheduler explores both the notified path and the spontaneous
//! timeout, whatever duration was requested. Deadlocks (every live
//! thread blocked, no timeout schedulable) are failures, as are
//! panics in any model thread and executions exceeding the step
//! budget (livelock).
//!
//! # Replay
//!
//! A [`Failure`] carries the schedule that produced it as a
//! comma-separated choice string. Re-running the same test with
//! `LOOM_LITE_SCHEDULE="<string>"` (or `Builder::schedule`) replays
//! exactly that interleaving — print-debug friendly, single
//! execution. Budgets come from `LOOM_LITE_PREEMPTIONS`,
//! `LOOM_LITE_MAX_ITERS` and `LOOM_LITE_MAX_STEPS` when set.
//!
//! # Rules for model closures
//!
//! * Create all shared state *inside* the closure — each execution
//!   must start fresh.
//! * Spawn threads through [`thread::spawn`] (or the `bsync` facade),
//!   never `std::thread`, or they escape the scheduler.
//! * No wall-clock waiting: real sleeps stall every modeled thread.
//!
//! When no model is active the instrumented types fall back to plain
//! `std::sync` behaviour, which is what lets the `bsync` facade switch
//! the whole workspace over under `--features loom-lite` while regular
//! tests keep passing.

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{explore, model, Builder, Failure, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn quiet() -> Builder {
        Builder {
            max_preemptions: 2,
            max_iters: 50_000,
            max_steps: 20_000,
            schedule: None,
        }
    }

    #[test]
    fn fallback_mutex_works_without_model() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_guarded_counter_is_exhaustively_correct() {
        let report = explore(&quiet(), || {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || *n2.lock() += 1);
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        })
        .expect("no failing schedule exists");
        assert!(report.complete, "small model must be exhausted");
        assert!(report.iterations > 1, "must explore >1 interleaving");
    }

    #[test]
    fn lost_update_race_is_found_and_replayable() {
        // Classic unsynchronized read-modify-write: load then store.
        let racy = || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = explore(&quiet(), racy).expect_err("checker must find the lost update");
        assert!(
            failure.kind.contains("lost update"),
            "kind: {}",
            failure.kind
        );
        assert!(!failure.schedule.is_empty());
        // Replaying the failing schedule must reproduce the failure
        // deterministically, first try.
        let replay = Builder {
            schedule: Some(failure.schedule.clone()),
            ..quiet()
        };
        let again = explore(&replay, racy).expect_err("replay must reproduce");
        assert!(again.kind.contains("lost update"));
    }

    #[test]
    fn ab_ba_deadlock_is_detected() {
        let failure = explore(&quiet(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_gb, _ga));
            t.join().unwrap();
        })
        .expect_err("AB-BA order must deadlock under some schedule");
        assert!(failure.kind.contains("deadlock"), "kind: {}", failure.kind);
    }

    #[test]
    fn timed_wait_explores_timeout_path() {
        // Nobody ever notifies: only the modeled timeout lets the
        // waiter finish, so completing without a deadlock report
        // proves the timeout path is schedulable.
        explore(&quiet(), || {
            let m = Mutex::new(());
            let cv = Condvar::new();
            let mut g = m.lock();
            let res = cv.wait_for(&mut g, Duration::from_millis(1));
            assert!(res.timed_out());
        })
        .expect("timeout path must avoid the deadlock");
    }

    #[test]
    fn notify_wakes_waiter() {
        explore(&quiet(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, c) = &*pair2;
                let mut ready = m.lock();
                *ready = true;
                c.notify_all();
            });
            let (m, c) = &*pair;
            {
                let mut ready = m.lock();
                while !*ready {
                    c.wait(&mut ready);
                }
            }
            t.join().unwrap();
        })
        .expect("waiter must always be woken");
    }

    #[test]
    fn step_budget_flags_livelock() {
        let b = Builder {
            max_steps: 64,
            ..quiet()
        };
        let failure = explore(&b, || {
            let n = AtomicU64::new(0);
            loop {
                if n.load(Ordering::SeqCst) == u64::MAX {
                    break; // unreachable: spins forever
                }
            }
        })
        .expect_err("unbounded spin must exhaust the step budget");
        assert!(
            failure.kind.contains("step budget"),
            "kind: {}",
            failure.kind
        );
    }
}
