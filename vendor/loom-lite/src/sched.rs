//! The exploring scheduler: serialized model threads, bounded-DFS
//! enumeration of scheduling decisions, deadlock detection, and
//! replayable schedule strings.
//!
//! Every model execution runs real OS threads, but exactly one is ever
//! runnable: a thread only proceeds while it holds the scheduler's
//! "turn". Each instrumented operation (lock, condvar wait/notify,
//! atomic access, spawn, join) is a *decision point* where the
//! scheduler picks which thread runs next from the enabled set. The
//! driver re-executes the closure under depth-first enumeration of
//! those decisions, bounded by a preemption budget (CHESS-style) and an
//! iteration budget, so small models are explored exhaustively and big
//! ones deterministically sampled.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

pub(crate) type Tid = usize;

/// Panic payload used to unwind model threads when an execution aborts
/// (a failure was recorded, or the driver is tearing the run down).
/// Swallowed by the model-thread trampoline; never escapes to users.
pub(crate) struct AbortSignal;

/// Global resource-id source. Ids only need to be unique per process;
/// scheduling decisions never depend on their numeric values, so
/// monotonically growing across executions keeps replay deterministic.
static NEXT_RESOURCE: AtomicU64 = AtomicU64::new(1);

pub(crate) fn new_resource_id() -> u64 {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked { timed: bool },
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Wake {
    Notified,
    TimedOut,
}

struct ExecState {
    status: Vec<Status>,
    wake: Vec<Option<Wake>>,
    /// Resource a blocked thread is parked on, for timeout removal.
    blocked_on: Vec<Option<u64>>,
    /// FIFO wait queues per resource (mutexes, condvars, join points).
    waiters: HashMap<u64, Vec<Tid>>,
    /// Current exclusive owner of each lock resource.
    owner: HashMap<u64, Tid>,
    current: Tid,
    /// Decisions taken this execution: (candidate count, chosen index).
    trace: Vec<(usize, usize)>,
    /// Forced choice indices for replay / DFS continuation.
    prefix: Vec<usize>,
    preemptions: usize,
    failure: Option<String>,
    aborting: bool,
    /// Registered threads that have not yet finished.
    live: usize,
}

pub(crate) struct Scheduler {
    st: Mutex<ExecState>,
    cv: Condvar,
    max_preemptions: usize,
    max_steps: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Scheduler>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler the calling thread is registered with, if any. `None`
/// means "no model is active": instrumented primitives fall back to
/// plain std behaviour so the same binary runs regular tests too.
pub(crate) fn current() -> Option<(Arc<Scheduler>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(sched: Arc<Scheduler>, tid: Tid) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Model threads panic on purpose (assertion failures we capture,
/// abort unwinds we inject); silence the default hook for them so
/// canary tests don't spray backtraces. Installed once, delegates to
/// the previous hook for non-model threads.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fail_locked(&self, st: &mut ExecState, kind: String) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.aborting = true;
    }

    /// Unwind the calling thread if the execution is aborting — unless
    /// it is already unwinding (panicking inside a `Drop` would abort
    /// the process), in which case instrumented ops degrade to plain
    /// std behaviour and the unwind continues on its own.
    fn abort_check(&self, st: &ExecState) -> bool {
        if !st.aborting {
            return false;
        }
        if !std::thread::panicking() {
            panic_any(AbortSignal);
        }
        true
    }

    /// Core decision point: `me` has just had its status updated inside
    /// `st`; pick who runs next, recording (candidates, choice) so the
    /// driver can enumerate alternatives.
    fn decide(&self, st: &mut ExecState, me: Tid) {
        if st.aborting {
            return;
        }
        if st.trace.len() >= self.max_steps {
            self.fail_locked(
                st,
                format!(
                    "step budget exceeded ({} decision points) — possible livelock",
                    self.max_steps
                ),
            );
            return;
        }
        // Enabled set: runnable threads (current thread first so choice
        // 0 means "keep running" and every other index is a preemption),
        // then timed-blocked threads (choosing one fires its timeout).
        let me_runnable = st.status[me] == Status::Runnable;
        let mut cands: Vec<Tid> = Vec::new();
        if me_runnable {
            cands.push(me);
        }
        for t in 0..st.status.len() {
            if t != me && st.status[t] == Status::Runnable {
                cands.push(t);
            }
        }
        for t in 0..st.status.len() {
            if matches!(st.status[t], Status::Blocked { timed: true }) {
                cands.push(t);
            }
        }
        if cands.is_empty() {
            let blocked = st
                .status
                .iter()
                .filter(|s| matches!(s, Status::Blocked { .. }))
                .count();
            if blocked > 0 {
                self.fail_locked(
                    st,
                    format!("deadlock: {blocked} thread(s) blocked with no runnable thread"),
                );
            }
            // else: every thread finished — execution complete.
            return;
        }
        // CHESS-style preemption bound: once the budget is spent the
        // running thread keeps running until it blocks or finishes.
        // Applied unconditionally (even under a replay prefix) so the
        // recorded candidate counts are identical across re-executions.
        if me_runnable && st.preemptions >= self.max_preemptions {
            cands.truncate(1);
        }
        let step = st.trace.len();
        let idx = if step < st.prefix.len() {
            st.prefix[step].min(cands.len() - 1)
        } else {
            0
        };
        let chosen = cands[idx];
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.trace.push((cands.len(), idx));
        if let Status::Blocked { .. } = st.status[chosen] {
            // Scheduling a timed-blocked thread = its timeout fires.
            st.status[chosen] = Status::Runnable;
            st.wake[chosen] = Some(Wake::TimedOut);
            if let Some(res) = st.blocked_on[chosen].take() {
                if let Some(q) = st.waiters.get_mut(&res) {
                    q.retain(|&t| t != chosen);
                }
            }
        }
        st.current = chosen;
    }

    /// Park until it is `me`'s turn again (or the execution aborts).
    fn wait_turn(&self, me: Tid) {
        let mut st = self.lock();
        while !(st.aborting || (st.current == me && st.status[me] == Status::Runnable)) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let aborting = st.aborting;
        drop(st);
        if aborting && !std::thread::panicking() {
            panic_any(AbortSignal);
        }
    }

    fn decide_and_park(&self, mut st: MutexGuard<'_, ExecState>, me: Tid) {
        self.decide(&mut st, me);
        drop(st);
        self.cv.notify_all();
        self.wait_turn(me);
    }

    /// Plain interleaving point (atomic ops, pre-acquire, spawn, …).
    pub(crate) fn yield_point(&self, me: Tid) {
        let st = self.lock();
        if self.abort_check(&st) {
            return;
        }
        self.decide_and_park(st, me);
    }

    /// Model-level exclusive acquire of `res`; blocks (in model terms)
    /// while another thread owns it. The leading yield point makes the
    /// acquire itself a visible decision.
    pub(crate) fn lock_acquire(&self, me: Tid, res: u64) {
        self.yield_point(me);
        loop {
            let mut st = self.lock();
            if self.abort_check(&st) {
                return;
            }
            if let Entry::Vacant(e) = st.owner.entry(res) {
                e.insert(me);
                return;
            }
            st.waiters.entry(res).or_default().push(me);
            st.blocked_on[me] = Some(res);
            st.status[me] = Status::Blocked { timed: false };
            self.decide_and_park(st, me);
            // Woken by a release — loop and re-contend.
        }
    }

    /// Non-blocking model acquire; `false` if currently owned.
    pub(crate) fn try_lock_acquire(&self, me: Tid, res: u64) -> bool {
        self.yield_point(me);
        let mut st = self.lock();
        if self.abort_check(&st) {
            return true;
        }
        if let Entry::Vacant(e) = st.owner.entry(res) {
            e.insert(me);
            true
        } else {
            false
        }
    }

    fn release_locked(st: &mut ExecState, res: u64) {
        st.owner.remove(&res);
        let woken: Vec<Tid> = st
            .waiters
            .get_mut(&res)
            .map(std::mem::take)
            .unwrap_or_default();
        for t in woken {
            st.status[t] = Status::Runnable;
            st.blocked_on[t] = None;
        }
    }

    /// Release `res`, wake contenders, and yield (so the release site
    /// is a decision point too).
    pub(crate) fn lock_release(&self, me: Tid, res: u64) {
        let mut st = self.lock();
        Self::release_locked(&mut st, res);
        if st.aborting {
            // Never panic here: releases run from guard Drops, possibly
            // mid-unwind. Degrade silently; the unwind continues.
            return;
        }
        self.decide_and_park(st, me);
    }

    /// Atomically: release `mutex`, park on `cv` (optionally wakeable
    /// by a modeled timeout), then re-acquire `mutex` once woken.
    pub(crate) fn cv_wait(&self, me: Tid, cv: u64, mutex: u64, timed: bool) -> Wake {
        {
            let mut st = self.lock();
            if self.abort_check(&st) {
                return Wake::TimedOut;
            }
            Self::release_locked(&mut st, mutex);
            st.waiters.entry(cv).or_default().push(me);
            st.blocked_on[me] = Some(cv);
            st.status[me] = Status::Blocked { timed };
            st.wake[me] = None;
            self.decide_and_park(st, me);
        }
        let wake = {
            let mut st = self.lock();
            if self.abort_check(&st) {
                return Wake::TimedOut;
            }
            st.wake[me].take().unwrap_or(Wake::TimedOut)
        };
        // Re-contend for the mutex before returning, like a real wait.
        loop {
            let mut st = self.lock();
            if self.abort_check(&st) {
                return wake;
            }
            if let Entry::Vacant(e) = st.owner.entry(mutex) {
                e.insert(me);
                return wake;
            }
            st.waiters.entry(mutex).or_default().push(me);
            st.blocked_on[me] = Some(mutex);
            st.status[me] = Status::Blocked { timed: false };
            self.decide_and_park(st, me);
        }
    }

    /// Wake one (or all) waiters of `cv`; a decision point either way.
    pub(crate) fn cv_notify(&self, me: Tid, cv: u64, all: bool) {
        let st_check = self.lock();
        if self.abort_check(&st_check) {
            return;
        }
        let mut st = st_check;
        let woken: Vec<Tid> = match st.waiters.get_mut(&cv) {
            Some(q) => {
                let n = if all { q.len() } else { q.len().min(1) };
                q.drain(..n).collect()
            }
            None => Vec::new(),
        };
        for t in woken {
            st.status[t] = Status::Runnable;
            st.wake[t] = Some(Wake::Notified);
            st.blocked_on[t] = None;
        }
        self.decide_and_park(st, me);
    }

    /// Register a new model thread; returns its tid and join resource.
    pub(crate) fn register_thread(&self) -> (Tid, u64) {
        let mut st = self.lock();
        let tid = st.status.len();
        st.status.push(Status::Runnable);
        st.wake.push(None);
        st.blocked_on.push(None);
        st.live += 1;
        (tid, new_resource_id())
    }

    /// Block until `child` finishes (its join resource is signalled).
    pub(crate) fn join_wait(&self, me: Tid, child: Tid, join_res: u64) {
        self.yield_point(me);
        loop {
            let mut st = self.lock();
            if self.abort_check(&st) {
                return;
            }
            if st.status[child] == Status::Finished {
                return;
            }
            st.waiters.entry(join_res).or_default().push(me);
            st.blocked_on[me] = Some(join_res);
            st.status[me] = Status::Blocked { timed: false };
            self.decide_and_park(st, me);
        }
    }

    /// Mark `me` finished, record a panic as the execution's failure,
    /// wake joiners and (if threads remain) hand the turn onwards.
    fn finish_thread(&self, me: Tid, join_res: u64, panic_msg: Option<String>) {
        let mut st = self.lock();
        if let Some(msg) = panic_msg {
            self.fail_locked(&mut st, format!("panic in model thread {me}: {msg}"));
        }
        st.status[me] = Status::Finished;
        st.live -= 1;
        Self::release_locked(&mut st, join_res);
        if !st.aborting && st.live > 0 {
            self.decide(&mut st, me);
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Trampoline every model OS thread runs: register TLS, wait for the
/// first turn, run the body, swallow abort unwinds, report the rest.
pub(crate) fn run_model_thread<F: FnOnce()>(sched: Arc<Scheduler>, tid: Tid, join_res: u64, f: F) {
    set_ctx(Arc::clone(&sched), tid);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.wait_turn(tid);
        f();
    }));
    let panic_msg = match res {
        Ok(()) => None,
        Err(p) if p.is::<AbortSignal>() => None,
        Err(p) => Some(payload_msg(&*p)),
    };
    sched.finish_thread(tid, join_res, panic_msg);
    clear_ctx();
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exploration budgets. `Default` reads the `LOOM_LITE_*` env vars so
/// CI can bound a whole model suite without touching test code.
#[derive(Clone, Debug)]
pub struct Builder {
    /// CHESS-style bound on involuntary context switches per execution.
    pub max_preemptions: usize,
    /// Maximum executions explored before declaring the run incomplete.
    pub max_iters: usize,
    /// Decision points per execution before a livelock is reported.
    pub max_steps: usize,
    /// Forced schedule to replay instead of exploring. `Default` takes
    /// this from `LOOM_LITE_SCHEDULE`.
    pub schedule: Option<String>,
}

impl Default for Builder {
    fn default() -> Self {
        let geti = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Builder {
            max_preemptions: geti("LOOM_LITE_PREEMPTIONS", 2),
            max_iters: geti("LOOM_LITE_MAX_ITERS", 50_000),
            max_steps: geti("LOOM_LITE_MAX_STEPS", 20_000),
            schedule: std::env::var("LOOM_LITE_SCHEDULE").ok(),
        }
    }
}

/// Outcome of a completed exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Executions run.
    pub iterations: usize,
    /// Whether the bounded state space was exhausted (vs. budget cut).
    pub complete: bool,
}

/// A schedule that violates an invariant (assertion, deadlock, panic,
/// or step-budget livelock). `schedule` replays it deterministically.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: String,
    pub schedule: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loom-lite: {} — replay with LOOM_LITE_SCHEDULE=\"{}\"",
            self.kind, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

fn fmt_schedule(trace: &[(usize, usize)]) -> String {
    trace
        .iter()
        .map(|&(_, i)| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_schedule(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse().unwrap_or(0))
        .collect()
}

/// Deepest decision with an unexplored sibling, as the next DFS prefix.
fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for pos in (0..trace.len()).rev() {
        let (n, i) = trace[pos];
        if i + 1 < n {
            let mut p: Vec<usize> = trace[..=pos].iter().map(|&(_, i)| i).collect();
            p[pos] += 1;
            return Some(p);
        }
    }
    None
}

fn run_one<F>(b: &Builder, prefix: Vec<usize>, f: Arc<F>) -> (Vec<(usize, usize)>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let sched = Arc::new(Scheduler {
        st: Mutex::new(ExecState {
            status: Vec::new(),
            wake: Vec::new(),
            blocked_on: Vec::new(),
            waiters: HashMap::new(),
            owner: HashMap::new(),
            current: 0,
            trace: Vec::new(),
            prefix,
            preemptions: 0,
            failure: None,
            aborting: false,
            live: 0,
        }),
        cv: Condvar::new(),
        max_preemptions: b.max_preemptions,
        max_steps: b.max_steps,
    });
    let (tid0, jres0) = sched.register_thread();
    let s2 = Arc::clone(&sched);
    let h = std::thread::Builder::new()
        .name("loom-lite-0".into())
        .spawn(move || run_model_thread(s2, tid0, jres0, move || f()))
        .expect("spawn model root thread");
    {
        let mut st = sched.lock();
        while st.live > 0 {
            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let _ = h.join();
    let mut st = sched.lock();
    (std::mem::take(&mut st.trace), st.failure.take())
}

/// Explore `f` under every schedule the budgets allow. Returns the
/// first failing schedule, or a [`Report`] when no failure is found.
/// State shared between model threads must be created *inside* `f` so
/// each execution starts fresh.
pub fn explore<F>(b: &Builder, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    if let Some(s) = &b.schedule {
        let (trace, failure) = run_one(b, parse_schedule(s), Arc::clone(&f));
        return match failure {
            Some(kind) => Err(Failure {
                kind,
                schedule: fmt_schedule(&trace),
            }),
            None => Ok(Report {
                iterations: 1,
                complete: false,
            }),
        };
    }
    let mut prefix = Vec::new();
    let mut iterations = 0;
    loop {
        let (trace, failure) = run_one(b, prefix, Arc::clone(&f));
        iterations += 1;
        if let Some(kind) = failure {
            return Err(Failure {
                kind,
                schedule: fmt_schedule(&trace),
            });
        }
        match next_prefix(&trace) {
            Some(p) => prefix = p,
            None => {
                return Ok(Report {
                    iterations,
                    complete: true,
                })
            }
        }
        if iterations >= b.max_iters {
            return Ok(Report {
                iterations,
                complete: false,
            });
        }
    }
}

/// Test-friendly wrapper: explore with [`Builder::default`] budgets and
/// panic with the replayable schedule on the first failure.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(&Builder::default(), f) {
        Ok(_) => {}
        Err(failure) => panic!("{failure}"),
    }
}
