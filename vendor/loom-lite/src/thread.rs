//! Thread spawning that registers children with the active model (or
//! delegates to `std::thread` when no model is running).

use std::sync::{Arc, Mutex, PoisonError};

use crate::sched;

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<sched::Scheduler>,
        tid: sched::Tid,
        join_res: u64,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Std(h) => h.join(),
            Imp::Model {
                sched,
                tid,
                join_res,
                result,
            } => {
                let (_, me) = sched::current()
                    .expect("a model JoinHandle must be joined from inside its model");
                sched.join_wait(me, tid, join_res);
                match result.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(r) => r,
                    // No result means the child unwound during an
                    // execution abort; propagate the abort.
                    None => std::panic::panic_any(sched::AbortSignal),
                }
            }
        }
    }

    pub fn thread_name(&self) -> Option<String> {
        match &self.0 {
            Imp::Std(h) => h.thread().name().map(str::to_owned),
            Imp::Model { tid, .. } => Some(format!("model-{tid}")),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("loom-lite", f)
}

/// Spawn a thread. Inside a model the child becomes a model thread
/// (scheduled deterministically, `name` kept only for diagnostics);
/// outside, a named `std::thread`.
pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some((s, me)) => {
            let (tid, join_res) = s.register_thread();
            let result = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let s2 = Arc::clone(&s);
            std::thread::Builder::new()
                .name(format!("{name}-model-{tid}"))
                .spawn(move || {
                    sched::run_model_thread(s2, tid, join_res, move || {
                        let v = f();
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                    });
                })
                .expect("spawn model thread");
            // The spawn itself is a decision point: the child is now
            // schedulable, and may run before the parent continues.
            s.yield_point(me);
            JoinHandle(Imp::Model {
                sched: s,
                tid,
                join_res,
                result,
            })
        }
        None => JoinHandle(Imp::Std(
            std::thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                .expect("spawn thread"),
        )),
    }
}
