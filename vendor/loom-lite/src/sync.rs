//! Instrumented sync primitives with the same API surface as the
//! workspace's `parking_lot` shim (plus `sync::atomic`).
//!
//! Every operation first asks `crate::sched` (private) for the calling
//! thread's model context. Inside a model execution the operation
//! becomes a scheduler decision point (and blocking happens in model
//! terms, never on the OS primitive); outside a model everything
//! degrades to plain `std::sync` behaviour, so binaries built with the
//! facade's `loom-lite` feature still run their regular tests.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

use crate::sched;

pub struct Mutex<T: ?Sized> {
    res: u64,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            res: sched::new_resource_id(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = if let Some((s, me)) = sched::current() {
            s.lock_acquire(me, self.res);
            true
        } else {
            false
        };
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            model,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some((s, me)) = sched::current() {
            if !s.try_lock_acquire(me, self.res) {
                return None;
            }
            return Some(MutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                model: true,
            });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
                model: false,
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model: false,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock before telling the model, so whichever
        // thread the scheduler picks next can actually acquire it.
        drop(self.inner.take());
        if self.model {
            if let Some((s, me)) = sched::current() {
                s.lock_release(me, self.lock.res);
            }
        }
    }
}

/// Result of a timed condvar wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Debug)]
pub struct Condvar {
    res: u64,
    inner: sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            res: sched::new_resource_id(),
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        if let Some((s, me)) = sched::current() {
            s.cv_notify(me, self.res, false);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((s, me)) = sched::current() {
            s.cv_notify(me, self.res, true);
        }
        self.inner.notify_all();
    }

    /// Block until notified; the lock is released while waiting and
    /// reacquired before returning, like `parking_lot`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.model {
            if let Some((s, me)) = sched::current() {
                drop(guard.inner.take());
                let _ = s.cv_wait(me, self.res, guard.lock.res, false);
                guard.inner = Some(
                    guard
                        .lock
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                return;
            }
        }
        let owned = guard.inner.take().expect("guard taken during condvar wait");
        let reacquired = self
            .inner
            .wait(owned)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Block until notified or `timeout` elapses. In a model the
    /// timeout is a *nondeterministic choice*: the scheduler explores
    /// both the woken-by-notify path and the spontaneous-timeout path,
    /// regardless of the requested duration.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if guard.model {
            if let Some((s, me)) = sched::current() {
                drop(guard.inner.take());
                let wake = s.cv_wait(me, self.res, guard.lock.res, true);
                guard.inner = Some(
                    guard
                        .lock
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                return WaitTimeoutResult(wake == sched::Wake::TimedOut);
            }
        }
        let owned = guard.inner.take().expect("guard taken during condvar wait");
        let (reacquired, res) = self
            .inner
            .wait_timeout(owned, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes; modeled exactly like
    /// [`Condvar::wait_for`] inside a model.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if guard.model {
            return self.wait_for(guard, Duration::ZERO);
        }
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }
}

/// Reader-writer lock. Deviation from std/parking_lot: inside a model
/// both `read()` and `write()` take the lock *exclusively* — fewer
/// interleavings, and any schedule valid under exclusive access is
/// valid under shared reads, so modeled invariant checks stay sound.
/// (Consequence: nested/recursive `read()` on one thread deadlocks the
/// model; the facade's users never do that.) Outside a model this is a
/// plain `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    res: u64,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            res: sched::new_resource_id(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = if let Some((s, me)) = sched::current() {
            s.lock_acquire(me, self.res);
            true
        } else {
            false
        };
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            model,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = if let Some((s, me)) = sched::current() {
            s.lock_acquire(me, self.res);
            true
        } else {
            false
        };
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            model,
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.model {
            if let Some((s, me)) = sched::current() {
                s.lock_release(me, self.lock.res);
            }
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.model {
            if let Some((s, me)) = sched::current() {
                s.lock_release(me, self.lock.res);
            }
        }
    }
}

pub mod atomic {
    //! Instrumented atomics: each access is a model decision point
    //! (the value itself is held in the corresponding std atomic).

    pub use std::sync::atomic::Ordering;

    use crate::sched;

    fn hook() {
        if let Some((s, me)) = sched::current() {
            s.yield_point(me);
        }
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    hook();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    hook();
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.swap(v, order)
                }

                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_max(v, order)
                }

                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    hook();
                    self.inner.fetch_min(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    hook();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }
        };
    }

    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            hook();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            hook();
            self.inner.store(v, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            hook();
            self.inner.swap(v, order)
        }

        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            hook();
            self.inner.fetch_or(v, order)
        }

        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            hook();
            self.inner.fetch_and(v, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            hook();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }
}
