//! Offline stand-in for the `fxhash` crate.
//!
//! Implements the Firefox/rustc "Fx" hash: a non-cryptographic
//! multiply-rotate mix that is dramatically cheaper than std's
//! SipHash-1-3 for the small fixed-size keys (ASNs, elem types,
//! prefixes, addresses) this workspace keeps in hot sets and maps.
//! SipHash buys DoS resistance we do not need for values derived from
//! already-validated routing data; Fx buys back the per-lookup cost
//! that dominates filter and plugin table probes.
//!
//! API subset covered: [`FxHasher`], [`FxBuildHasher`] and the
//! [`FxHashMap`]/[`FxHashSet`] aliases — the same surface the real
//! crate exposes, so swapping in the crates.io version is the usual
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Builder producing default [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit multiplicative constant (the golden-ratio-derived one the
/// upstream crate uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx streaming hasher: `hash = (hash.rotl(5) ^ word) * SEED` per
/// input word.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_ne_bytes(w));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_ne_bytes(w) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_ne!(hash_of(&42u32), hash_of(&43u32));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Distinct word groupings must not collide trivially.
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u128> = FxHashSet::default();
        assert!(s.insert(1 << 100));
        assert!(s.contains(&(1 << 100)));
        assert!(!s.insert(1 << 100));
    }

    #[test]
    fn byte_tail_paths_covered() {
        // Exercise the 8-byte, 4-byte and trailing-byte paths.
        for len in 0..20usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let first = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(first, h2.finish(), "len {len}");
        }
    }
}
