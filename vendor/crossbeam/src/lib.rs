//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces the workspace uses: `crossbeam::channel`
//! (multi-producer multi-consumer unbounded and bounded channels, a
//! condvar-backed queue so blocked receivers never starve their
//! siblings; bounded senders block while the queue is at capacity) and
//! `crossbeam::scope` (scoped threads, here delegating to
//! `std::thread::scope`). Deviation from the real crate: a bounded
//! capacity of 0 (rendezvous channel) is treated as capacity 1.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` = unbounded; `Some(cap)` = senders block at `cap`.
        capacity: Option<usize>,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Multi-producer sender half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake parked receivers so they observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    /// Multi-consumer receiver half; cloneable (receivers share one
    /// queue — each message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake senders parked on a full bounded queue so they
                // observe disconnection instead of blocking forever.
                self.0.not_full.notify_all();
            }
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like the real crate: no `T: Debug` bound.
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        // Backpressure: park until a receiver pops.
                        inner = self
                            .0
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.lock();
            match inner.queue.pop_front() {
                Some(v) => {
                    drop(inner);
                    self.0.not_full.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator draining the channel until all senders drop.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` messages: `send` blocks while
    /// the queue is full (backpressure). `cap = 0` behaves as 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }
}

/// Scoped-thread handle passed to `scope` closures and to each spawned
/// closure (crossbeam's spawn closures receive `&Scope` as argument).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(self.inner.spawn(move || f(&Scope { inner })))
    }
}

pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns. Returns
/// `Err` if `f` or any unjoined spawned thread panicked, like the real
/// `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fan_in_fan_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_workers() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn parked_recv_does_not_block_siblings() {
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        let parked = std::thread::spawn(move || rx.recv());
        // Give the spawned receiver time to park inside recv(); a
        // sibling's try_recv must still return immediately.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(matches!(rx2.try_recv(), Err(channel::TryRecvError::Empty)));
        tx.send(9).unwrap();
        assert_eq!(parked.join().unwrap(), Ok(9));
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Third send must block until the receiver pops one.
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap();
            3u32
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), 3);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn bounded_zero_capacity_is_one() {
        let (tx, rx) = channel::bounded::<u32>(0);
        tx.send(7).unwrap(); // must not deadlock
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_reports_panics() {
        let res = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
