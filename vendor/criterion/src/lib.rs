//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bencher API subset the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion::default()
//! .sample_size(n)`, `benchmark_group`, `Throughput`, and
//! `Bencher::iter`. Measurement is a simple calibrated wall-clock
//! loop (warmup, then `sample_size` timed samples; the median sample
//! is reported) — adequate for tracking relative regressions, without
//! the real crate's statistical machinery.
//!
//! Results are printed human-readably and, when `CRITERION_MINI_JSON`
//! is set, appended to that path as JSON lines so harnesses can
//! capture baselines. Each line carries `ns_per_iter` plus the
//! throughput triple (`throughput_kind`, `throughput_per_iter`,
//! `rate_per_sec`) and an explicit `rate_unit` field naming what
//! `rate_per_sec` measures (`"MiB/s"` for byte throughput, `"elem/s"`
//! for element throughput, `"none"` without a throughput).

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(name, f);
        g.finish();
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result_ns: None,
        };
        f(&mut bencher);
        let Some(ns_per_iter) = bencher.result_ns else {
            eprintln!("warning: bench {}/{} never called iter()", self.name, name);
            return;
        };
        report(&self.name, name, ns_per_iter, self.throughput);
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in one sample slot.
        let calibrate_start = Instant::now();
        black_box(f());
        let one = calibrate_start.elapsed().max(Duration::from_nanos(25));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        // Warmup one sample slot, then measure.
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn report(group: &str, name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    // Schema note: byte benches report MiB per second and element
    // benches report elements per second, but both land under the
    // generic `rate_per_sec` key — so every JSON line carries an
    // explicit `rate_unit` ("MiB/s" / "elem/s" / "none") naming what
    // the number means. `bench_gate` keys on `ns_per_iter` only and is
    // unaffected by the extra field.
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mib_s = n as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            (format!("{mib_s:.1} MiB/s"), "bytes", n, mib_s, "MiB/s")
        }
        Throughput::Elements(n) => {
            let elem_s = n as f64 / (ns_per_iter / 1e9);
            (
                format!("{elem_s:.0} elem/s"),
                "elements",
                n,
                elem_s,
                "elem/s",
            )
        }
    });
    match &rate {
        Some((pretty, ..)) => {
            println!("{group}/{name}: {ns_per_iter:.0} ns/iter ({pretty})")
        }
        None => println!("{group}/{name}: {ns_per_iter:.0} ns/iter"),
    }
    if let Ok(path) = std::env::var("CRITERION_MINI_JSON") {
        use std::io::Write as _;
        let (tp_kind, tp_n, tp_rate, tp_unit) = match &rate {
            Some((_, kind, n, r, unit)) => (*kind, *n, *r, *unit),
            None => ("none", 0, 0.0, "none"),
        };
        let line = format!(
            "{{\"group\":\"{group}\",\"bench\":\"{name}\",\"ns_per_iter\":{ns_per_iter:.1},\
             \"throughput_kind\":\"{tp_kind}\",\"throughput_per_iter\":{tp_n},\
             \"rate_per_sec\":{tp_rate:.1},\"rate_unit\":\"{tp_unit}\"}}"
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(std::time::Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0u64..100).map(black_box).sum::<u64>())
        });
        g.finish();
    }
}
