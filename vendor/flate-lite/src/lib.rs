//! API-subset shim for [`flate2`](https://docs.rs/flate2), written from
//! RFC 1951 (DEFLATE) and RFC 1952 (gzip) for offline builds.
//!
//! Covered surface:
//!
//! - [`read::GzDecoder`] — streaming inflate of a single gzip member
//!   (stored, fixed-Huffman and dynamic-Huffman blocks, 32 KiB LZ77
//!   window, CRC32 + ISIZE trailer verification).
//! - [`read::MultiGzDecoder`] — same, but concatenated members decode
//!   back-to-back; non-gzip bytes after a member are a typed
//!   [`std::io::Error`], clean EOF at a member boundary ends the stream.
//! - [`write::GzEncoder`] — gzip compressor. [`Compression::none`]
//!   emits stored blocks; any other level emits fixed-Huffman
//!   literal-only blocks (valid DEFLATE, no LZ77 matching — this shim
//!   optimizes for correctness and exercising the inflater, not ratio).
//!
//! Everything is incremental: the decoders pull bounded chunks from the
//! underlying reader and never materialize the whole stream, which is
//! exactly what `mrt::ChunkedReader` needs for multi-GB RIB dumps.

#![forbid(unsafe_code)]

use std::io::{self, Read, Write};

/// Compression level, mirroring `flate2::Compression`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compression(u32);

impl Compression {
    /// Stored (uncompressed) DEFLATE blocks.
    pub fn none() -> Compression {
        Compression(0)
    }
    /// Fixed-Huffman literal coding (fastest real coding this shim does).
    pub fn fast() -> Compression {
        Compression(1)
    }
    /// Same coding as [`Compression::fast`] in this shim.
    pub fn best() -> Compression {
        Compression(9)
    }
    /// Explicit numeric level; `0` means stored blocks.
    pub fn new(level: u32) -> Compression {
        Compression(level)
    }
    /// The numeric level.
    pub fn level(&self) -> u32 {
        self.0
    }
}

impl Default for Compression {
    fn default() -> Compression {
        Compression(6)
    }
}

// ---- CRC32 (IEEE, as used by gzip) --------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Incremental CRC32: feed `crc32(0, ..)` first, then chain the result.
pub fn crc32(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("flate-lite: {msg}"))
}

fn truncated(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("flate-lite: truncated stream ({msg})"),
    )
}

// ---- bit reader ---------------------------------------------------------

/// LSB-first bit reader over an inner `Read`, with its own byte buffer
/// so inflate never issues per-byte reads against the source.
struct BitReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    bitbuf: u64,
    nbits: u32,
}

const READ_BUF: usize = 16 * 1024;

impl<R: Read> BitReader<R> {
    fn new(inner: R) -> BitReader<R> {
        BitReader {
            inner,
            buf: vec![0u8; READ_BUF],
            pos: 0,
            len: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Next raw byte from the buffered source, `None` on clean EOF.
    fn fetch_byte(&mut self) -> io::Result<Option<u8>> {
        while self.pos == self.len {
            match self.inner.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    fn need(&mut self, n: u32) -> io::Result<()> {
        while self.nbits < n {
            match self.fetch_byte()? {
                Some(b) => {
                    self.bitbuf |= u64::from(b) << self.nbits;
                    self.nbits += 8;
                }
                None => return Err(truncated("ran out of input mid-stream")),
            }
        }
        Ok(())
    }

    fn take(&mut self, n: u32) -> io::Result<u64> {
        self.need(n)?;
        let v = self.bitbuf & ((1u64 << n) - 1);
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    fn take_bit(&mut self) -> io::Result<u32> {
        self.need(1)?;
        let v = (self.bitbuf & 1) as u32;
        self.bitbuf >>= 1;
        self.nbits -= 1;
        Ok(v)
    }

    /// Drop bits up to the next byte boundary.
    fn align(&mut self) {
        let drop = self.nbits % 8;
        self.bitbuf >>= drop;
        self.nbits -= drop;
    }

    /// Aligned byte read that distinguishes clean EOF (`None`) from data.
    /// Callers must be byte-aligned (member boundaries always are).
    fn try_byte(&mut self) -> io::Result<Option<u8>> {
        debug_assert_eq!(self.nbits % 8, 0);
        if self.nbits >= 8 {
            return self.take(8).map(|b| Some(b as u8));
        }
        self.fetch_byte()
    }
}

// ---- Huffman decoding (canonical codes, puff-style) ---------------------

const MAX_BITS: usize = 15;

struct Huffman {
    /// `count[len]` = number of codes of bit length `len`.
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (length, symbol) — canonical order.
    symbol: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u16]) -> io::Result<Huffman> {
        let mut count = [0u16; MAX_BITS + 1];
        for &l in lengths {
            count[l as usize] += 1;
        }
        if count[0] as usize != lengths.len() {
            // Reject over-subscribed codes; incomplete codes are legal
            // (e.g. the single-distance-code case) and simply make some
            // bit patterns undecodable.
            let mut left: i32 = 1;
            for &n in count.iter().skip(1) {
                left <<= 1;
                left -= i32::from(n);
                if left < 0 {
                    return Err(invalid("over-subscribed huffman code"));
                }
            }
        }
        let mut offs = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offs[len + 1] = offs[len] + count[len];
        }
        let mut symbol = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbol[offs[l as usize] as usize] = sym as u16;
                offs[l as usize] += 1;
            }
        }
        Ok(Huffman { count, symbol })
    }

    fn decode<R: Read>(&self, bits: &mut BitReader<R>) -> io::Result<u16> {
        let mut code: i32 = 0;
        let mut first: i32 = 0;
        let mut index: i32 = 0;
        for len in 1..=MAX_BITS {
            code |= bits.take_bit()? as i32;
            let count = i32::from(self.count[len]);
            if code - count < first {
                return Ok(self.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(invalid("invalid huffman code"))
    }
}

// ---- DEFLATE inflate ----------------------------------------------------

const WINSIZE: usize = 32 * 1024;

const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn fixed_tables() -> io::Result<(Huffman, Huffman)> {
    let mut lit = [0u16; 288];
    for (sym, slot) in lit.iter_mut().enumerate() {
        *slot = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist = [5u16; 30];
    Ok((Huffman::new(&lit)?, Huffman::new(&dist)?))
}

/// Resumable inflate stage: Huffman tables persist across `produce`
/// calls so a block can be decoded in bounded slices.
enum Stage {
    BlockHeader,
    Stored(u16),
    Huff(Box<(Huffman, Huffman)>),
    Done,
}

struct Inflate<R: Read> {
    bits: BitReader<R>,
    stage: Stage,
    last_block: bool,
    window: Vec<u8>,
    wpos: usize,
    wlen: usize,
}

impl<R: Read> Inflate<R> {
    fn new(inner: R) -> Inflate<R> {
        Inflate {
            bits: BitReader::new(inner),
            stage: Stage::BlockHeader,
            last_block: false,
            window: vec![0u8; WINSIZE],
            wpos: 0,
            wlen: 0,
        }
    }

    /// Reset the DEFLATE state for the next gzip member (the window
    /// does not carry across members).
    fn reset(&mut self) {
        self.stage = Stage::BlockHeader;
        self.last_block = false;
        self.wpos = 0;
        self.wlen = 0;
    }

    fn emit(&mut self, b: u8, out: &mut Vec<u8>) {
        out.push(b);
        self.window[self.wpos] = b;
        self.wpos = (self.wpos + 1) % WINSIZE;
        if self.wlen < WINSIZE {
            self.wlen += 1;
        }
    }

    fn read_dynamic(&mut self) -> io::Result<(Huffman, Huffman)> {
        let hlit = self.bits.take(5)? as usize + 257;
        let hdist = self.bits.take(5)? as usize + 1;
        let hclen = self.bits.take(4)? as usize + 4;
        if hlit > 286 {
            return Err(invalid("too many literal/length codes"));
        }
        const ORDER: [usize; 19] = [
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
        ];
        let mut cl_lengths = [0u16; 19];
        for &idx in ORDER.iter().take(hclen) {
            cl_lengths[idx] = self.bits.take(3)? as u16;
        }
        let cl = Huffman::new(&cl_lengths)?;
        let mut lengths = vec![0u16; hlit + hdist];
        let mut i = 0;
        while i < lengths.len() {
            let sym = cl.decode(&mut self.bits)?;
            let (value, repeat) = match sym {
                0..=15 => {
                    lengths[i] = sym;
                    i += 1;
                    continue;
                }
                16 => {
                    if i == 0 {
                        return Err(invalid("length repeat with no previous length"));
                    }
                    (lengths[i - 1], 3 + self.bits.take(2)? as usize)
                }
                17 => (0, 3 + self.bits.take(3)? as usize),
                18 => (0, 11 + self.bits.take(7)? as usize),
                _ => return Err(invalid("invalid code-length symbol")),
            };
            if i + repeat > lengths.len() {
                return Err(invalid("length repeat overflows alphabet"));
            }
            for slot in lengths.iter_mut().skip(i).take(repeat) {
                *slot = value;
            }
            i += repeat;
        }
        if lengths[256] == 0 {
            return Err(invalid("dynamic block has no end-of-block code"));
        }
        Ok((
            Huffman::new(&lengths[..hlit])?,
            Huffman::new(&lengths[hlit..])?,
        ))
    }

    /// Decode until at least `budget` bytes were appended to `out` (may
    /// overshoot by one match length) or the final block completed.
    /// Returns `true` once the DEFLATE stream is done.
    fn produce(&mut self, out: &mut Vec<u8>, budget: usize) -> io::Result<bool> {
        loop {
            if out.len() >= budget {
                return Ok(matches!(self.stage, Stage::Done));
            }
            match std::mem::replace(&mut self.stage, Stage::BlockHeader) {
                Stage::Done => {
                    self.stage = Stage::Done;
                    return Ok(true);
                }
                Stage::BlockHeader => {
                    if self.last_block {
                        self.stage = Stage::Done;
                        continue;
                    }
                    self.last_block = self.bits.take_bit()? == 1;
                    match self.bits.take(2)? {
                        0 => {
                            self.bits.align();
                            let len = self.bits.take(16)? as u16;
                            let nlen = self.bits.take(16)? as u16;
                            if len != !nlen {
                                return Err(invalid("stored block length mismatch"));
                            }
                            self.stage = Stage::Stored(len);
                        }
                        1 => self.stage = Stage::Huff(Box::new(fixed_tables()?)),
                        2 => {
                            let tables = self.read_dynamic()?;
                            self.stage = Stage::Huff(Box::new(tables));
                        }
                        _ => return Err(invalid("reserved block type")),
                    }
                }
                Stage::Stored(mut rem) => {
                    while rem > 0 {
                        if out.len() >= budget {
                            self.stage = Stage::Stored(rem);
                            return Ok(false);
                        }
                        let b = self.bits.take(8)? as u8;
                        self.emit(b, out);
                        rem -= 1;
                    }
                }
                Stage::Huff(tables) => loop {
                    if out.len() >= budget {
                        self.stage = Stage::Huff(tables);
                        return Ok(false);
                    }
                    let sym = tables.0.decode(&mut self.bits)?;
                    if sym < 256 {
                        self.emit(sym as u8, out);
                    } else if sym == 256 {
                        break;
                    } else {
                        let idx = (sym - 257) as usize;
                        if idx >= LEN_BASE.len() {
                            return Err(invalid("invalid length symbol"));
                        }
                        let len = LEN_BASE[idx] as usize + self.bits.take(LEN_EXTRA[idx])? as usize;
                        let dsym = tables.1.decode(&mut self.bits)? as usize;
                        if dsym >= DIST_BASE.len() {
                            return Err(invalid("invalid distance symbol"));
                        }
                        let dist =
                            DIST_BASE[dsym] as usize + self.bits.take(DIST_EXTRA[dsym])? as usize;
                        if dist > self.wlen {
                            return Err(invalid("match distance beyond window"));
                        }
                        for _ in 0..len {
                            let b = self.window[(self.wpos + WINSIZE - dist) % WINSIZE];
                            self.emit(b, out);
                        }
                    }
                },
            }
        }
    }
}

// ---- gzip member framing ------------------------------------------------

enum GzState {
    /// Next thing in the stream is a member header (`bool`: the two
    /// magic bytes were already consumed while probing for it).
    Header(bool),
    Body,
    Finished,
}

const OUT_CHUNK: usize = 32 * 1024;

struct GzInner<R: Read> {
    inflate: Inflate<R>,
    state: GzState,
    multi: bool,
    crc: u32,
    count: u32,
    out: Vec<u8>,
    out_pos: usize,
    /// Error hit while `out` still held undelivered bytes: surfaced
    /// only after the caller has drained them, so a trailer fault does
    /// not eat the last records of the member it follows.
    pending: Option<io::Error>,
}

impl<R: Read> GzInner<R> {
    fn new(inner: R, multi: bool) -> GzInner<R> {
        GzInner {
            inflate: Inflate::new(inner),
            state: GzState::Header(false),
            multi,
            crc: 0,
            count: 0,
            out: Vec::new(),
            out_pos: 0,
            pending: None,
        }
    }

    fn read_header(&mut self, magic_consumed: bool) -> io::Result<()> {
        let bits = &mut self.inflate.bits;
        if !magic_consumed && (bits.take(8)? != 0x1f || bits.take(8)? != 0x8b) {
            return Err(invalid("bad gzip magic"));
        }
        if bits.take(8)? != 8 {
            return Err(invalid("unsupported gzip compression method"));
        }
        let flg = bits.take(8)? as u8;
        if flg & 0xe0 != 0 {
            return Err(invalid("reserved gzip flag bits set"));
        }
        bits.take(32)?; // MTIME
        bits.take(8)?; // XFL
        bits.take(8)?; // OS
        if flg & 0x04 != 0 {
            // FEXTRA
            let xlen = bits.take(16)? as usize;
            for _ in 0..xlen {
                bits.take(8)?;
            }
        }
        if flg & 0x08 != 0 {
            // FNAME
            while bits.take(8)? != 0 {}
        }
        if flg & 0x10 != 0 {
            // FCOMMENT
            while bits.take(8)? != 0 {}
        }
        if flg & 0x02 != 0 {
            // FHCRC
            bits.take(16)?;
        }
        Ok(())
    }

    fn read_trailer(&mut self) -> io::Result<()> {
        self.inflate.bits.align();
        let crc = self.inflate.bits.take(32)? as u32;
        let isize = self.inflate.bits.take(32)? as u32;
        if crc != self.crc {
            return Err(invalid("gzip CRC mismatch"));
        }
        if isize != self.count {
            return Err(invalid("gzip ISIZE mismatch"));
        }
        Ok(())
    }

    fn fill(&mut self, budget: usize) -> io::Result<()> {
        loop {
            match self.state {
                GzState::Finished => return Ok(()),
                GzState::Header(magic_consumed) => {
                    self.read_header(magic_consumed)?;
                    self.crc = 0;
                    self.count = 0;
                    self.state = GzState::Body;
                }
                GzState::Body => {
                    let before = self.out.len();
                    let done = self.inflate.produce(&mut self.out, before + budget)?;
                    let fresh = &self.out[before..];
                    self.crc = crc32(self.crc, fresh);
                    self.count = self.count.wrapping_add(fresh.len() as u32);
                    if !done {
                        return Ok(());
                    }
                    self.read_trailer()?;
                    if !self.multi {
                        self.state = GzState::Finished;
                        return Ok(());
                    }
                    // Multi-member: clean EOF here ends the stream, a
                    // new magic starts the next member, anything else
                    // is trailing garbage and a hard error.
                    match self.inflate.bits.try_byte()? {
                        None => {
                            self.state = GzState::Finished;
                            return Ok(());
                        }
                        Some(0x1f) => match self.inflate.bits.try_byte()? {
                            Some(0x8b) => {
                                self.inflate.reset();
                                self.state = GzState::Header(true);
                            }
                            _ => return Err(invalid("trailing garbage after gzip member")),
                        },
                        Some(_) => return Err(invalid("trailing garbage after gzip member")),
                    }
                }
            }
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            if self.out_pos < self.out.len() {
                let n = (self.out.len() - self.out_pos).min(buf.len());
                buf[..n].copy_from_slice(&self.out[self.out_pos..self.out_pos + n]);
                self.out_pos += n;
                return Ok(n);
            }
            self.out.clear();
            self.out_pos = 0;
            if let Some(e) = self.pending.take() {
                self.state = GzState::Finished;
                return Err(e);
            }
            if matches!(self.state, GzState::Finished) {
                return Ok(0);
            }
            if let Err(e) = self.fill(buf.len().min(OUT_CHUNK)) {
                if self.out.is_empty() {
                    self.state = GzState::Finished;
                    return Err(e);
                }
                // Deliver what decompressed cleanly first.
                self.pending = Some(e);
                continue;
            }
            if self.out.is_empty() && matches!(self.state, GzState::Finished) {
                return Ok(0);
            }
        }
    }
}

/// Decoders: `flate2::read` equivalents.
pub mod read {
    use super::{GzInner, Read};
    use std::io;

    /// Streaming decoder for a single gzip member; bytes after the
    /// member's trailer are left unread and the decoder reports EOF.
    pub struct GzDecoder<R: Read>(GzInner<R>);

    impl<R: Read> GzDecoder<R> {
        pub fn new(inner: R) -> GzDecoder<R> {
            GzDecoder(GzInner::new(inner, false))
        }
    }

    impl<R: Read> Read for GzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    /// Streaming decoder for concatenated gzip members (the format
    /// collectors actually publish: `gzip a; gzip b; cat a.gz b.gz`).
    pub struct MultiGzDecoder<R: Read>(GzInner<R>);

    impl<R: Read> MultiGzDecoder<R> {
        pub fn new(inner: R) -> MultiGzDecoder<R> {
            MultiGzDecoder(GzInner::new(inner, true))
        }
    }

    impl<R: Read> Read for MultiGzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }
}

/// Encoders: `flate2::write` equivalents.
pub mod write {
    use super::{crc32, Compression, Write};
    use std::io;

    const ENC_BLOCK: usize = 32 * 1024;

    /// Streaming gzip encoder. Data written is framed into DEFLATE
    /// blocks (stored at [`Compression::none`], fixed-Huffman literals
    /// otherwise); call [`GzEncoder::finish`] to emit the trailer.
    pub struct GzEncoder<W: Write> {
        inner: W,
        level: u32,
        crc: u32,
        count: u32,
        pending: Vec<u8>,
        bitbuf: u32,
        nbits: u32,
        header_written: bool,
    }

    impl<W: Write> GzEncoder<W> {
        pub fn new(inner: W, level: Compression) -> GzEncoder<W> {
            GzEncoder {
                inner,
                level: level.level(),
                crc: 0,
                count: 0,
                pending: Vec::new(),
                bitbuf: 0,
                nbits: 0,
                header_written: false,
            }
        }

        fn ensure_header(&mut self) -> io::Result<()> {
            if !self.header_written {
                // MTIME 0, XFL 0, OS 255 (unknown).
                self.inner
                    .write_all(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff])?;
                self.header_written = true;
            }
            Ok(())
        }

        fn put_bits(&mut self, v: u32, n: u32) -> io::Result<()> {
            self.bitbuf |= v << self.nbits;
            self.nbits += n;
            while self.nbits >= 8 {
                self.inner.write_all(&[(self.bitbuf & 0xff) as u8])?;
                self.bitbuf >>= 8;
                self.nbits -= 8;
            }
            Ok(())
        }

        /// Huffman codes go into the LSB-first bitstream MSB-first.
        fn put_code(&mut self, code: u32, len: u32) -> io::Result<()> {
            for i in (0..len).rev() {
                self.put_bits((code >> i) & 1, 1)?;
            }
            Ok(())
        }

        fn align_out(&mut self) -> io::Result<()> {
            if self.nbits > 0 {
                self.inner.write_all(&[(self.bitbuf & 0xff) as u8])?;
                self.bitbuf = 0;
                self.nbits = 0;
            }
            Ok(())
        }

        fn flush_block(&mut self, last: bool) -> io::Result<()> {
            self.ensure_header()?;
            let n = self.pending.len().min(ENC_BLOCK);
            let block: Vec<u8> = self.pending.drain(..n).collect();
            self.put_bits(u32::from(last), 1)?;
            if self.level == 0 {
                self.put_bits(0, 2)?;
                self.align_out()?;
                let len = block.len() as u16;
                self.inner.write_all(&len.to_le_bytes())?;
                self.inner.write_all(&(!len).to_le_bytes())?;
                self.inner.write_all(&block)?;
            } else {
                self.put_bits(1, 2)?;
                for &b in &block {
                    if b < 144 {
                        self.put_code(0x30 + u32::from(b), 8)?;
                    } else {
                        self.put_code(0x190 + u32::from(b) - 144, 9)?;
                    }
                }
                self.put_code(0, 7)?; // end-of-block
                if last {
                    self.align_out()?;
                }
            }
            Ok(())
        }

        /// Flush any buffered data, write the gzip trailer and return
        /// the underlying writer.
        pub fn finish(mut self) -> io::Result<W> {
            while self.pending.len() > ENC_BLOCK {
                self.flush_block(false)?;
            }
            self.flush_block(true)?;
            self.inner.write_all(&self.crc.to_le_bytes())?;
            self.inner.write_all(&self.count.to_le_bytes())?;
            self.inner.flush()?;
            Ok(self.inner)
        }
    }

    impl<W: Write> Write for GzEncoder<W> {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.crc = crc32(self.crc, data);
            self.count = self.count.wrapping_add(data.len() as u32);
            self.pending.extend_from_slice(data);
            while self.pending.len() >= 2 * ENC_BLOCK {
                self.flush_block(false)?;
            }
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::read::{GzDecoder, MultiGzDecoder};
    use super::write::GzEncoder;
    use super::{crc32, Compression};
    use std::io::{Read, Write};

    fn gzip(data: &[u8], level: Compression) -> Vec<u8> {
        let mut enc = GzEncoder::new(Vec::new(), level);
        enc.write_all(data).unwrap();
        enc.finish().unwrap()
    }

    fn gunzip_multi(data: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        MultiGzDecoder::new(data).read_to_end(&mut out)?;
        Ok(out)
    }

    /// Deterministic pseudo-random bytes (no external RNG dep).
    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push((seed >> 33) as u8);
        }
        v
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") is the classic check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        // Chained updates must equal the one-shot value.
        let chained = crc32(crc32(0, b"1234"), b"56789");
        assert_eq!(chained, 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_stored_and_fixed() {
        for level in [Compression::none(), Compression::fast()] {
            for len in [0usize, 1, 100, ENCISH, 3 * ENCISH + 17] {
                let data = noise(len, len as u64 + level.level() as u64);
                let gz = gzip(&data, level);
                assert_eq!(gunzip_multi(&gz).unwrap(), data, "len={len}");
            }
        }
    }
    const ENCISH: usize = 32 * 1024;

    #[test]
    fn roundtrip_small_read_buffer() {
        let data = noise(70_000, 9);
        let gz = gzip(&data, Compression::fast());
        let mut dec = MultiGzDecoder::new(&gz[..]);
        let mut out = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            let n = dec.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn multi_member_concatenation() {
        let a = noise(40_000, 1);
        let b = noise(5_000, 2);
        let mut stream = gzip(&a, Compression::fast());
        stream.extend_from_slice(&gzip(&b, Compression::none()));
        stream.extend_from_slice(&gzip(&[], Compression::fast()));
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        assert_eq!(gunzip_multi(&stream).unwrap(), expect);

        // Single-member decoder stops at the first trailer.
        let mut out = Vec::new();
        GzDecoder::new(&stream[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn truncated_stream_errors() {
        let gz = gzip(&noise(10_000, 3), Compression::fast());
        for cut in [1, 5, 11, gz.len() / 2, gz.len() - 1] {
            let err = gunzip_multi(&gz[..cut]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_errors_multi_but_not_single() {
        let data = noise(1_000, 4);
        let mut gz = gzip(&data, Compression::none());
        gz.extend_from_slice(b"NOT GZIP DATA");
        let err = gunzip_multi(&gz).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The single-member decoder ignores what follows the trailer.
        let mut out = Vec::new();
        GzDecoder::new(&gz[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn corrupt_crc_errors() {
        let mut gz = gzip(&noise(500, 5), Compression::fast());
        let n = gz.len();
        gz[n - 6] ^= 0xff; // flip a CRC byte in the trailer
        let err = gunzip_multi(&gz).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn header_optional_fields() {
        // Hand-build a header with FEXTRA+FNAME+FCOMMENT+FHCRC set, then
        // a stored block holding "hi".
        let mut gz = vec![0x1f, 0x8b, 8, 0x1e, 0, 0, 0, 0, 0, 0xff];
        gz.extend_from_slice(&4u16.to_le_bytes()); // XLEN
        gz.extend_from_slice(b"XTRA");
        gz.extend_from_slice(b"name\0");
        gz.extend_from_slice(b"comment\0");
        gz.extend_from_slice(&[0xaa, 0xbb]); // FHCRC (unchecked)
        gz.push(0x01); // BFINAL=1, BTYPE=00
        gz.extend_from_slice(&2u16.to_le_bytes());
        gz.extend_from_slice(&(!2u16).to_le_bytes());
        gz.extend_from_slice(b"hi");
        gz.extend_from_slice(&crc32(0, b"hi").to_le_bytes());
        gz.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(gunzip_multi(&gz).unwrap(), b"hi");
    }

    // ---- dynamic-Huffman coverage (hand-assembled block) ----------------

    struct BitWriter {
        out: Vec<u8>,
        bitbuf: u32,
        nbits: u32,
    }

    impl BitWriter {
        fn new() -> BitWriter {
            BitWriter {
                out: Vec::new(),
                bitbuf: 0,
                nbits: 0,
            }
        }
        fn put(&mut self, v: u32, n: u32) {
            self.bitbuf |= v << self.nbits;
            self.nbits += n;
            while self.nbits >= 8 {
                self.out.push((self.bitbuf & 0xff) as u8);
                self.bitbuf >>= 8;
                self.nbits -= 8;
            }
        }
        fn put_code(&mut self, code: u32, len: u32) {
            for i in (0..len).rev() {
                self.put((code >> i) & 1, 1);
            }
        }
        fn finish(mut self) -> Vec<u8> {
            if self.nbits > 0 {
                self.out.push((self.bitbuf & 0xff) as u8);
            }
            self.out
        }
    }

    /// Canonical Huffman code assignment (RFC 1951 §3.2.2).
    fn assign_codes(lengths: &[u32]) -> Vec<(u32, u32)> {
        let max = *lengths.iter().max().unwrap() as usize;
        let mut bl_count = vec![0u32; max + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; max + 2];
        let mut code = 0u32;
        for bits in 1..=max {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        lengths
            .iter()
            .map(|&l| {
                if l == 0 {
                    (0, 0)
                } else {
                    let c = next_code[l as usize];
                    next_code[l as usize] += 1;
                    (c, l)
                }
            })
            .collect()
    }

    #[test]
    fn dynamic_huffman_block_decodes() {
        // Literal alphabet: 'a' (len 1), 'b' (len 2), end-of-block (len 2);
        // one unused distance code of length 1 (legal incomplete code).
        let a = b'a' as usize;
        let b = b'b' as usize;
        let mut lit_lens = vec![0u32; 257];
        lit_lens[a] = 1;
        lit_lens[b] = 2;
        lit_lens[256] = 2;
        let lit_codes = assign_codes(&lit_lens);

        // Code-length alphabet: symbols {0,1,2,17,18} with lengths
        // forming a complete code (2,2,2,3,3).
        let mut cl_lens = vec![0u32; 19];
        cl_lens[0] = 2;
        cl_lens[1] = 2;
        cl_lens[2] = 2;
        cl_lens[17] = 3;
        cl_lens[18] = 3;
        let cl_codes = assign_codes(&cl_lens);

        let mut w = BitWriter::new();
        w.put(1, 1); // BFINAL
        w.put(2, 2); // BTYPE=10 dynamic
        w.put(0, 5); // HLIT = 257
        w.put(0, 5); // HDIST = 1
        const ORDER: [usize; 19] = [
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
        ];
        // All five used CLC symbols sit within the first 18 order slots.
        let hclen = 18usize;
        w.put((hclen - 4) as u32, 4);
        for &idx in ORDER.iter().take(hclen) {
            w.put(cl_lens[idx], 3);
        }
        let emit_cl = |w: &mut BitWriter, sym: usize| {
            let (c, l) = cl_codes[sym];
            w.put_code(c, l);
        };
        // Literal lengths: 97 zeros, a=1, b=2, 157 zeros, 256=2.
        emit_cl(&mut w, 18);
        w.put(97 - 11, 7);
        emit_cl(&mut w, 1);
        emit_cl(&mut w, 2);
        emit_cl(&mut w, 18);
        w.put(138 - 11, 7);
        emit_cl(&mut w, 18);
        w.put(19 - 11, 7);
        emit_cl(&mut w, 2);
        // Distance lengths: one code of length 1.
        emit_cl(&mut w, 1);
        // Payload: "abba" + end-of-block.
        for &sym in &[a, b, b, a] {
            let (c, l) = lit_codes[sym];
            w.put_code(c, l);
        }
        let (c, l) = lit_codes[256];
        w.put_code(c, l);
        let deflate = w.finish();

        let mut gz = vec![0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff];
        gz.extend_from_slice(&deflate);
        gz.extend_from_slice(&crc32(0, b"abba").to_le_bytes());
        gz.extend_from_slice(&4u32.to_le_bytes());
        assert_eq!(gunzip_multi(&gz).unwrap(), b"abba");
    }

    #[test]
    fn back_reference_window() {
        // Fixed-Huffman block with an LZ77 match: "abc" then a
        // length-6 distance-3 match -> "abcabcabc".
        let mut w = BitWriter::new();
        w.put(1, 1); // BFINAL
        w.put(1, 2); // BTYPE=01 fixed
        for &byte in b"abc" {
            w.put_code(0x30 + byte as u32, 8);
        }
        // Length 6 = symbol 260 (base 6, no extra bits); fixed code for
        // 260 is 7 bits, value 260-256=4.
        w.put_code(4, 7);
        // Distance 3 = symbol 2, 5-bit code.
        w.put_code(2, 5);
        w.put_code(0, 7); // end-of-block
        let deflate = w.finish();
        let mut gz = vec![0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff];
        gz.extend_from_slice(&deflate);
        gz.extend_from_slice(&crc32(0, b"abcabcabc").to_le_bytes());
        gz.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(gunzip_multi(&gz).unwrap(), b"abcabcabc");
    }
}
