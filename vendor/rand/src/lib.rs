//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}` over the usual integer types and
//! `f64`, and `rngs::SmallRng` (a xoshiro256** generator seeded via
//! splitmix64). Deterministic for a given seed, which is all the
//! simulators need; stream values differ from the real crate.

#![forbid(unsafe_code)]

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (the stand-in for the real
/// crate's `Standard: Distribution<T>` bound).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods; blanket-implemented for every
/// `RngCore` like the real crate.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let u = rng.gen_range(0..usize::MAX);
            assert!(u < usize::MAX);
        }
        assert!(seen_lo && seen_hi, "range endpoints never sampled");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
