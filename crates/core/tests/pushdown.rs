//! Filter-pushdown correctness: the compiled record-level prefilter
//! must be *sound* (never reject a record containing an elem the full
//! filter set accepts), and a stream read with pushdown enabled must
//! produce exactly the elem/envelope sequence of the old
//! decode-then-filter path.

use bgp_types::trie::PrefixMatch;
use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, Community, PathAttributes, Prefix};
use bgpstream::elem::extract;
use bgpstream::record::RecordStatus;
use bgpstream::sort::read_single_file;
use bgpstream::{AsPathRegex, CommunityFilter, ElemType, Filters, IpVersion};
use broker::index::DumpMeta;
use broker::DumpType;
use mrt::{
    Bgp4mp, MrtHeader, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RawMrtView, RibEntry,
    RibRow,
};
use proptest::prelude::*;

// ---- generators ---------------------------------------------------------

/// A small closed world of values so filters and records actually
/// collide: random-but-overlapping prefixes, ASNs and communities.
fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..8, 8u8..28)
        .prop_map(|(net, len)| Prefix::v4(std::net::Ipv4Addr::from(0x0a00_0000 | (net << 21)), len))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..4, 32u8..64).prop_map(|(net, len)| {
        Prefix::v6(
            std::net::Ipv6Addr::from((0x2001_0db8u128 << 96) | ((net as u128) << 88)),
            len,
        )
    })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![arb_v4_prefix(), arb_v6_prefix()]
}

const PEER_POOL: [u32; 3] = [65001, 65002, 9];

fn arb_peer() -> impl Strategy<Value = Asn> {
    (0usize..PEER_POOL.len()).prop_map(|i| Asn(PEER_POOL[i]))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::collection::vec(1u32..9999, 1..4),
        proptest::collection::vec((1u16..5, 0u16..1000), 0..3),
    )
        .prop_map(|(path, comms)| {
            let mut a =
                PathAttributes::route(AsPath::from_sequence(path), "192.0.2.1".parse().unwrap());
            for (asn, value) in comms {
                a.communities.insert(Community::new(asn, value));
            }
            a
        })
}

fn pit() -> PeerIndexTable {
    PeerIndexTable {
        collector_bgp_id: 1,
        view_name: String::new(),
        peers: PEER_POOL
            .iter()
            .enumerate()
            .map(|(i, &asn)| PeerEntry {
                bgp_id: i as u32,
                ip: format!("192.0.2.{}", i + 1).parse().unwrap(),
                asn: Asn(asn),
            })
            .collect(),
    }
}

fn arb_record() -> impl Strategy<Value = MrtRecord> {
    let session = |peer_asn: Asn| {
        (
            peer_asn,
            Asn(12654),
            "192.0.2.99".parse::<std::net::IpAddr>().unwrap(),
            "192.0.2.254".parse::<std::net::IpAddr>().unwrap(),
        )
    };
    let update = (
        arb_peer(),
        proptest::collection::vec(arb_prefix(), 0..3),
        proptest::collection::vec(arb_prefix(), 0..3),
        proptest::option::of(arb_attrs()),
        1u32..1000,
    )
        .prop_map(move |(peer, withdrawals, announcements, attrs, ts)| {
            let (peer_asn, local_asn, peer_ip, local_ip) = session(peer);
            MrtRecord::bgp4mp(
                ts,
                Bgp4mp::Message {
                    peer_asn,
                    local_asn,
                    peer_ip,
                    local_ip,
                    message: BgpMessage::Update(BgpUpdate {
                        withdrawals,
                        attrs,
                        announcements,
                    }),
                },
            )
        });
    let keepalive = (arb_peer(), 1u32..1000).prop_map(move |(peer, ts)| {
        let (peer_asn, local_asn, peer_ip, local_ip) = session(peer);
        MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn,
                local_asn,
                peer_ip,
                local_ip,
                message: BgpMessage::Keepalive,
            },
        )
    });
    let state = (arb_peer(), 1u32..1000).prop_map(move |(peer, ts)| {
        let (peer_asn, local_asn, peer_ip, local_ip) = session(peer);
        MrtRecord::bgp4mp(
            ts,
            Bgp4mp::StateChange {
                peer_asn,
                local_asn,
                peer_ip,
                local_ip,
                old_state: bgp_types::SessionState::Established,
                new_state: bgp_types::SessionState::Idle,
            },
        )
    });
    let rib_row = (
        arb_prefix(),
        proptest::collection::vec((0u16..PEER_POOL.len() as u16, arb_attrs()), 0..3),
        1u32..1000,
    )
        .prop_map(|(prefix, entries, ts)| {
            MrtRecord::table_dump_v2(
                ts,
                mrt::table_dump_v2::TableDumpV2::RibRow(RibRow {
                    sequence: 0,
                    prefix,
                    entries: entries
                        .into_iter()
                        .map(|(peer_index, attrs)| RibEntry {
                            peer_index,
                            originated_time: 1,
                            attrs,
                        })
                        .collect(),
                }),
            )
        });
    prop_oneof![update, keepalive, state, rib_row]
}

fn arb_filters() -> impl Strategy<Value = Filters> {
    (
        proptest::collection::vec(0usize..PEER_POOL.len(), 0..3),
        proptest::collection::vec((arb_prefix(), 0u8..4), 0..3),
        proptest::collection::vec((0u16..5, 0u16..1000, any::<bool>()), 0..2),
        proptest::collection::vec(0u8..4, 0..3),
        proptest::option::of(Just(())),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(peers, prefixes, comms, types, aspath, ipv)| {
            let mut f = Filters::none();
            for i in peers {
                f.peer_asns.insert(Asn(PEER_POOL[i]));
            }
            for (p, mode) in prefixes {
                let mode = match mode {
                    0 => PrefixMatch::Exact,
                    1 => PrefixMatch::MoreSpecific,
                    2 => PrefixMatch::LessSpecific,
                    _ => PrefixMatch::Any,
                };
                f.prefixes.push((p, mode));
            }
            for (asn, value, exact) in comms {
                f.communities.push(if exact {
                    CommunityFilter::exact(asn, value)
                } else {
                    CommunityFilter::any_asn(value)
                });
            }
            for t in types {
                f.elem_types.insert(match t {
                    0 => ElemType::RibEntry,
                    1 => ElemType::Announcement,
                    2 => ElemType::Withdrawal,
                    _ => ElemType::PeerState,
                });
            }
            if aspath.is_some() {
                f.as_paths.push(AsPathRegex::parse("_137$").unwrap());
            }
            f.ip_version = ipv.map(|v4| if v4 { IpVersion::V4 } else { IpVersion::V6 });
            f
        })
}

// ---- soundness: record_may_match never hides a passing elem -------------

proptest! {
    #[test]
    fn record_may_match_is_sound(
        records in proptest::collection::vec(arb_record(), 1..8),
        filters in arb_filters(),
    ) {
        let compiled = filters.compile();
        let table = pit();
        for rec in &records {
            let wire = rec.encode();
            let header = MrtHeader::decode(&wire).unwrap();
            let body = &wire[MrtHeader::LEN..];
            let Some(view) = RawMrtView::parse(&header, body) else {
                // Unparseable views always reach the full decode:
                // nothing to prove.
                continue;
            };
            if !compiled.record_may_match(&view, Some(&table)) {
                let extracted = extract(rec, Some(&table));
                for elem in &extracted.elems {
                    prop_assert!(
                        !filters.matches(elem),
                        "prefilter rejected a record with a passing elem: {elem:?}\nfilters: {filters:?}"
                    );
                }
            }
            // The compiled per-elem filter agrees with the
            // interpreted one on every extracted elem.
            let extracted = extract(rec, Some(&table));
            for elem in &extracted.elems {
                prop_assert_eq!(compiled.matches(elem), filters.matches(elem));
            }
        }
    }
}

// ---- end-to-end: pushdown output is byte-identical ----------------------

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-pushdown-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_archive(dir: &std::path::Path, records: &[MrtRecord]) -> DumpMeta {
    let path = dir.join("dump.mrt");
    let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
    for r in records {
        w.write(r).unwrap();
    }
    DumpMeta {
        project: "ris".into(),
        collector: "rrc00".into(),
        dump_type: DumpType::Updates,
        interval_start: 0,
        duration: 1000,
        path,
        available_at: 0,
        size: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pushdown_stream_equals_filter_after_decode(
        mut records in proptest::collection::vec(arb_record(), 1..10),
        filters in arb_filters(),
        corrupt in proptest::option::of((any::<u32>(), 1u8..=255)),
    ) {
        // A RIB dump leads with its peer index table; timestamps
        // ascend so the single-file read is a valid sorted dump.
        records.sort_by_key(|r| r.timestamp);
        let mut all = vec![MrtRecord::table_dump_v2(
            0,
            mrt::table_dump_v2::TableDumpV2::PeerIndexTable(pit()),
        )];
        all.extend(records);
        let dir = scratch_dir("equiv");
        let meta = write_archive(&dir, &all);
        // Sometimes flip one byte of the archive: corruption
        // signalling (poisoned dumps, placeholder records) must also
        // be byte-identical between the two paths.
        if let Some((pos, mask)) = corrupt {
            let mut bytes = std::fs::read(&meta.path).unwrap();
            let i = pos as usize % bytes.len();
            bytes[i] ^= mask;
            std::fs::write(&meta.path, bytes).unwrap();
        }

        // Pushdown path: filters applied inside the stream read.
        let pushed = read_single_file(meta.clone(), &filters);
        // Reference path: read everything, filter after decode.
        let reference = read_single_file(meta, &Filters::none());

        prop_assert_eq!(pushed.len(), reference.len());
        for (p, r) in pushed.iter().zip(reference.iter()) {
            // Envelope annotations are untouched by pushdown.
            prop_assert_eq!(p.timestamp, r.timestamp);
            prop_assert_eq!(p.position, r.position);
            prop_assert_eq!(p.status, r.status);
            // Elems: exactly the reference elems that pass, in order.
            let want: Vec<_> = r.elems().iter().filter(|e| filters.matches(e)).collect();
            let got: Vec<_> = p.elems().iter().collect();
            prop_assert_eq!(got, want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---- regressions --------------------------------------------------------

/// A pass-all filter set must compile to a no-op prefilter: the
/// pushdown path is bypassed entirely and every record decodes.
#[test]
fn pass_all_prefilter_is_noop() {
    let compiled = Filters::none().compile();
    assert!(compiled.is_pass_all());
    let rec = MrtRecord::bgp4mp(
        3,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    );
    let wire = rec.encode();
    let header = MrtHeader::decode(&wire).unwrap();
    let view = RawMrtView::parse(&header, &wire[MrtHeader::LEN..]).unwrap();
    // Even an elem-less record is accepted without inspection.
    assert!(compiled.record_may_match(&view, None));
}

/// Corrupted tails keep the PR 2 placeholder semantics under a
/// selective filter: the stream stays monotonic, the placeholder is
/// flagged, and no panic or cursor desync occurs.
#[test]
fn corrupt_tail_keeps_placeholder_semantics_under_filters() {
    let dir = scratch_dir("corrupt");
    let update = |ts: u32, prefix: &str| {
        MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Update(BgpUpdate::announce(
                    vec![prefix.parse().unwrap()],
                    PathAttributes::route(
                        AsPath::from_sequence([65001, 137]),
                        "192.0.2.1".parse().unwrap(),
                    ),
                )),
            },
        )
    };
    let meta = write_archive(
        &dir,
        &[update(500, "10.0.0.0/8"), update(600, "11.0.0.0/8")],
    );
    // Append garbage so the third framing attempt is a corrupted read.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&meta.path)
            .unwrap();
        f.write_all(&[0xFF; 7]).unwrap();
    }
    // A selective filter that rejects the second record but keeps the
    // first: pushdown must not disturb the corruption signalling.
    let mut filters = Filters::none();
    filters
        .prefixes
        .push(("10.0.0.0/8".parse().unwrap(), PrefixMatch::MoreSpecific));
    let recs = read_single_file(meta, &filters);
    assert_eq!(recs.len(), 3);
    assert_eq!(recs[0].elems().len(), 1);
    assert_eq!(recs[1].elems().len(), 0, "rejected record is elem-less");
    assert_eq!(recs[1].status, RecordStatus::Valid);
    assert_eq!(recs[2].status, RecordStatus::CorruptedRecord);
    assert_eq!(
        recs[2].timestamp, 600,
        "placeholder carries the last delivered timestamp"
    );
    assert!(recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    std::fs::remove_dir_all(&dir).ok();
}

/// A record whose attributes are well-framed but content-invalid
/// (here: ORIGIN code 9 — raw framing fine, decoder rejects) must
/// poison the dump identically whether or not a filter would have
/// rejected the record: lazy decode may skip work, never corruption
/// signalling.
#[test]
fn content_corrupt_record_poisons_dump_even_when_filtered_out() {
    let dir = scratch_dir("content-corrupt");
    let rec = MrtRecord::bgp4mp(
        100,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Update(BgpUpdate::announce(
                vec!["10.0.0.0/8".parse().unwrap()],
                PathAttributes::route(
                    AsPath::from_sequence([65001, 137]),
                    "192.0.2.1".parse().unwrap(),
                ),
            )),
        },
    );
    let tail = MrtRecord::bgp4mp(
        200,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    );
    let meta = write_archive(&dir, &[rec, tail]);
    // Corrupt the ORIGIN attribute's value byte: the attr is encoded
    // as flags 0x40, type 1, len 1, value — a unique byte pattern in
    // this small archive.
    let mut bytes = std::fs::read(&meta.path).unwrap();
    let pos = bytes
        .windows(3)
        .position(|w| w == [0x40, 0x01, 0x01])
        .expect("ORIGIN attribute present");
    bytes[pos + 3] = 9; // invalid origin code
    std::fs::write(&meta.path, &bytes).unwrap();

    // A filter that rejects the record outright (wrong peer).
    let mut filters = Filters::none();
    filters.peer_asns.insert(Asn(9));
    let pushed = read_single_file(meta.clone(), &filters);
    let reference = read_single_file(meta, &Filters::none());
    assert_eq!(pushed.len(), reference.len());
    assert_eq!(reference.len(), 1, "corrupt read poisons the dump");
    assert_eq!(pushed[0].status, RecordStatus::CorruptedRecord);
    assert_eq!(reference[0].status, RecordStatus::CorruptedRecord);
    std::fs::remove_dir_all(&dir).ok();
}

/// A RIB row whose peer index is missing from the peer table must be
/// flagged `CorruptedRecord` even when the row's prefix fails the
/// configured filter — the prefilter may not hide missing-peer
/// corruption events from record-level consumers.
#[test]
fn missing_peer_rib_row_stays_flagged_under_filters() {
    let dir = scratch_dir("missing-peer");
    let records = vec![
        MrtRecord::table_dump_v2(0, mrt::table_dump_v2::TableDumpV2::PeerIndexTable(pit())),
        MrtRecord::table_dump_v2(
            5,
            mrt::table_dump_v2::TableDumpV2::RibRow(RibRow {
                sequence: 0,
                prefix: "10.0.0.0/8".parse().unwrap(),
                entries: vec![RibEntry {
                    peer_index: 42, // not in the 3-peer table
                    originated_time: 1,
                    attrs: PathAttributes::route(
                        AsPath::from_sequence([65001, 137]),
                        "192.0.2.1".parse().unwrap(),
                    ),
                }],
            }),
        ),
    ];
    let meta = write_archive(&dir, &records);
    // The prefix filter rejects the row; the missing peer must still
    // surface.
    let mut filters = Filters::none();
    filters
        .prefixes
        .push(("192.0.2.0/24".parse().unwrap(), PrefixMatch::Exact));
    let pushed = read_single_file(meta.clone(), &filters);
    let reference = read_single_file(meta, &Filters::none());
    assert_eq!(pushed.len(), 2);
    assert_eq!(pushed[1].status, RecordStatus::CorruptedRecord);
    assert_eq!(reference[1].status, RecordStatus::CorruptedRecord);
    std::fs::remove_dir_all(&dir).ok();
}

/// The prefilter actually prevents decode work: a stream scoped to a
/// prefix absent from the archive yields only elem-less envelopes.
#[test]
fn selective_filter_yields_empty_envelopes() {
    let dir = scratch_dir("selective");
    let mut records: Vec<MrtRecord> = Vec::new();
    for ts in 1..20u32 {
        records.push(MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Update(BgpUpdate::announce(
                    vec![Prefix::v4(std::net::Ipv4Addr::new(10, ts as u8, 0, 0), 16)],
                    PathAttributes::route(
                        AsPath::from_sequence([65001, 137]),
                        "192.0.2.1".parse().unwrap(),
                    ),
                )),
            },
        ));
    }
    let meta = write_archive(&dir, &records);
    let mut filters = Filters::none();
    filters
        .prefixes
        .push(("198.51.100.0/24".parse().unwrap(), PrefixMatch::Any));
    let recs = read_single_file(meta, &filters);
    assert_eq!(recs.len(), records.len());
    assert!(recs.iter().all(|r| r.elems().is_empty()));
    assert!(recs.iter().all(|r| r.status == RecordStatus::Valid));
    std::fs::remove_dir_all(&dir).ok();
}
