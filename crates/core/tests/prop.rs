//! Property tests for the core additions: JSON export/ingest
//! round-trips and the AS-path regex against a brute-force reference.

use bgp_types::{AsPath, Asn, Community, CommunitySet, SessionState};
use bgpstream::json_input::parse_elem_json;
use bgpstream::record::{DumpPosition, RecordStatus};
use bgpstream::{ascii, AsPathRegex, BgpStreamElem, BgpStreamRecord, ElemType};
use broker::DumpType;
use proptest::prelude::*;

fn arb_elem() -> impl Strategy<Value = BgpStreamElem> {
    let announce = (
        proptest::collection::vec(1u32..100_000, 1..6),
        proptest::collection::vec((1u16..5000, 0u16..1000), 0..4),
        any::<u32>(),
        0u8..2,
    )
        .prop_map(|(path, comms, time, family)| {
            let prefix = if family == 0 {
                "10.42.0.0/16".parse().unwrap()
            } else {
                "2001:db8::/32".parse().unwrap()
            };
            BgpStreamElem {
                elem_type: ElemType::Announcement,
                time: time as u64,
                peer_address: "192.0.2.1".parse().unwrap(),
                peer_asn: Asn(path[0]),
                prefix: Some(prefix),
                next_hop: Some("192.0.2.1".parse().unwrap()),
                as_path: Some(AsPath::from_sequence(path)),
                communities: Some(CommunitySet::from_iter(
                    comms.into_iter().map(|(a, v)| Community::new(a, v)),
                )),
                old_state: None,
                new_state: None,
            }
        });
    let withdraw = any::<u32>().prop_map(|time| BgpStreamElem {
        elem_type: ElemType::Withdrawal,
        time: time as u64,
        peer_address: "192.0.2.9".parse().unwrap(),
        peer_asn: Asn(65001),
        prefix: Some("203.0.113.0/24".parse().unwrap()),
        next_hop: None,
        as_path: None,
        communities: None,
        old_state: None,
        new_state: None,
    });
    let state = (1u16..=6, 1u16..=6, any::<u32>()).prop_map(|(o, n, time)| BgpStreamElem {
        elem_type: ElemType::PeerState,
        time: time as u64,
        peer_address: "192.0.2.7".parse().unwrap(),
        peer_asn: Asn(65001),
        prefix: None,
        next_hop: None,
        as_path: None,
        communities: None,
        old_state: Some(SessionState::from_code(o).unwrap()),
        new_state: Some(SessionState::from_code(n).unwrap()),
    });
    prop_oneof![announce, withdraw, state]
}

fn wrap(elem: BgpStreamElem) -> BgpStreamRecord {
    BgpStreamRecord::new(
        "ris",
        "rrc00",
        DumpType::Updates,
        elem.time,
        elem.time,
        DumpPosition::Only,
        RecordStatus::Valid,
        vec![elem],
    )
}

/// Reference implementation of unanchored-pattern search: try the
/// compiled pattern anchored at every offset via exact recursion.
fn reference_match(pat: &[PatTok], toks: &[u32]) -> bool {
    fn anchored(pat: &[PatTok], toks: &[u32]) -> bool {
        match pat.first() {
            None => toks.is_empty(),
            Some(PatTok::Lit(l)) => toks.first() == Some(l) && anchored(&pat[1..], &toks[1..]),
            Some(PatTok::One) => !toks.is_empty() && anchored(&pat[1..], &toks[1..]),
            Some(PatTok::Run) => (0..=toks.len()).any(|k| anchored(&pat[1..], &toks[k..])),
        }
    }
    // Unanchored on both sides.
    (0..=toks.len()).any(|i| {
        (i..=toks.len()).any(|_| {
            // pad with Run on the right by trying every suffix cut.
            let mut padded = vec![PatTok::Run];
            padded.extend_from_slice(pat);
            padded.push(PatTok::Run);
            anchored(&padded, toks)
        })
    })
}

#[derive(Clone, Copy, Debug)]
enum PatTok {
    Lit(u32),
    One,
    Run,
}

fn arb_pattern() -> impl Strategy<Value = Vec<PatTok>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..6).prop_map(PatTok::Lit),
            Just(PatTok::One),
            Just(PatTok::Run),
        ],
        1..6,
    )
}

fn pattern_string(pat: &[PatTok]) -> String {
    pat.iter()
        .map(|t| match t {
            PatTok::Lit(l) => l.to_string(),
            PatTok::One => "?".into(),
            PatTok::Run => "*".into(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    /// JSON export → ingest is the identity on every elem shape.
    #[test]
    fn elem_json_roundtrip(elem in arb_elem()) {
        let rec = wrap(elem.clone());
        let line = ascii::elem_json(&rec, &elem);
        let parsed = parse_elem_json(&line).unwrap();
        prop_assert_eq!(parsed.elem, elem);
        prop_assert_eq!(parsed.project.as_deref(), Some("ris"));
        prop_assert_eq!(parsed.collector.as_deref(), Some("rrc00"));
    }

    /// The linear-time glob matcher agrees with an exponential
    /// reference on small alphabets.
    #[test]
    fn regex_agrees_with_reference(
        pat in arb_pattern(),
        toks in proptest::collection::vec(0u32..6, 0..10),
    ) {
        let re = AsPathRegex::parse(&pattern_string(&pat)).unwrap();
        prop_assert_eq!(re.matches_tokens(&toks), reference_match(&pat, &toks));
    }

    /// Anchoring is a strictly tighter constraint.
    #[test]
    fn anchored_implies_unanchored(
        pat in arb_pattern(),
        toks in proptest::collection::vec(0u32..6, 0..10),
    ) {
        let s = pattern_string(&pat);
        let full = AsPathRegex::parse(&format!("^{s}$")).unwrap();
        let free = AsPathRegex::parse(&s).unwrap();
        if full.matches_tokens(&toks) {
            prop_assert!(free.matches_tokens(&toks));
        }
    }
}
