//! Merge-order property tests (§3.3.4): for any generated set of dump
//! files — including unopenable and corrupted ones — the sorted stream
//! delivers records with non-decreasing timestamps within each overlap
//! group, and flattened elem iteration annotates every elem with its
//! owning record's interned source identity.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes};
use bgpstream::sort::{partition_overlap_groups, GroupMerger};
use bgpstream::{BgpStream, Filters};
use broker::{DumpMeta, DumpType, Index, LocalBroker};
use mrt::{Bgp4mp, MrtRecord, MrtWriter};
use proptest::prelude::*;

fn scratch(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-mergeorder-{tag}-{}-{case}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn keepalive(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    )
}

fn announce(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Update(BgpUpdate {
                withdrawals: vec![],
                attrs: Some(PathAttributes::route(
                    AsPath::from_sequence([65001, 3356, 137]),
                    "192.0.2.1".parse().unwrap(),
                )),
                announcements: vec!["203.0.113.0/24".parse().unwrap()],
            }),
        },
    )
}

/// How one generated dump file misbehaves.
#[derive(Clone, Copy, Debug, PartialEq)]
enum DumpKind {
    /// Well-formed MRT from start to finish.
    Ok,
    /// Registered in the index but never written to disk.
    Unopenable,
    /// Well-formed records followed by a truncated garbage tail.
    CorruptedTail,
    /// Garbage from the first byte.
    Garbage,
}

/// One generated dump: collector, kind, interval, in-file timestamps.
#[derive(Clone, Debug)]
struct GenDump {
    collector: usize,
    kind: DumpKind,
    start: u64,
    duration: u64,
    /// Sorted offsets (< duration) for the records in the file.
    offsets: Vec<u64>,
}

fn arb_dump() -> impl Strategy<Value = GenDump> {
    (
        0usize..3,
        0u8..4,
        0u64..6,
        1u64..4,
        proptest::collection::vec(0u64..300, 0..12),
    )
        .prop_map(|(collector, kind, start_slot, dur_slots, mut offsets)| {
            let duration = dur_slots * 300;
            offsets.retain(|o| *o < duration);
            offsets.sort_unstable();
            GenDump {
                collector,
                kind: match kind {
                    0 | 1 => DumpKind::Ok, // bias toward readable files
                    2 => DumpKind::CorruptedTail,
                    3 => DumpKind::Garbage,
                    _ => DumpKind::Unopenable,
                },
                start: start_slot * 300,
                duration,
                offsets,
            }
        })
}

fn arb_dumps() -> impl Strategy<Value = Vec<GenDump>> {
    proptest::collection::vec(arb_dump(), 1..7).prop_map(|mut dumps| {
        // Make one of them unopenable now and then (deterministically
        // from the generated data, to keep the strategy simple).
        if dumps.len() >= 3 {
            dumps[1].kind = DumpKind::Unopenable;
        }
        dumps
    })
}

/// Write the generated dumps to disk and register their meta-data.
fn materialize(dumps: &[GenDump], dir: &Path) -> Vec<DumpMeta> {
    let mut metas = Vec::new();
    for (i, d) in dumps.iter().enumerate() {
        let path = dir.join(format!("c{}-{}-{}.mrt", d.collector, d.start, i));
        match d.kind {
            DumpKind::Unopenable => {}
            DumpKind::Garbage => {
                std::fs::write(&path, [0xFFu8; 7]).unwrap();
            }
            DumpKind::Ok | DumpKind::CorruptedTail => {
                let mut buf = Vec::new();
                {
                    let mut w = MrtWriter::new(&mut buf);
                    for off in &d.offsets {
                        let ts = (d.start + off) as u32;
                        // Mix elem-bearing announcements with
                        // elem-free keepalives.
                        let rec = if off % 2 == 0 {
                            announce(ts)
                        } else {
                            keepalive(ts)
                        };
                        w.write(&rec).unwrap();
                    }
                }
                if d.kind == DumpKind::CorruptedTail {
                    buf.extend_from_slice(&[0xEEu8; 9]);
                }
                std::fs::write(&path, &buf).unwrap();
            }
        }
        metas.push(DumpMeta {
            project: "ris".into(),
            collector: format!("rrc0{}", d.collector),
            dump_type: DumpType::Updates,
            interval_start: d.start,
            duration: d.duration,
            path,
            available_at: 0,
            size: 0,
        });
    }
    metas
}

fn assert_non_decreasing(ts: &[u64]) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "timestamps went backwards: {ts:?}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_merge_is_time_sorted_despite_corruption(dumps in arb_dumps(), case in 0u64..u64::MAX) {
        let dir = scratch("prop", case);
        let metas = materialize(&dumps, &dir);
        let expected_records: usize = dumps
            .iter()
            .map(|d| match d.kind {
                DumpKind::Ok => d.offsets.len(),
                DumpKind::CorruptedTail => d.offsets.len() + 1,
                DumpKind::Unopenable | DumpKind::Garbage => 1,
            })
            .sum();

        // Per overlap group: the multi-way merge must deliver
        // non-decreasing timestamps, corrupted dumps included.
        let groups = partition_overlap_groups(&metas);
        let filters = Arc::new(Filters::none().compile());
        let mut total = 0usize;
        for group in groups {
            let mut merger = GroupMerger::open(group, filters.clone());
            let mut ts = Vec::new();
            while let Some(rec) = merger.next() {
                ts.push(rec.timestamp);
                total += 1;
            }
            assert_non_decreasing(&ts)?;
        }
        prop_assert_eq!(total, expected_records, "every dump must be accounted for");

        // Full stream (broker windows + groups): with record
        // timestamps confined to their dump's interval and groups
        // disjoint in time, the whole stream is non-decreasing too.
        let idx = Index::shared();
        for m in &metas {
            idx.register(m.clone());
        }
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx))
            .interval(0, Some(10_000))
            .start();
        let mut ts = Vec::new();
        while let Some(rec) = stream.next_record() {
            ts.push(rec.timestamp);
        }
        prop_assert_eq!(ts.len(), expected_records);
        assert_non_decreasing(&ts)?;

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn next_elem_annotations_match_owning_record(dumps in arb_dumps(), case in 0u64..u64::MAX) {
        let dir = scratch("elems", case);
        let metas = materialize(&dumps, &dir);
        let idx = Index::shared();
        for m in &metas {
            idx.register(m.clone());
        }
        let build = |idx: &std::sync::Arc<Index>| {
            BgpStream::builder()
                .broker_client(LocalBroker::shared(idx.clone()))
                .interval(0, Some(10_000))
                .start()
        };
        // Record-level pass: expected (source, dump_time) per elem.
        let mut expected = Vec::new();
        let mut s1 = build(&idx);
        while let Some(rec) = s1.next_record() {
            for _ in rec.elems() {
                expected.push((rec.source, rec.dump_time));
            }
        }
        // Flattened pass must agree exactly.
        let mut s2 = build(&idx);
        let mut got = Vec::new();
        while let Some((_, src)) = s2.next_elem() {
            got.push((src.source, src.dump_time));
        }
        prop_assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }
}
