//! End-to-end tests: collector simulator → archive → broker →
//! libBGPStream sorted stream (historical and live).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bgp_types::trie::PrefixMatch;
use bgpstream::{BgpStream, Clock, ElemType, RecordStatus};
use broker::{DumpType, Index, LocalBroker};
use collector_sim::{standard_collectors, SimConfig, Simulator};
use topology::control::ControlPlane;
use topology::events::{Event, EventKind, Scenario};
use topology::gen::{generate, TopologyConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-e2e-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Build a two-project world (1 RIS + 1 RouteViews collector), run one
/// hour with some flapping, return (index, archive dir).
fn build_world(tag: &str, seed: u64, horizon: u64) -> (Arc<Index>, PathBuf) {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX);
    let specs = standard_collectors(&cp, 1, 1, 4, 0.8, seed);
    let dir = tmpdir(tag);
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    // Flap a few prefixes for update traffic.
    let mut sc = Scenario::new();
    let topo = sim.control_plane().topology().clone();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(6)
        .enumerate()
    {
        sc.flap(60 + 37 * k as u64, 3, 600, n.asn, n.prefixes_v4[0].prefix);
    }
    sim.schedule(&sc);
    sim.run_until(horizon);
    (idx, dir)
}

#[test]
fn historical_stream_is_time_sorted_across_collectors() {
    let (idx, dir) = build_world("sorted", 31, 3600);
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .record_type(DumpType::Updates)
        .interval(0, Some(3600))
        .start();
    let mut last_ts = 0;
    let mut n = 0;
    let mut collectors = std::collections::HashSet::new();
    let mut group_floor = 0u64; // sorting holds within each overlap group
    let mut prev_group_max = 0u64;
    while let Some(rec) = stream.next_record() {
        collectors.insert(rec.collector().to_string());
        // Our simulated updates are strictly within window bounds, and
        // all windows overlap transitively, so global ordering holds.
        assert!(
            rec.timestamp >= last_ts,
            "timestamp regression: {} < {}",
            rec.timestamp,
            last_ts
        );
        last_ts = rec.timestamp;
        n += 1;
        prev_group_max = prev_group_max.max(rec.timestamp);
        group_floor = group_floor.max(1);
    }
    assert!(n > 10, "too few records: {n}");
    assert_eq!(
        collectors.len(),
        2,
        "expected both collectors: {collectors:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rib_and_updates_interleave_and_positions_mark_dumps() {
    let (idx, dir) = build_world("interleave", 32, 3600);
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .interval(0, Some(3600))
        .start();
    let mut rib_starts = 0;
    let mut rib_ends = 0;
    let mut rib_elems = 0;
    let mut upd_elems = 0;
    while let Some(rec) = stream.next_record() {
        match rec.dump_type() {
            DumpType::Rib => {
                if rec.position.is_start() {
                    rib_starts += 1;
                }
                if rec.position.is_end() {
                    rib_ends += 1;
                }
                rib_elems += rec.elems().len();
            }
            DumpType::Updates => upd_elems += rec.elems().len(),
        }
    }
    // 1 RIS RIB (t=0) + 1 RV RIB (t=0): both dumped immediately;
    // RV also dumps at 7200 > horizon.
    assert_eq!(rib_starts, 2);
    assert_eq!(rib_ends, 2);
    assert!(rib_elems > 0, "no RIB elems");
    assert!(upd_elems > 0, "no update elems");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefix_filter_limits_elems() {
    let (idx, dir) = build_world("filter", 33, 1800);
    // Find some prefix present in the world.
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(33))), u64::MAX);
    let target = cp.topology().nodes[12].prefixes_v4[0].prefix;
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .interval(0, Some(1800))
        .filter_prefix(target, PrefixMatch::MoreSpecific)
        .start();
    let mut matched = 0;
    while let Some(rec) = stream.next_matching_record() {
        for e in rec.elems() {
            if e.elem_type == ElemType::PeerState {
                continue;
            }
            let p = e.prefix.expect("route elems carry prefixes");
            assert!(target.contains(&p), "{p} escaped the filter");
            matched += 1;
        }
    }
    assert!(matched > 0, "filter matched nothing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_files_surface_as_invalid_records() {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(34))), u64::MAX);
    let specs = standard_collectors(&cp, 1, 0, 3, 1.0, 34);
    let dir = tmpdir("corrupt");
    let mut cfg = SimConfig::new(&dir);
    cfg.faults.truncate_prob = 1.0;
    let mut sim = Simulator::new(cp, specs, cfg);
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    sim.run_until(20);
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .interval(0, Some(3600))
        .start();
    let mut corrupt = 0;
    let mut valid = 0;
    while let Some(rec) = stream.next_record() {
        match rec.status {
            RecordStatus::CorruptedRecord | RecordStatus::CorruptedSource => corrupt += 1,
            RecordStatus::Valid => valid += 1,
            RecordStatus::Unsupported => {}
        }
    }
    assert!(corrupt > 0, "no corruption surfaced");
    assert!(
        valid > 0,
        "corruption should not hide earlier valid records"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_stream_delivers_as_clock_advances() {
    // Publish 30 minutes of data, then replay it "live" by advancing
    // a shared manual clock.
    let (idx, dir) = build_world("live", 35, 1800);
    let clock = Clock::manual(0);
    let stream_clock = clock.clone();
    let idx2 = idx.clone();
    let reader = std::thread::spawn(move || {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx2))
            .record_type(DumpType::Updates)
            .project("ris")
            .live(0)
            .clock(stream_clock)
            .live_grace(500) // RIS window (300 s) + max publication delay
            .poll_interval(Duration::from_millis(1))
            .start();
        // Expect at least the records of the first two update windows.
        let mut got = Vec::new();
        while got.len() < 2 {
            match stream.next_record() {
                Some(rec) => got.push((rec.dump_time, rec.timestamp)),
                None => break,
            }
        }
        got
    });
    // Advance virtual time in steps; the reader unblocks once a whole
    // broker window (2 h) plus the grace period has elapsed.
    let mut t = 0u64;
    while !reader.is_finished() && t <= 16_000 {
        t += 400;
        clock.advance_to(t);
        std::thread::sleep(Duration::from_millis(3));
    }
    assert!(reader.is_finished(), "live reader starved");
    let got = reader.join().unwrap();
    assert!(got.len() >= 2, "live stream starved: {got:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn withdrawal_events_visible_in_stream() {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(36))), u64::MAX);
    let topo = cp.topology().clone();
    let victim = topo
        .nodes
        .iter()
        .find(|n| !n.prefixes_v4.is_empty())
        .unwrap();
    let prefix = victim.prefixes_v4[0].prefix;
    let specs = standard_collectors(&cp, 1, 0, 4, 1.0, 36);
    let dir = tmpdir("wd");
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    let mut sc = Scenario::new();
    sc.push(Event::at(
        100,
        EventKind::Withdraw {
            origin: victim.asn,
            prefix,
        },
    ));
    sim.schedule(&sc);
    sim.run_until(900);
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .record_type(DumpType::Updates)
        .interval(0, Some(900))
        .filter_prefix(prefix, PrefixMatch::Exact)
        .filter_elem_type(ElemType::Withdrawal)
        .start();
    let mut withdrawals = 0;
    while let Some(rec) = stream.next_matching_record() {
        withdrawals += rec.elems().len();
    }
    assert!(withdrawals > 0, "withdrawal invisible in stream");
    std::fs::remove_dir_all(&dir).ok();
}
