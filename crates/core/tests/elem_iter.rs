//! The flattened elem-iteration API (`next_elem`) must agree with the
//! nested record/elem loops.

use std::path::PathBuf;
use std::sync::Arc;

use bgpstream::BgpStream;
use broker::{DumpType, Index, LocalBroker};
use collector_sim::{standard_collectors, SimConfig, Simulator};
use topology::control::ControlPlane;
use topology::gen::{generate, TopologyConfig};

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-elemiter-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn next_elem_matches_nested_loops() {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(91))), u64::MAX);
    let specs = standard_collectors(&cp, 1, 1, 3, 1.0, 91);
    let dir = tmpdir();
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    sim.run_until(600);

    let build = || {
        BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .record_type(DumpType::Rib)
            .interval(0, Some(600))
            .start()
    };

    // Nested loops.
    let mut nested = Vec::new();
    let mut s1 = build();
    while let Some(rec) = s1.next_record() {
        for e in rec.elems() {
            nested.push((rec.source, e.clone()));
        }
    }

    // Flattened: the annotation must be the owning record's interned
    // source identity.
    let mut flat = Vec::new();
    let mut s2 = build();
    while let Some((elem, src)) = s2.next_elem() {
        assert!(!src.project().is_empty());
        assert_eq!(src.dump_type(), DumpType::Rib);
        flat.push((src.source, elem));
    }

    assert!(!nested.is_empty());
    assert_eq!(nested.len(), flat.len());
    for (a, b) in nested.iter().zip(flat.iter()) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
    std::fs::remove_dir_all(&dir).ok();
}
