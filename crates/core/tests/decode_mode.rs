//! Stream-level decode-mode equivalence: `DecodeMode::Parallel(n)`
//! must deliver exactly the records `DecodeMode::Sequential` does —
//! same annotations, same extracted elems, same corruption
//! placeholders — for update dumps, RIB dumps with peer-index-table
//! resolution, gzip-compressed files, and full broker-driven streams.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use bgp_types::trie::PrefixMatch;
use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes};
use bgpstream::record::DumpPosition;
use bgpstream::sort::read_single_file_with;
use bgpstream::{BgpStream, BgpStreamElem, BgpStreamRecord, DecodeMode, Filters, RecordStatus};
use broker::{DumpMeta, DumpType, Index, LocalBroker, SourceId};
use flate_lite::{write::GzEncoder, Compression};
use mrt::table_dump_v2::TableDumpV2;
use mrt::{Bgp4mp, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRow};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-decodemode-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn keepalive(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    )
}

fn announce(ts: u32, third_octet: u8) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Update(BgpUpdate {
                withdrawals: vec![],
                attrs: Some(PathAttributes::route(
                    AsPath::from_sequence([65001, 3356, 137]),
                    "192.0.2.1".parse().unwrap(),
                )),
                announcements: vec![format!("203.0.{third_octet}.0/24").parse().unwrap()],
            }),
        },
    )
}

fn pit(ts: u32, peers: u16) -> MrtRecord {
    MrtRecord::table_dump_v2(
        ts,
        TableDumpV2::PeerIndexTable(PeerIndexTable {
            collector_bgp_id: 1,
            view_name: String::new(),
            peers: (0..peers)
                .map(|i| PeerEntry {
                    bgp_id: i as u32,
                    ip: format!("192.0.2.{}", i + 1).parse().unwrap(),
                    asn: Asn(65000 + i as u32),
                })
                .collect(),
        }),
    )
}

fn rib_row(ts: u32, seq: u32, peers: u16) -> MrtRecord {
    MrtRecord::table_dump_v2(
        ts,
        TableDumpV2::RibRow(RibRow {
            sequence: seq,
            prefix: format!("10.{}.0.0/16", seq % 200).parse().unwrap(),
            entries: (0..peers)
                .map(|peer_index| RibEntry {
                    peer_index,
                    originated_time: 1,
                    attrs: PathAttributes::route(
                        AsPath::from_sequence([65001, 3356, 137]),
                        "192.0.2.1".parse().unwrap(),
                    ),
                })
                .collect(),
        }),
    )
}

fn write_plain(path: &Path, records: &[MrtRecord]) {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for r in records {
        w.write(r).unwrap();
    }
    std::fs::write(path, buf).unwrap();
}

fn write_gzip(path: &Path, records: &[MrtRecord]) {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for r in records {
        w.write(r).unwrap();
    }
    let mut enc = GzEncoder::new(Vec::new(), Compression::fast());
    enc.write_all(&buf).unwrap();
    std::fs::write(path, enc.finish().unwrap()).unwrap();
}

fn meta(path: &Path, dump_type: DumpType, collector: &str) -> DumpMeta {
    DumpMeta {
        project: "ris".into(),
        collector: collector.into(),
        dump_type,
        interval_start: 0,
        duration: 900,
        path: path.to_path_buf(),
        available_at: 0,
        size: 0,
    }
}

type Snap = (
    SourceId,
    u64,
    u64,
    DumpPosition,
    RecordStatus,
    Vec<BgpStreamElem>,
);

fn snap(records: Vec<BgpStreamRecord>) -> Vec<Snap> {
    records
        .into_iter()
        .map(|r| {
            let (source, dump_time, timestamp, position, status) =
                (r.source, r.dump_time, r.timestamp, r.position, r.status);
            (
                source,
                dump_time,
                timestamp,
                position,
                status,
                r.into_elems(),
            )
        })
        .collect()
}

/// Compare one file under Sequential vs Parallel(1/2/4/8) and return
/// the (shared) sequential snapshot for further assertions.
fn assert_modes_agree(meta: DumpMeta, filters: &Filters) -> Vec<Snap> {
    let gold = snap(read_single_file_with(
        meta.clone(),
        filters,
        DecodeMode::Sequential,
    ));
    for workers in [1, 2, 4, 8] {
        let par = snap(read_single_file_with(
            meta.clone(),
            filters,
            DecodeMode::Parallel(workers),
        ));
        assert_eq!(par, gold, "Parallel({workers}) diverged from Sequential");
    }
    gold
}

#[test]
fn updates_dump_agrees_across_modes() {
    let dir = tmpdir("updates");
    let path = dir.join("updates.mrt");
    let recs: Vec<MrtRecord> = (0..40)
        .map(|i| {
            if i % 3 == 0 {
                keepalive(i)
            } else {
                announce(i, (i % 250) as u8)
            }
        })
        .collect();
    write_plain(&path, &recs);
    let gold = assert_modes_agree(meta(&path, DumpType::Updates, "rrc00"), &Filters::default());
    assert_eq!(gold.len(), 40);
    assert!(gold.iter().any(|r| !r.5.is_empty()), "updates carry elems");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rib_dump_with_peer_table_agrees_across_modes() {
    let dir = tmpdir("rib");
    let path = dir.join("rib.mrt");
    let mut recs = vec![pit(0, 3)];
    recs.extend((0..30).map(|i| rib_row(1, i, 3)));
    // A second PIT mid-dump: rows after it must resolve against the
    // *new* table in both modes.
    recs.push(pit(2, 5));
    recs.extend((30..60).map(|i| rib_row(3, i, 5)));
    write_plain(&path, &recs);
    let gold = assert_modes_agree(meta(&path, DumpType::Rib, "rrc00"), &Filters::default());
    assert_eq!(gold.len(), recs.len());
    // Peer resolution must actually have happened (3 then 5 elems per
    // row), not just agreed on emptiness.
    assert_eq!(gold[1].5.len(), 3);
    assert_eq!(gold[gold.len() - 1].5.len(), 5);
    assert_eq!(gold[1].5[0].peer_asn, Asn(65000));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_tail_placeholder_agrees_across_modes() {
    let dir = tmpdir("corrupt");
    let path = dir.join("bad.mrt");
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for i in 0..10 {
        w.write(&announce(i, i as u8)).unwrap();
    }
    buf.extend_from_slice(&[0xff; 7]); // truncated garbage tail
    std::fs::write(&path, buf).unwrap();
    let gold = assert_modes_agree(meta(&path, DumpType::Updates, "rrc00"), &Filters::default());
    assert_eq!(gold.len(), 11, "10 records + corruption placeholder");
    let last = gold.last().unwrap();
    assert_eq!(last.4, RecordStatus::CorruptedRecord);
    // The placeholder is stamped with the last good timestamp so it
    // cannot move stream time backwards — identically in both modes.
    assert_eq!(last.2, 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gzip_compressed_file_agrees_across_modes() {
    let dir = tmpdir("gz");
    let path = dir.join("updates.mrt.gz");
    let recs: Vec<MrtRecord> = (0..50).map(|i| announce(i, (i % 250) as u8)).collect();
    write_gzip(&path, &recs);
    let gold = assert_modes_agree(meta(&path, DumpType::Updates, "rrc00"), &Filters::default());
    assert_eq!(gold.len(), 50);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filters_apply_identically_across_modes() {
    let dir = tmpdir("filters");
    let path = dir.join("updates.mrt");
    let recs: Vec<MrtRecord> = (0..30).map(|i| announce(i, (i % 4) as u8)).collect();
    write_plain(&path, &recs);
    let mut filters = Filters::default();
    filters
        .prefixes
        .push(("203.0.1.0/24".parse().unwrap(), PrefixMatch::Exact));
    let gold = assert_modes_agree(meta(&path, DumpType::Updates, "rrc00"), &filters);
    // Pushdown must drop non-matching elems the same way in both
    // modes: only every-4th announcement hits 203.0.1.0/24.
    let matched = gold.iter().filter(|r| !r.5.is_empty()).count();
    assert_eq!(matched, recs.len() / 4 + usize::from(recs.len() % 4 > 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn broker_stream_agrees_across_modes() {
    let dir = tmpdir("stream");
    // Two collectors with overlapping windows plus a RIB: the full
    // merge + annotation pipeline, not just one file.
    let p0 = dir.join("rrc00-updates.mrt");
    let p1 = dir.join("rrc01-updates.mrt.gz");
    let p2 = dir.join("rrc00-rib.mrt");
    write_plain(
        &p0,
        &(0..25)
            .map(|i| announce(i * 2, i as u8))
            .collect::<Vec<_>>(),
    );
    write_gzip(
        &p1,
        &(0..25)
            .map(|i| announce(i * 2 + 1, i as u8))
            .collect::<Vec<_>>(),
    );
    let mut rib = vec![pit(0, 2)];
    rib.extend((0..10).map(|i| rib_row(0, i, 2)));
    write_plain(&p2, &rib);

    let run = |mode: DecodeMode| {
        let idx = Index::shared();
        idx.register(meta(&p0, DumpType::Updates, "rrc00"));
        idx.register(meta(&p1, DumpType::Updates, "rrc01"));
        idx.register(meta(&p2, DumpType::Rib, "rrc00"));
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx))
            .interval(0, Some(900))
            .decode_mode(mode)
            .start();
        let mut out = Vec::new();
        while let Some(rec) = stream.next_record() {
            out.push(rec);
        }
        snap(out)
    };
    let gold = run(DecodeMode::Sequential);
    assert_eq!(gold.len(), 25 + 25 + 11);
    for workers in [1, 3] {
        assert_eq!(
            run(DecodeMode::Parallel(workers)),
            gold,
            "streamed Parallel({workers}) diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
