//! The sorted-stream machinery of §3.3.4.
//!
//! Collectors write records in dump files with monotonically
//! increasing timestamps; additional sorting is needed when a stream
//! mixes files with overlapping time intervals (multiple collectors,
//! or RIBs + Updates). libBGPStream:
//!
//! 1. breaks the dump-file set into **disjoint subsets** by recursive
//!    time-interval overlap ([`partition_overlap_groups`]), minimising
//!    the number of queues each multi-way merge must handle;
//! 2. runs a **multi-way merge** per subset ([`GroupMerger`]): all
//!    files open simultaneously, repeatedly extracting the oldest
//!    record and wrapping it into an annotated `BGPStream record`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::BufRead;
use std::sync::Arc;

use broker::index::DumpMeta;
use mrt::table_dump_v2::TableDumpV2;
use mrt::{MrtBody, MrtReader, PeerIndexTable};

use crate::elem::extract_elems;
use crate::filter::Filters;
use crate::record::{BgpStreamRecord, DumpPosition, RecordStatus};

/// Partition dump files into the paper's disjoint overlap groups.
///
/// Two files belong to the same group if their time intervals overlap,
/// directly or transitively. Returned groups are ordered by start
/// time; files within a group keep a deterministic order.
pub fn partition_overlap_groups(files: &[DumpMeta]) -> Vec<Vec<DumpMeta>> {
    let mut sorted: Vec<DumpMeta> = files.to_vec();
    sorted.sort_by(|a, b| {
        (
            a.interval_start,
            &a.project,
            &a.collector,
            a.dump_type as u8,
        )
            .cmp(&(
                b.interval_start,
                &b.project,
                &b.collector,
                b.dump_type as u8,
            ))
    });
    let mut groups: Vec<Vec<DumpMeta>> = Vec::new();
    let mut current: Vec<DumpMeta> = Vec::new();
    let mut current_end: u64 = 0;
    for f in sorted {
        if current.is_empty() {
            current_end = f.interval_end();
            current.push(f);
            continue;
        }
        // Files are sorted by start, so transitive overlap with the
        // group reduces to: starts strictly before the group's max
        // end. Intervals are half-open — a file covering [0,300) and
        // one covering [300,600) need no cross-sorting, which is what
        // lets Figure 3's 30 minutes of data split into disjoint sets.
        if f.interval_start < current_end {
            current_end = current_end.max(f.interval_end());
            current.push(f);
        } else {
            groups.push(std::mem::take(&mut current));
            current_end = f.interval_end();
            current.push(f);
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// One open dump file inside a merge: a streaming MRT reader plus the
/// state needed to annotate records (peer table, position lookahead).
struct OpenDump {
    meta: DumpMeta,
    reader: Option<MrtReader<std::io::BufReader<File>>>,
    pit: Option<Arc<PeerIndexTable>>,
    /// One-record lookahead so the last record can be flagged
    /// `DumpPosition::End`.
    pending: Option<BgpStreamRecord>,
    produced: u64,
    finished: bool,
}

impl OpenDump {
    fn open(meta: DumpMeta, filters: &Filters) -> Self {
        match File::open(&meta.path) {
            Ok(f) => {
                let mut dump = OpenDump {
                    meta,
                    reader: Some(MrtReader::new(std::io::BufReader::new(f))),
                    pit: None,
                    pending: None,
                    produced: 0,
                    finished: false,
                };
                dump.pending = dump.read_one(filters);
                dump
            }
            Err(e) => {
                // "libBGPStream marks a record as not-valid when the
                // BGP dump file cannot be opened": one synthetic
                // record carries the error.
                let _ = e;
                let rec = BgpStreamRecord {
                    project: meta.project.clone(),
                    collector: meta.collector.clone(),
                    dump_type: meta.dump_type,
                    dump_time: meta.interval_start,
                    timestamp: meta.interval_start,
                    position: DumpPosition::Only,
                    status: RecordStatus::CorruptedSource,
                    elems_vec: Vec::new(),
                };
                OpenDump {
                    meta,
                    reader: None,
                    pit: None,
                    pending: Some(rec),
                    produced: 0,
                    finished: true,
                }
            }
        }
    }

    /// Read and annotate the next raw record (position fixed up later).
    fn read_one(&mut self, filters: &Filters) -> Option<BgpStreamRecord> {
        let reader = self.reader.as_mut()?;
        match reader.next() {
            None => {
                self.finished = true;
                None
            }
            Some(Err(_)) => {
                self.finished = true;
                Some(BgpStreamRecord {
                    project: self.meta.project.clone(),
                    collector: self.meta.collector.clone(),
                    dump_type: self.meta.dump_type,
                    dump_time: self.meta.interval_start,
                    timestamp: self.meta.interval_start,
                    position: DumpPosition::Middle,
                    status: RecordStatus::CorruptedRecord,
                    elems_vec: Vec::new(),
                })
            }
            Some(Ok(rec)) => {
                if let MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(pit)) = &rec.body {
                    self.pit = Some(Arc::new(pit.clone()));
                }
                let unsupported = matches!(rec.body, MrtBody::Unknown(_));
                let extracted = extract_elems(&rec, self.pit.as_deref());
                let status = if unsupported {
                    RecordStatus::Unsupported
                } else if extracted.missing_peer {
                    RecordStatus::CorruptedRecord
                } else {
                    RecordStatus::Valid
                };
                let elems_vec = extracted
                    .elems
                    .into_iter()
                    .filter(|e| filters.matches(e))
                    .collect();
                Some(BgpStreamRecord {
                    project: self.meta.project.clone(),
                    collector: self.meta.collector.clone(),
                    dump_type: self.meta.dump_type,
                    dump_time: self.meta.interval_start,
                    timestamp: rec.timestamp as u64,
                    position: DumpPosition::Middle,
                    status,
                    elems_vec,
                })
            }
        }
    }

    /// Produce the next record with final position annotation.
    fn next(&mut self, filters: &Filters) -> Option<BgpStreamRecord> {
        let mut rec = self.pending.take()?;
        self.pending = if self.finished {
            None
        } else {
            self.read_one(filters)
        };
        let first = self.produced == 0;
        let last = self.pending.is_none();
        rec.position = match (first, last) {
            (true, true) => DumpPosition::Only,
            (true, false) => DumpPosition::Start,
            (false, true) => DumpPosition::End,
            (false, false) => DumpPosition::Middle,
        };
        self.produced += 1;
        Some(rec)
    }

    /// Timestamp of the next record (for heap ordering).
    fn head_timestamp(&self) -> Option<u64> {
        self.pending.as_ref().map(|r| r.timestamp)
    }
}

/// Heap key: (timestamp, source name) — min-heap via reversed Ord.
struct HeapEntry {
    ts: u64,
    tiebreak: (String, String, u8),
    slot: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the oldest first.
        (other.ts, &other.tiebreak, other.slot).cmp(&(self.ts, &self.tiebreak, self.slot))
    }
}

/// Multi-way merge over one overlap group: all files open at once,
/// repeatedly yielding the record with the smallest timestamp.
pub struct GroupMerger {
    dumps: Vec<OpenDump>,
    heap: BinaryHeap<HeapEntry>,
    filters: Arc<Filters>,
}

impl GroupMerger {
    /// Open every file of the group and prime the heap.
    pub fn open(group: Vec<DumpMeta>, filters: Arc<Filters>) -> Self {
        let mut dumps: Vec<OpenDump> = group
            .into_iter()
            .map(|m| OpenDump::open(m, &filters))
            .collect();
        let mut heap = BinaryHeap::with_capacity(dumps.len());
        for (slot, d) in dumps.iter_mut().enumerate() {
            if let Some(ts) = d.head_timestamp() {
                heap.push(HeapEntry {
                    ts,
                    tiebreak: (
                        d.meta.project.clone(),
                        d.meta.collector.clone(),
                        d.meta.dump_type as u8,
                    ),
                    slot,
                });
            }
        }
        GroupMerger {
            dumps,
            heap,
            filters,
        }
    }

    /// Number of simultaneously open files.
    pub fn width(&self) -> usize {
        self.dumps.len()
    }

    /// The next record in timestamp order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<BgpStreamRecord> {
        let entry = self.heap.pop()?;
        let dump = &mut self.dumps[entry.slot];
        let rec = dump.next(&self.filters)?;
        if let Some(ts) = dump.head_timestamp() {
            self.heap.push(HeapEntry {
                ts,
                tiebreak: entry.tiebreak,
                slot: entry.slot,
            });
        }
        Some(rec)
    }
}

/// Convenience: read one local MRT file (no merge) into records —
/// used by tests and the SingleFile interface path.
pub fn read_single_file(meta: DumpMeta, filters: &Filters) -> Vec<BgpStreamRecord> {
    let filters = Arc::new(filters.clone());
    let mut merger = GroupMerger::open(vec![meta], filters);
    let mut out = Vec::new();
    while let Some(r) = merger.next() {
        out.push(r);
    }
    out
}

/// Check that a path exists and looks like MRT (cheap sanity helper
/// for tools).
pub fn looks_like_mrt(path: &std::path::Path) -> bool {
    let Ok(f) = File::open(path) else {
        return false;
    };
    let mut reader = std::io::BufReader::new(f);
    reader.fill_buf().map(|b| !b.is_empty()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use broker::DumpType;
    use std::path::PathBuf;

    fn meta(collector: &str, ty: DumpType, start: u64, dur: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: collector.into(),
            dump_type: ty,
            interval_start: start,
            duration: dur,
            path: PathBuf::from("/nonexistent"),
            available_at: 0,
            size: 0,
        }
    }

    #[test]
    fn figure3_partition() {
        // The Figure 3 scenario: RRC01 (5-min updates + one RIB) and
        // RV2 (15-min updates). Updates files 00:00–00:15 overlap each
        // other transitively; the RIB at 00:20 with zero duration plus
        // the files covering it join the second group.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rv2", DumpType::Updates, 0, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn disjoint_windows_split() {
        let files = vec![
            meta("rv2", DumpType::Updates, 0, 450), // overlaps the next
            meta("rrc01", DumpType::Updates, 300, 300),
            // Gap: nothing covers (600, 1000).
            meta("rrc01", DumpType::Updates, 1000, 300),
            meta("rv2", DumpType::Updates, 1100, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn rib_snapshot_joins_covering_group() {
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Rib, 120, 0),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn empty_input_no_groups() {
        assert!(partition_overlap_groups(&[]).is_empty());
    }

    #[test]
    fn adjacent_intervals_stay_disjoint() {
        // interval_end == next start: half-open intervals do not
        // overlap; no merge needed between consecutive windows.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
        ];
        assert_eq!(partition_overlap_groups(&files).len(), 2);
    }

    #[test]
    fn figure3_thirty_minutes_two_disjoint_sets() {
        // The Figure 3 scenario: 30 minutes (10 files) of data from
        // RRC01 (5-min updates, midnight RIB with rows spreading
        // ~9 min) and RV2 (15-min updates, midnight RIB). The files
        // split into two disjoint sets of 6 and 4, exactly as in the
        // paper's example.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rrc01", DumpType::Rib, 0, 540),
            meta("rv2", DumpType::Rib, 0, 600),
            meta("rv2", DumpType::Updates, 0, 900),
            // Second quarter-hour: nothing bridges across 900.
            meta("rrc01", DumpType::Updates, 900, 300),
            meta("rrc01", DumpType::Updates, 1200, 300),
            meta("rrc01", DumpType::Updates, 1500, 300),
            meta("rv2", DumpType::Updates, 900, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2, "{groups:#?}");
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 4);
    }

    #[test]
    fn missing_file_yields_corrupt_source_record() {
        let m = meta("rrc01", DumpType::Updates, 0, 300);
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, RecordStatus::CorruptedSource);
        assert_eq!(recs[0].position, DumpPosition::Only);
    }
}
