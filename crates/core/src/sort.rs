//! The sorted-stream machinery of §3.3.4.
//!
//! Collectors write records in dump files with monotonically
//! increasing timestamps; additional sorting is needed when a stream
//! mixes files with overlapping time intervals (multiple collectors,
//! or RIBs + Updates). libBGPStream:
//!
//! 1. breaks the dump-file set into **disjoint subsets** by recursive
//!    time-interval overlap ([`partition_overlap_groups`]), minimising
//!    the number of queues each multi-way merge must handle;
//! 2. runs a **multi-way merge** per subset ([`GroupMerger`]): all
//!    files open simultaneously, repeatedly extracting the oldest
//!    record and wrapping it into an annotated `BGPStream record`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::Read as _;
use std::sync::Arc;

use broker::index::DumpMeta;
use broker::SourceId;
use mrt::record::MrtType;
use mrt::table_dump_v2::{TableDumpV2, SUBTYPE_PEER_INDEX_TABLE};
use mrt::{MrtBody, MrtHeader, MrtRecord, MrtSliceReader, PeerIndexTable, RawMrtView};

use crate::elem::{extract_elems_into, extract_elems_owned, BgpStreamElem};
use crate::filter::{CompiledFilters, Filters};
use crate::record::{BgpStreamRecord, DumpPosition, RecordStatus};

/// Partition dump files into the paper's disjoint overlap groups.
///
/// Two files belong to the same group if their time intervals overlap,
/// directly or transitively. Returned groups are ordered by start
/// time; files within a group keep a deterministic order.
pub fn partition_overlap_groups(files: &[DumpMeta]) -> Vec<Vec<DumpMeta>> {
    let mut sorted: Vec<DumpMeta> = files.to_vec();
    sorted.sort_by(|a, b| {
        (
            a.interval_start,
            &a.project,
            &a.collector,
            a.dump_type as u8,
        )
            .cmp(&(
                b.interval_start,
                &b.project,
                &b.collector,
                b.dump_type as u8,
            ))
    });
    let mut groups: Vec<Vec<DumpMeta>> = Vec::new();
    let mut current: Vec<DumpMeta> = Vec::new();
    let mut current_end: u64 = 0;
    for f in sorted {
        if current.is_empty() {
            current_end = f.interval_end();
            current.push(f);
            continue;
        }
        // Files are sorted by start, so transitive overlap with the
        // group reduces to: starts strictly before the group's max
        // end. Intervals are half-open — a file covering [0,300) and
        // one covering [300,600) need no cross-sorting, which is what
        // lets Figure 3's 30 minutes of data split into disjoint sets.
        if f.interval_start < current_end {
            current_end = current_end.max(f.interval_end());
            current.push(f);
        } else {
            groups.push(std::mem::take(&mut current));
            current_end = f.interval_end();
            current.push(f);
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// One open dump file inside a merge: a streaming MRT reader plus the
/// state needed to annotate records (peer table, position lookahead).
struct OpenDump {
    meta: DumpMeta,
    /// Interned source identity, resolved once at open; every record
    /// copies this handle instead of cloning the name strings.
    source: SourceId,
    reader: Option<MrtSliceReader>,
    pit: Option<Arc<PeerIndexTable>>,
    /// One-record lookahead so the last record can be flagged
    /// `DumpPosition::End`.
    pending: Option<BgpStreamRecord>,
    produced: u64,
    finished: bool,
    /// Timestamp of the last record delivered from this dump; placeholder
    /// records for corrupted reads are stamped with it so the merged
    /// stream never goes backwards in time.
    last_ts: u64,
}

impl OpenDump {
    fn open(meta: DumpMeta, filters: &CompiledFilters, scratch: &mut Vec<BgpStreamElem>) -> Self {
        let source = meta.source_id();
        // Slurp the whole file: dump files are bounded (one broker
        // window's worth) and a single read beats per-record BufReader
        // syscalls on the merge path.
        match std::fs::read(&meta.path) {
            Ok(bytes) => {
                let mut dump = OpenDump {
                    last_ts: meta.interval_start,
                    meta,
                    source,
                    reader: Some(MrtSliceReader::new(bytes)),
                    pit: None,
                    pending: None,
                    produced: 0,
                    finished: false,
                };
                dump.pending = dump.read_one(filters, scratch);
                dump
            }
            Err(e) => {
                // "libBGPStream marks a record as not-valid when the
                // BGP dump file cannot be opened": one synthetic
                // record carries the error.
                let _ = e;
                let rec = BgpStreamRecord {
                    source,
                    dump_time: meta.interval_start,
                    timestamp: meta.interval_start,
                    position: DumpPosition::Only,
                    status: RecordStatus::CorruptedSource,
                    elems_vec: Vec::new(),
                };
                OpenDump {
                    last_ts: meta.interval_start,
                    meta,
                    source,
                    reader: None,
                    pit: None,
                    pending: Some(rec),
                    produced: 0,
                    finished: true,
                }
            }
        }
    }

    /// Read and annotate the next raw record (position fixed up later).
    ///
    /// Filter pushdown happens here: the record is *framed* first
    /// ([`MrtSliceReader::next_raw`]), and when the compiled filters
    /// can prove from the raw bytes that no elem of the record will
    /// pass ([`CompiledFilters::record_may_match`]), the full decode —
    /// and every allocation it implies — is skipped and an elem-less
    /// record envelope is emitted instead. The envelope sequence
    /// (timestamps, positions, dump annotations) is identical to the
    /// decode-then-filter path; only the wasted work is gone.
    fn read_one(
        &mut self,
        filters: &CompiledFilters,
        scratch: &mut Vec<BgpStreamElem>,
    ) -> Option<BgpStreamRecord> {
        // Direct field access throughout (no `&mut self` helpers):
        // `raw` keeps a loan on `self.reader` alive, and the borrow
        // checker only tolerates touching the *other* fields.
        let source = self.source;
        let dump_time = self.meta.interval_start;
        let reader = self.reader.as_mut()?;
        let raw = match reader.next_raw() {
            None => {
                self.finished = true;
                return None;
            }
            Some(Err(_)) => {
                self.finished = true;
                // Stamp the placeholder with the last timestamp this
                // dump delivered — not `interval_start`, which can lie
                // before records already emitted and would make the
                // merged stream go backwards in time.
                return Some(empty_record(
                    source,
                    dump_time,
                    self.last_ts,
                    RecordStatus::CorruptedRecord,
                ));
            }
            Some(Ok(raw)) => raw,
        };
        let ts = raw.header.timestamp as u64;
        if !filters.is_pass_all() {
            match raw.header.mrt_type {
                // Unsupported record types never decompose into elems;
                // skip even the body-preserving copy the decoder does.
                MrtType::Other(_) => {
                    self.last_ts = self.last_ts.max(ts);
                    return Some(empty_record(
                        source,
                        dump_time,
                        ts,
                        RecordStatus::Unsupported,
                    ));
                }
                // The peer index table must always be decoded (RIB
                // rows that follow resolve peers through it).
                MrtType::TableDumpV2 if raw.header.subtype == SUBTYPE_PEER_INDEX_TABLE => {}
                _ => {
                    if let Some(view) = RawMrtView::parse(&raw.header, raw.body) {
                        // A rejection also certifies the body would
                        // have decoded cleanly (the prefilter scans
                        // validate as they go), so skipping the decode
                        // can never hide a corrupted read that the
                        // unfiltered path would have signalled.
                        if !filters.record_may_match(&view, self.pit.as_deref()) {
                            self.last_ts = self.last_ts.max(ts);
                            return Some(empty_record(source, dump_time, ts, RecordStatus::Valid));
                        }
                    }
                    // Unparseable or possibly-corrupt views fall
                    // through to the full decode, which owns
                    // corruption signalling.
                }
            }
        }
        let rec = match MrtRecord::decode(&raw.header, raw.body) {
            Ok(rec) => rec,
            Err(_) => {
                self.finished = true;
                return Some(empty_record(
                    source,
                    dump_time,
                    self.last_ts,
                    RecordStatus::CorruptedRecord,
                ));
            }
        };
        if let MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(pit)) = &rec.body {
            self.pit = Some(Arc::new(pit.clone()));
        }
        let unsupported = matches!(rec.body, MrtBody::Unknown(_));
        let (elems_vec, missing_peer) = if filters.is_pass_all() {
            // Fast path: with no elem filters configured, the
            // extracted Vec is handed over as-is.
            let extracted = extract_elems_owned(rec, self.pit.as_deref());
            (extracted.elems, extracted.missing_peer)
        } else {
            // Extract into the merger-wide scratch buffer, filter in
            // place, and right-size an owned Vec only for survivors —
            // fully-filtered records allocate nothing.
            scratch.clear();
            let missing_peer = extract_elems_into(rec, self.pit.as_deref(), scratch);
            scratch.retain(|e| filters.matches(e));
            let elems = if scratch.is_empty() {
                Vec::new()
            } else {
                // Deliberately NOT `mem::take` (clippy::drain_collect):
                // taking would steal the scratch buffer's capacity and
                // defeat its reuse across records. Draining moves the
                // survivors into one exact-size Vec and keeps the
                // buffer allocated.
                #[allow(clippy::drain_collect)]
                scratch.drain(..).collect()
            };
            (elems, missing_peer)
        };
        let status = if unsupported {
            RecordStatus::Unsupported
        } else if missing_peer {
            RecordStatus::CorruptedRecord
        } else {
            RecordStatus::Valid
        };
        self.last_ts = self.last_ts.max(ts);
        Some(BgpStreamRecord {
            source: self.source,
            dump_time: self.meta.interval_start,
            timestamp: ts,
            position: DumpPosition::Middle,
            status,
            elems_vec,
        })
    }

    /// Produce the next record with final position annotation.
    fn next(
        &mut self,
        filters: &CompiledFilters,
        scratch: &mut Vec<BgpStreamElem>,
    ) -> Option<BgpStreamRecord> {
        let mut rec = self.pending.take()?;
        self.pending = if self.finished {
            None
        } else {
            self.read_one(filters, scratch)
        };
        let first = self.produced == 0;
        let last = self.pending.is_none();
        rec.position = match (first, last) {
            (true, true) => DumpPosition::Only,
            (true, false) => DumpPosition::Start,
            (false, true) => DumpPosition::End,
            (false, false) => DumpPosition::Middle,
        };
        self.produced += 1;
        Some(rec)
    }

    /// Timestamp of the next record (for heap ordering).
    fn head_timestamp(&self) -> Option<u64> {
        self.pending.as_ref().map(|r| r.timestamp)
    }
}

/// An elem-less record envelope: corrupted-read placeholders,
/// unsupported record types, and prefilter-rejected records (whose
/// envelope must still flow so positions and record-level events are
/// identical to the decode-then-filter path).
fn empty_record(
    source: SourceId,
    dump_time: u64,
    timestamp: u64,
    status: RecordStatus,
) -> BgpStreamRecord {
    BgpStreamRecord {
        source,
        dump_time,
        timestamp,
        position: DumpPosition::Middle,
        status,
        elems_vec: Vec::new(),
    }
}

/// Heap key: (timestamp, source rank) — min-heap via reversed Ord.
///
/// `rank` is the dump's position in the lexicographic
/// (project, collector, dump type) order of its group, computed once
/// at open time, so equal-timestamp ties break exactly as the old
/// string-tuple comparison did — without any per-push allocation.
#[derive(Clone, Copy)]
struct HeapEntry {
    ts: u64,
    rank: u32,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the oldest first.
        (other.ts, other.rank, other.slot).cmp(&(self.ts, self.rank, self.slot))
    }
}

/// Multi-way merge over one overlap group: all files open at once,
/// repeatedly yielding the record with the smallest timestamp.
///
/// Carries the stream's [`CompiledFilters`] (compiled once at stream
/// start) and one scratch elem buffer shared by every open dump, so
/// the filtered read path allocates nothing per rejected record.
pub struct GroupMerger {
    dumps: Vec<OpenDump>,
    heap: BinaryHeap<HeapEntry>,
    /// `ranks[slot]`: lexicographic tiebreak rank of that dump.
    ranks: Vec<u32>,
    filters: Arc<CompiledFilters>,
    /// Reusable elem extraction buffer (see [`extract_elems_into`]).
    scratch: Vec<BgpStreamElem>,
}

impl GroupMerger {
    /// Open every file of the group and prime the heap.
    pub fn open(group: Vec<DumpMeta>, filters: Arc<CompiledFilters>) -> Self {
        let mut scratch = Vec::new();
        let dumps: Vec<OpenDump> = group
            .into_iter()
            .map(|m| OpenDump::open(m, &filters, &mut scratch))
            .collect();
        // Integer tiebreaks: rank slots by (project, collector, type)
        // once, so the heap never compares (or clones) strings.
        let mut order: Vec<usize> = (0..dumps.len()).collect();
        order.sort_by(|&a, &b| {
            let (ma, mb) = (&dumps[a].meta, &dumps[b].meta);
            (&ma.project, &ma.collector, ma.dump_type as u8).cmp(&(
                &mb.project,
                &mb.collector,
                mb.dump_type as u8,
            ))
        });
        let mut ranks = vec![0u32; dumps.len()];
        for (rank, &slot) in order.iter().enumerate() {
            ranks[slot] = rank as u32;
        }
        let mut heap = BinaryHeap::with_capacity(dumps.len());
        for (slot, d) in dumps.iter().enumerate() {
            if let Some(ts) = d.head_timestamp() {
                heap.push(HeapEntry {
                    ts,
                    rank: ranks[slot],
                    slot: slot as u32,
                });
            }
        }
        GroupMerger {
            dumps,
            heap,
            ranks,
            filters,
            scratch,
        }
    }

    /// Number of simultaneously open files.
    pub fn width(&self) -> usize {
        self.dumps.len()
    }

    /// Admit a newly published dump into the running merge (live mode:
    /// a straggler that surfaced behind the broker cursor while this
    /// group drains). The dump is opened and its head joins the heap;
    /// records older than what the merge already delivered surface
    /// next and are re-stamped by the stream's live monotonic clamp —
    /// the same machinery that keeps corrupted-read placeholders from
    /// moving time backwards. Ties against existing dumps break after
    /// them (the admitted dump gets the next rank), so admission never
    /// perturbs the relative order of records already queued.
    pub fn admit(&mut self, meta: DumpMeta) {
        let slot = self.dumps.len();
        let rank = self.ranks.iter().copied().max().map_or(0, |r| r + 1);
        let dump = OpenDump::open(meta, &self.filters, &mut self.scratch);
        self.ranks.push(rank);
        if let Some(ts) = dump.head_timestamp() {
            self.heap.push(HeapEntry {
                ts,
                rank,
                slot: slot as u32,
            });
        }
        self.dumps.push(dump);
    }

    /// Whether another record is ready without further file reads
    /// being required to know so (the heap holds a primed head).
    pub fn has_next(&self) -> bool {
        !self.heap.is_empty()
    }

    /// The next record in timestamp order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<BgpStreamRecord> {
        let entry = self.heap.pop()?;
        let dump = &mut self.dumps[entry.slot as usize];
        let rec = dump.next(&self.filters, &mut self.scratch)?;
        if let Some(ts) = dump.head_timestamp() {
            self.heap.push(HeapEntry {
                ts,
                rank: self.ranks[entry.slot as usize],
                slot: entry.slot,
            });
        }
        Some(rec)
    }
}

/// Convenience: read one local MRT file (no merge) into records —
/// used by tests and the SingleFile interface path.
pub fn read_single_file(meta: DumpMeta, filters: &Filters) -> Vec<BgpStreamRecord> {
    let filters = Arc::new(filters.compile());
    let mut merger = GroupMerger::open(vec![meta], filters);
    let mut out = Vec::new();
    while let Some(r) = merger.next() {
        out.push(r);
    }
    out
}

/// Check that a path exists and looks like MRT (cheap sanity helper
/// for tools): peek the 12-byte common header and require a known
/// record type and a sane body length, so arbitrary non-empty files
/// are not misclassified.
pub fn looks_like_mrt(path: &std::path::Path) -> bool {
    let Ok(mut f) = File::open(path) else {
        return false;
    };
    let mut buf = [0u8; MrtHeader::LEN];
    if f.read_exact(&mut buf).is_err() {
        return false;
    }
    let Ok(header) = MrtHeader::decode(&buf) else {
        return false;
    };
    // RFC 6396 §4 type registry: OSPFv2(11), TABLE_DUMP(12),
    // TABLE_DUMP_V2(13), BGP4MP(16), BGP4MP_ET(17), ISIS(32/33),
    // OSPFv3(48/49).
    let known_type = matches!(
        header.mrt_type,
        MrtType::TableDumpV2 | MrtType::Bgp4mp | MrtType::Other(11 | 12 | 17 | 32 | 33 | 48 | 49)
    );
    known_type && header.length <= mrt::reader::MAX_RECORD_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use broker::DumpType;
    use std::path::PathBuf;

    fn meta(collector: &str, ty: DumpType, start: u64, dur: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: collector.into(),
            dump_type: ty,
            interval_start: start,
            duration: dur,
            path: PathBuf::from("/nonexistent"),
            available_at: 0,
            size: 0,
        }
    }

    #[test]
    fn figure3_partition() {
        // The Figure 3 scenario: RRC01 (5-min updates + one RIB) and
        // RV2 (15-min updates). Updates files 00:00–00:15 overlap each
        // other transitively; the RIB at 00:20 with zero duration plus
        // the files covering it join the second group.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rv2", DumpType::Updates, 0, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn disjoint_windows_split() {
        let files = vec![
            meta("rv2", DumpType::Updates, 0, 450), // overlaps the next
            meta("rrc01", DumpType::Updates, 300, 300),
            // Gap: nothing covers (600, 1000).
            meta("rrc01", DumpType::Updates, 1000, 300),
            meta("rv2", DumpType::Updates, 1100, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn rib_snapshot_joins_covering_group() {
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Rib, 120, 0),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn empty_input_no_groups() {
        assert!(partition_overlap_groups(&[]).is_empty());
    }

    #[test]
    fn adjacent_intervals_stay_disjoint() {
        // interval_end == next start: half-open intervals do not
        // overlap; no merge needed between consecutive windows.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
        ];
        assert_eq!(partition_overlap_groups(&files).len(), 2);
    }

    #[test]
    fn figure3_thirty_minutes_two_disjoint_sets() {
        // The Figure 3 scenario: 30 minutes (10 files) of data from
        // RRC01 (5-min updates, midnight RIB with rows spreading
        // ~9 min) and RV2 (15-min updates, midnight RIB). The files
        // split into two disjoint sets of 6 and 4, exactly as in the
        // paper's example.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rrc01", DumpType::Rib, 0, 540),
            meta("rv2", DumpType::Rib, 0, 600),
            meta("rv2", DumpType::Updates, 0, 900),
            // Second quarter-hour: nothing bridges across 900.
            meta("rrc01", DumpType::Updates, 900, 300),
            meta("rrc01", DumpType::Updates, 1200, 300),
            meta("rrc01", DumpType::Updates, 1500, 300),
            meta("rv2", DumpType::Updates, 900, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2, "{groups:#?}");
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 4);
    }

    #[test]
    fn missing_file_yields_corrupt_source_record() {
        let m = meta("rrc01", DumpType::Updates, 0, 300);
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, RecordStatus::CorruptedSource);
        assert_eq!(recs[0].position, DumpPosition::Only);
    }

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "bgpstream-sort-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn keepalive(ts: u32) -> mrt::MrtRecord {
        mrt::MrtRecord::bgp4mp(
            ts,
            mrt::Bgp4mp::Message {
                peer_asn: bgp_types::Asn(65001),
                local_asn: bgp_types::Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: bgp_types::BgpMessage::Keepalive,
            },
        )
    }

    fn encode(records: &[mrt::MrtRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = mrt::MrtWriter::new(&mut buf);
        for r in records {
            w.write(r).unwrap();
        }
        buf
    }

    #[test]
    fn corrupted_record_placeholder_keeps_time_monotonic() {
        // Regression: the placeholder for a corrupted read used to be
        // stamped with `interval_start` (here 0), jumping the stream
        // back in time after records at 500 and 600 were delivered.
        let dir = scratch("corrupt");
        let path = dir.join("u.mrt");
        let mut bytes = encode(&[keepalive(500), keepalive(600)]);
        bytes.extend_from_slice(&[0xFF; 7]); // truncated garbage tail
        std::fs::write(&path, &bytes).unwrap();
        let m = DumpMeta {
            path,
            ..meta("rrc01", DumpType::Updates, 0, 900)
        };
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].status, RecordStatus::CorruptedRecord);
        assert_eq!(
            recs[2].timestamp, 600,
            "placeholder must carry the last delivered timestamp"
        );
        assert!(
            recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "timestamps must be non-decreasing: {:?}",
            recs.iter().map(|r| r.timestamp).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_dump_head_placeholder_uses_interval_start() {
        // A dump that is garbage from the first byte has delivered
        // nothing; its placeholder falls back to `interval_start`.
        let dir = scratch("corrupt-head");
        let path = dir.join("u.mrt");
        std::fs::write(&path, [0xFFu8; 7]).unwrap();
        let m = DumpMeta {
            path,
            ..meta("rrc01", DumpType::Updates, 450, 300)
        };
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, RecordStatus::CorruptedRecord);
        assert_eq!(recs[0].timestamp, 450);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admitted_dump_joins_the_running_merge() {
        let dir = scratch("admit");
        let a = dir.join("a.mrt");
        std::fs::write(&a, encode(&[keepalive(100), keepalive(400)])).unwrap();
        let b = dir.join("b.mrt");
        std::fs::write(&b, encode(&[keepalive(200), keepalive(300)])).unwrap();
        let ma = DumpMeta {
            path: a,
            ..meta("rrc01", DumpType::Updates, 0, 900)
        };
        let mb = DumpMeta {
            path: b,
            ..meta("rv2", DumpType::Updates, 0, 900)
        };
        let mut merger = GroupMerger::open(vec![ma], Arc::new(Filters::none().compile()));
        // Drain one record, then admit the second dump mid-merge: its
        // still-future records interleave in timestamp order.
        let first = merger.next().unwrap();
        assert_eq!(first.timestamp, 100);
        merger.admit(mb);
        assert_eq!(merger.width(), 2);
        let rest: Vec<u64> = std::iter::from_fn(|| merger.next().map(|r| r.timestamp)).collect();
        assert_eq!(rest, vec![200, 300, 400]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn looks_like_mrt_peeks_header() {
        let dir = scratch("sniff");
        // Real MRT: accepted.
        let good = dir.join("good.mrt");
        std::fs::write(&good, encode(&[keepalive(1)])).unwrap();
        assert!(looks_like_mrt(&good));
        // Arbitrary text used to pass the old "non-empty" check.
        let text = dir.join("notes.txt");
        std::fs::write(&text, "hello world, definitely not MRT data").unwrap();
        assert!(!looks_like_mrt(&text));
        // Empty, too-short, and missing files are rejected.
        let empty = dir.join("empty");
        std::fs::write(&empty, b"").unwrap();
        assert!(!looks_like_mrt(&empty));
        let short = dir.join("short");
        std::fs::write(&short, [0u8; 5]).unwrap();
        assert!(!looks_like_mrt(&short));
        assert!(!looks_like_mrt(&dir.join("nonexistent")));
        // A known type with an insane length field is rejected.
        let oversized = dir.join("oversized");
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&1u32.to_be_bytes()); // timestamp
        hdr.extend_from_slice(&16u16.to_be_bytes()); // BGP4MP
        hdr.extend_from_slice(&4u16.to_be_bytes()); // subtype
        hdr.extend_from_slice(&(64u32 << 20).to_be_bytes()); // 64 MiB body
        std::fs::write(&oversized, &hdr).unwrap();
        assert!(!looks_like_mrt(&oversized));
        std::fs::remove_dir_all(&dir).ok();
    }
}
