//! The sorted-stream machinery of §3.3.4.
//!
//! Collectors write records in dump files with monotonically
//! increasing timestamps; additional sorting is needed when a stream
//! mixes files with overlapping time intervals (multiple collectors,
//! or RIBs + Updates). libBGPStream:
//!
//! 1. breaks the dump-file set into **disjoint subsets** by recursive
//!    time-interval overlap ([`partition_overlap_groups`]), minimising
//!    the number of queues each multi-way merge must handle;
//! 2. runs a **multi-way merge** per subset ([`GroupMerger`]): all
//!    files open simultaneously, repeatedly extracting the oldest
//!    record and wrapping it into an annotated `BGPStream record`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use broker::index::DumpMeta;
use broker::SourceId;
use mrt::record::MrtType;
use mrt::table_dump_v2::{TableDumpV2, SUBTYPE_PEER_INDEX_TABLE};
use mrt::{
    ChunkCtx, ChunkedReader, DecodeMode, MrtBody, MrtHeader, MrtRecord, ParDecoder, PeerIndexTable,
    RawMrtView, Step,
};

use crate::elem::{extract_into, BgpStreamElem};
use crate::filter::{CompiledFilters, Filters};
use crate::record::{BgpStreamRecord, DumpPosition, RecordStatus};

/// Partition dump files into the paper's disjoint overlap groups.
///
/// Two files belong to the same group if their time intervals overlap,
/// directly or transitively. Returned groups are ordered by start
/// time; files within a group keep a deterministic order.
pub fn partition_overlap_groups(files: &[DumpMeta]) -> Vec<Vec<DumpMeta>> {
    let mut sorted: Vec<DumpMeta> = files.to_vec();
    sorted.sort_by(|a, b| {
        (
            a.interval_start,
            &a.project,
            &a.collector,
            a.dump_type as u8,
        )
            .cmp(&(
                b.interval_start,
                &b.project,
                &b.collector,
                b.dump_type as u8,
            ))
    });
    let mut groups: Vec<Vec<DumpMeta>> = Vec::new();
    let mut current: Vec<DumpMeta> = Vec::new();
    let mut current_end: u64 = 0;
    for f in sorted {
        if current.is_empty() {
            current_end = f.interval_end();
            current.push(f);
            continue;
        }
        // Files are sorted by start, so transitive overlap with the
        // group reduces to: starts strictly before the group's max
        // end. Intervals are half-open — a file covering [0,300) and
        // one covering [300,600) need no cross-sorting, which is what
        // lets Figure 3's 30 minutes of data split into disjoint sets.
        if f.interval_start < current_end {
            current_end = current_end.max(f.interval_end());
            current.push(f);
        } else {
            groups.push(std::mem::take(&mut current));
            current_end = f.interval_end();
            current.push(f);
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// The per-record decode result flowing out of [`decode_one`], before
/// the dump-level state (last-delivered timestamp, position lookahead)
/// is applied. Parallel decode workers produce these; the consumer
/// side turns them into [`BgpStreamRecord`]s.
struct Decoded {
    ts: u64,
    status: RecordStatus,
    elems: Vec<BgpStreamElem>,
    /// Corrupted-read placeholders carry no timestamp of their own:
    /// the *consumer* stamps them with the dump's last delivered
    /// timestamp (sequential state no worker can know). Always set
    /// together with stream termination — a stamped placeholder is the
    /// dump's final record, mirroring the poisoning readers.
    stamp_with_last: bool,
}

impl Decoded {
    fn empty(ts: u64, status: RecordStatus) -> Decoded {
        Decoded {
            ts,
            status,
            elems: Vec::new(),
            stamp_with_last: false,
        }
    }

    /// The corrupted-read placeholder ending a stream.
    fn corrupt_tail() -> Decoded {
        Decoded {
            ts: 0,
            status: RecordStatus::CorruptedRecord,
            elems: Vec::new(),
            stamp_with_last: true,
        }
    }
}

/// Decode and filter one framed record. This is THE per-record path —
/// the sequential reader calls it inline, parallel workers call it
/// from the [`ParDecoder`] map — so the two modes cannot drift apart.
///
/// Filter pushdown happens here: when the compiled filters can prove
/// from the raw bytes that no elem of the record will pass
/// ([`CompiledFilters::record_may_match`]), the full decode — and
/// every allocation it implies — is skipped and an elem-less envelope
/// is emitted instead. The envelope sequence (timestamps, positions,
/// dump annotations) is identical to the decode-then-filter path;
/// only the wasted work is gone.
///
/// `pit` is the `PEER_INDEX_TABLE` in effect *before* this record;
/// if the record is itself a PIT it is installed into the slot (the
/// sequential caller threads its dump-wide slot here; parallel
/// workers thread a per-record scratch slot pre-seeded from
/// [`ChunkCtx`], whose propagation the chunk framer owns).
fn decode_one(
    filters: &CompiledFilters,
    scratch: &mut Vec<BgpStreamElem>,
    pit: &mut Option<Arc<PeerIndexTable>>,
    header: &MrtHeader,
    body: &[u8],
) -> Step<Decoded> {
    let ts = header.timestamp as u64;
    if !filters.is_pass_all() {
        match header.mrt_type {
            // Unsupported record types never decompose into elems;
            // skip even the body-preserving copy the decoder does.
            MrtType::Other(_) => {
                return Step::Item(Decoded::empty(ts, RecordStatus::Unsupported));
            }
            // The peer index table must always be decoded (RIB
            // rows that follow resolve peers through it).
            MrtType::TableDumpV2 if header.subtype == SUBTYPE_PEER_INDEX_TABLE => {}
            _ => {
                if let Some(view) = RawMrtView::parse(header, body) {
                    // A rejection also certifies the body would
                    // have decoded cleanly (the prefilter scans
                    // validate as they go), so skipping the decode
                    // can never hide a corrupted read that the
                    // unfiltered path would have signalled.
                    if !filters.record_may_match(&view, pit.as_deref()) {
                        return Step::Item(Decoded::empty(ts, RecordStatus::Valid));
                    }
                }
                // Unparseable or possibly-corrupt views fall
                // through to the full decode, which owns
                // corruption signalling.
            }
        }
    }
    let rec = match MrtRecord::decode(header, body) {
        Ok(rec) => rec,
        Err(_) => return Step::Terminal(Decoded::corrupt_tail()),
    };
    if let MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(p)) = &rec.body {
        *pit = Some(Arc::new(p.clone()));
    }
    let unsupported = matches!(rec.body, MrtBody::Unknown(_));
    let (elems, missing_peer) = if filters.is_pass_all() {
        // Fast path: with no elem filters configured, the
        // extracted Vec is handed over as-is.
        let mut elems = Vec::new();
        let missing_peer = extract_into(rec, pit.as_deref(), &mut elems);
        (elems, missing_peer)
    } else {
        // Extract into the reusable scratch buffer, filter in
        // place, and right-size an owned Vec only for survivors —
        // fully-filtered records allocate nothing.
        scratch.clear();
        let missing_peer = extract_into(rec, pit.as_deref(), scratch);
        scratch.retain(|e| filters.matches(e));
        let elems = if scratch.is_empty() {
            Vec::new()
        } else {
            // Deliberately NOT `mem::take` (clippy::drain_collect):
            // taking would steal the scratch buffer's capacity and
            // defeat its reuse across records. Draining moves the
            // survivors into one exact-size Vec and keeps the
            // buffer allocated.
            #[allow(clippy::drain_collect)]
            scratch.drain(..).collect()
        };
        (elems, missing_peer)
    };
    let status = if unsupported {
        RecordStatus::Unsupported
    } else if missing_peer {
        RecordStatus::CorruptedRecord
    } else {
        RecordStatus::Valid
    };
    Step::Item(Decoded {
        ts,
        status,
        elems,
        stamp_with_last: false,
    })
}

/// The record source behind one open dump: either the streaming
/// sequential reader, or the parallel front-end (framing on this
/// thread, decode on a worker pool, in-order reassembly).
enum DumpSource {
    Seq(ChunkedReader),
    Par(Box<ParDecoder<Decoded>>),
}

/// One open dump file inside a merge: a streaming MRT source plus the
/// state needed to annotate records (peer table, position lookahead).
struct OpenDump {
    meta: DumpMeta,
    /// Interned source identity, resolved once at open; every record
    /// copies this handle instead of cloning the name strings.
    source: SourceId,
    input: Option<DumpSource>,
    /// Sequential-mode peer table slot (parallel mode tracks the
    /// table inside the framer, per chunk).
    pit: Option<Arc<PeerIndexTable>>,
    /// One-record lookahead so the last record can be flagged
    /// `DumpPosition::End`.
    pending: Option<BgpStreamRecord>,
    produced: u64,
    finished: bool,
    /// Timestamp of the last record delivered from this dump; placeholder
    /// records for corrupted reads are stamped with it so the merged
    /// stream never goes backwards in time.
    last_ts: u64,
}

impl OpenDump {
    fn open(
        meta: DumpMeta,
        filters: &Arc<CompiledFilters>,
        scratch: &mut Vec<BgpStreamElem>,
        mode: DecodeMode,
    ) -> Self {
        let source = meta.source_id();
        // Streaming open: the reader decompresses and frames
        // incrementally into a bounded window instead of slurping the
        // whole (possibly gzip-compressed) file into memory.
        match ChunkedReader::open(&meta.path) {
            Ok(reader) => {
                let input = match mode {
                    DecodeMode::Sequential => DumpSource::Seq(reader),
                    DecodeMode::Parallel(n) => {
                        let f = Arc::clone(filters);
                        DumpSource::Par(Box::new(ParDecoder::spawn(
                            reader,
                            n.max(1),
                            |_| Vec::new(),
                            move |scratch: &mut Vec<BgpStreamElem>,
                                  ctx: &ChunkCtx,
                                  header,
                                  body| {
                                // Per-record PIT slot seeded from the
                                // chunk context; the framer owns
                                // cross-chunk propagation, so a local
                                // install is complete by construction
                                // (PIT records are singleton chunks).
                                let mut pit = ctx.pit.clone();
                                decode_one(&f, scratch, &mut pit, header, body)
                            },
                            |_e| Decoded::corrupt_tail(),
                        )))
                    }
                };
                let mut dump = OpenDump {
                    last_ts: meta.interval_start,
                    meta,
                    source,
                    input: Some(input),
                    pit: None,
                    pending: None,
                    produced: 0,
                    finished: false,
                };
                dump.pending = dump.read_one(filters, scratch);
                dump
            }
            Err(e) => {
                // "libBGPStream marks a record as not-valid when the
                // BGP dump file cannot be opened": one synthetic
                // record carries the error.
                let _ = e;
                let rec = BgpStreamRecord {
                    source,
                    dump_time: meta.interval_start,
                    timestamp: meta.interval_start,
                    position: DumpPosition::Only,
                    status: RecordStatus::CorruptedSource,
                    elems_vec: Vec::new(),
                };
                OpenDump {
                    last_ts: meta.interval_start,
                    meta,
                    source,
                    input: None,
                    pit: None,
                    pending: Some(rec),
                    produced: 0,
                    finished: true,
                }
            }
        }
    }

    /// Apply dump-level state to one decode result: the last-delivered
    /// timestamp clamp (and placeholder stamping) plus termination.
    /// Shared by both modes so their envelope sequences stay
    /// byte-identical.
    fn finish_step(&mut self, step: Step<Decoded>) -> BgpStreamRecord {
        let (d, terminal) = match step {
            Step::Item(d) => (d, false),
            Step::Terminal(d) => (d, true),
        };
        if terminal {
            self.finished = true;
        }
        let ts = if d.stamp_with_last {
            // Stamp the placeholder with the last timestamp this
            // dump delivered — not `interval_start`, which can lie
            // before records already emitted and would make the
            // merged stream go backwards in time.
            self.last_ts
        } else {
            self.last_ts = self.last_ts.max(d.ts);
            d.ts
        };
        BgpStreamRecord {
            source: self.source,
            dump_time: self.meta.interval_start,
            timestamp: ts,
            position: DumpPosition::Middle,
            status: d.status,
            elems_vec: d.elems,
        }
    }

    /// Read and annotate the next raw record (position fixed up later).
    fn read_one(
        &mut self,
        filters: &CompiledFilters,
        scratch: &mut Vec<BgpStreamElem>,
    ) -> Option<BgpStreamRecord> {
        let step = match self.input.as_mut()? {
            DumpSource::Seq(reader) => match reader.next_raw() {
                None => {
                    self.finished = true;
                    return None;
                }
                Some(Err(_)) => Step::Terminal(Decoded::corrupt_tail()),
                // `raw` keeps a loan on `self.input` alive; decode_one
                // only needs the *other* fields (pit) plus externals.
                Some(Ok(raw)) => decode_one(filters, scratch, &mut self.pit, &raw.header, raw.body),
            },
            DumpSource::Par(dec) => match dec.next() {
                None => {
                    self.finished = true;
                    return None;
                }
                Some(d) if d.stamp_with_last => Step::Terminal(d),
                Some(d) => Step::Item(d),
            },
        };
        Some(self.finish_step(step))
    }

    /// Produce the next record with final position annotation.
    fn next(
        &mut self,
        filters: &CompiledFilters,
        scratch: &mut Vec<BgpStreamElem>,
    ) -> Option<BgpStreamRecord> {
        let mut rec = self.pending.take()?;
        self.pending = if self.finished {
            None
        } else {
            self.read_one(filters, scratch)
        };
        let first = self.produced == 0;
        let last = self.pending.is_none();
        rec.position = match (first, last) {
            (true, true) => DumpPosition::Only,
            (true, false) => DumpPosition::Start,
            (false, true) => DumpPosition::End,
            (false, false) => DumpPosition::Middle,
        };
        self.produced += 1;
        Some(rec)
    }

    /// Timestamp of the next record (for heap ordering).
    fn head_timestamp(&self) -> Option<u64> {
        self.pending.as_ref().map(|r| r.timestamp)
    }
}

/// Heap key: (timestamp, source rank) — min-heap via reversed Ord.
///
/// `rank` is the dump's position in the lexicographic
/// (project, collector, dump type) order of its group, computed once
/// at open time, so equal-timestamp ties break exactly as the old
/// string-tuple comparison did — without any per-push allocation.
#[derive(Clone, Copy)]
struct HeapEntry {
    ts: u64,
    rank: u32,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the oldest first.
        (other.ts, other.rank, other.slot).cmp(&(self.ts, self.rank, self.slot))
    }
}

/// Multi-way merge over one overlap group: all files open at once,
/// repeatedly yielding the record with the smallest timestamp.
///
/// Carries the stream's [`CompiledFilters`] (compiled once at stream
/// start) and one scratch elem buffer shared by every open dump, so
/// the filtered read path allocates nothing per rejected record.
pub struct GroupMerger {
    dumps: Vec<OpenDump>,
    heap: BinaryHeap<HeapEntry>,
    /// `ranks[slot]`: lexicographic tiebreak rank of that dump.
    ranks: Vec<u32>,
    filters: Arc<CompiledFilters>,
    /// Decode mode every dump of this merge opens with (admitted
    /// stragglers included).
    mode: DecodeMode,
    /// Reusable elem extraction buffer (see [`extract_into`]).
    scratch: Vec<BgpStreamElem>,
}

impl GroupMerger {
    /// Open every file of the group and prime the heap, decoding
    /// sequentially. See [`GroupMerger::open_with`] for parallel
    /// decode.
    pub fn open(group: Vec<DumpMeta>, filters: Arc<CompiledFilters>) -> Self {
        Self::open_with(group, filters, DecodeMode::Sequential)
    }

    /// Open every file of the group under the given [`DecodeMode`] and
    /// prime the heap. Both modes deliver byte-identical record
    /// sequences; `Parallel` spends one worker pool per open dump to
    /// overlap record decoding with the merge.
    pub fn open_with(
        group: Vec<DumpMeta>,
        filters: Arc<CompiledFilters>,
        mode: DecodeMode,
    ) -> Self {
        let mut scratch = Vec::new();
        let dumps: Vec<OpenDump> = group
            .into_iter()
            .map(|m| OpenDump::open(m, &filters, &mut scratch, mode))
            .collect();
        // Integer tiebreaks: rank slots by (project, collector, type)
        // once, so the heap never compares (or clones) strings.
        let mut order: Vec<usize> = (0..dumps.len()).collect();
        order.sort_by(|&a, &b| {
            let (ma, mb) = (&dumps[a].meta, &dumps[b].meta);
            (&ma.project, &ma.collector, ma.dump_type as u8).cmp(&(
                &mb.project,
                &mb.collector,
                mb.dump_type as u8,
            ))
        });
        let mut ranks = vec![0u32; dumps.len()];
        for (rank, &slot) in order.iter().enumerate() {
            ranks[slot] = rank as u32;
        }
        let mut heap = BinaryHeap::with_capacity(dumps.len());
        for (slot, d) in dumps.iter().enumerate() {
            if let Some(ts) = d.head_timestamp() {
                heap.push(HeapEntry {
                    ts,
                    rank: ranks[slot],
                    slot: slot as u32,
                });
            }
        }
        GroupMerger {
            dumps,
            heap,
            ranks,
            filters,
            mode,
            scratch,
        }
    }

    /// Number of simultaneously open files.
    pub fn width(&self) -> usize {
        self.dumps.len()
    }

    /// Admit a newly published dump into the running merge (live mode:
    /// a straggler that surfaced behind the broker cursor while this
    /// group drains). The dump is opened and its head joins the heap;
    /// records older than what the merge already delivered surface
    /// next and are re-stamped by the stream's live monotonic clamp —
    /// the same machinery that keeps corrupted-read placeholders from
    /// moving time backwards. Ties against existing dumps break after
    /// them (the admitted dump gets the next rank), so admission never
    /// perturbs the relative order of records already queued.
    pub fn admit(&mut self, meta: DumpMeta) {
        let slot = self.dumps.len();
        let rank = self.ranks.iter().copied().max().map_or(0, |r| r + 1);
        let dump = OpenDump::open(meta, &self.filters, &mut self.scratch, self.mode);
        self.ranks.push(rank);
        if let Some(ts) = dump.head_timestamp() {
            self.heap.push(HeapEntry {
                ts,
                rank,
                slot: slot as u32,
            });
        }
        self.dumps.push(dump);
    }

    /// Whether another record is ready without further file reads
    /// being required to know so (the heap holds a primed head).
    pub fn has_next(&self) -> bool {
        !self.heap.is_empty()
    }

    /// The next record in timestamp order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<BgpStreamRecord> {
        let entry = self.heap.pop()?;
        let dump = &mut self.dumps[entry.slot as usize];
        let rec = dump.next(&self.filters, &mut self.scratch)?;
        if let Some(ts) = dump.head_timestamp() {
            self.heap.push(HeapEntry {
                ts,
                rank: self.ranks[entry.slot as usize],
                slot: entry.slot,
            });
        }
        Some(rec)
    }
}

/// Convenience: read one local MRT file (no merge) into records —
/// used by tests and the SingleFile interface path.
pub fn read_single_file(meta: DumpMeta, filters: &Filters) -> Vec<BgpStreamRecord> {
    read_single_file_with(meta, filters, DecodeMode::Sequential)
}

/// [`read_single_file`] under an explicit [`DecodeMode`].
pub fn read_single_file_with(
    meta: DumpMeta,
    filters: &Filters,
    mode: DecodeMode,
) -> Vec<BgpStreamRecord> {
    let filters = Arc::new(filters.compile());
    let mut merger = GroupMerger::open_with(vec![meta], filters, mode);
    let mut out = Vec::new();
    while let Some(r) = merger.next() {
        out.push(r);
    }
    out
}

/// Check that a path exists and looks like MRT (cheap sanity helper
/// for tools): peek the 12-byte common header — decompressing it
/// first if the file is gzip-compressed — and require a known record
/// type and a sane body length, so arbitrary non-empty files are not
/// misclassified.
pub fn looks_like_mrt(path: &std::path::Path) -> bool {
    let Ok(mut r) = ChunkedReader::open(path) else {
        return false;
    };
    let Ok(Some(header)) = r.peek_header() else {
        return false;
    };
    // RFC 6396 §4 type registry: OSPFv2(11), TABLE_DUMP(12),
    // TABLE_DUMP_V2(13), BGP4MP(16), BGP4MP_ET(17), ISIS(32/33),
    // OSPFv3(48/49).
    let known_type = matches!(
        header.mrt_type,
        MrtType::TableDumpV2 | MrtType::Bgp4mp | MrtType::Other(11 | 12 | 17 | 32 | 33 | 48 | 49)
    );
    known_type && header.length <= mrt::reader::MAX_RECORD_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use broker::DumpType;
    use std::path::PathBuf;

    fn meta(collector: &str, ty: DumpType, start: u64, dur: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: collector.into(),
            dump_type: ty,
            interval_start: start,
            duration: dur,
            path: PathBuf::from("/nonexistent"),
            available_at: 0,
            size: 0,
        }
    }

    #[test]
    fn figure3_partition() {
        // The Figure 3 scenario: RRC01 (5-min updates + one RIB) and
        // RV2 (15-min updates). Updates files 00:00–00:15 overlap each
        // other transitively; the RIB at 00:20 with zero duration plus
        // the files covering it join the second group.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rv2", DumpType::Updates, 0, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn disjoint_windows_split() {
        let files = vec![
            meta("rv2", DumpType::Updates, 0, 450), // overlaps the next
            meta("rrc01", DumpType::Updates, 300, 300),
            // Gap: nothing covers (600, 1000).
            meta("rrc01", DumpType::Updates, 1000, 300),
            meta("rv2", DumpType::Updates, 1100, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn rib_snapshot_joins_covering_group() {
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Rib, 120, 0),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn empty_input_no_groups() {
        assert!(partition_overlap_groups(&[]).is_empty());
    }

    #[test]
    fn adjacent_intervals_stay_disjoint() {
        // interval_end == next start: half-open intervals do not
        // overlap; no merge needed between consecutive windows.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
        ];
        assert_eq!(partition_overlap_groups(&files).len(), 2);
    }

    #[test]
    fn figure3_thirty_minutes_two_disjoint_sets() {
        // The Figure 3 scenario: 30 minutes (10 files) of data from
        // RRC01 (5-min updates, midnight RIB with rows spreading
        // ~9 min) and RV2 (15-min updates, midnight RIB). The files
        // split into two disjoint sets of 6 and 4, exactly as in the
        // paper's example.
        let files = vec![
            meta("rrc01", DumpType::Updates, 0, 300),
            meta("rrc01", DumpType::Updates, 300, 300),
            meta("rrc01", DumpType::Updates, 600, 300),
            meta("rrc01", DumpType::Rib, 0, 540),
            meta("rv2", DumpType::Rib, 0, 600),
            meta("rv2", DumpType::Updates, 0, 900),
            // Second quarter-hour: nothing bridges across 900.
            meta("rrc01", DumpType::Updates, 900, 300),
            meta("rrc01", DumpType::Updates, 1200, 300),
            meta("rrc01", DumpType::Updates, 1500, 300),
            meta("rv2", DumpType::Updates, 900, 900),
        ];
        let groups = partition_overlap_groups(&files);
        assert_eq!(groups.len(), 2, "{groups:#?}");
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 4);
    }

    #[test]
    fn missing_file_yields_corrupt_source_record() {
        let m = meta("rrc01", DumpType::Updates, 0, 300);
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, RecordStatus::CorruptedSource);
        assert_eq!(recs[0].position, DumpPosition::Only);
    }

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "bgpstream-sort-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn keepalive(ts: u32) -> mrt::MrtRecord {
        mrt::MrtRecord::bgp4mp(
            ts,
            mrt::Bgp4mp::Message {
                peer_asn: bgp_types::Asn(65001),
                local_asn: bgp_types::Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: bgp_types::BgpMessage::Keepalive,
            },
        )
    }

    fn encode(records: &[mrt::MrtRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = mrt::MrtWriter::new(&mut buf);
        for r in records {
            w.write(r).unwrap();
        }
        buf
    }

    #[test]
    fn corrupted_record_placeholder_keeps_time_monotonic() {
        // Regression: the placeholder for a corrupted read used to be
        // stamped with `interval_start` (here 0), jumping the stream
        // back in time after records at 500 and 600 were delivered.
        let dir = scratch("corrupt");
        let path = dir.join("u.mrt");
        let mut bytes = encode(&[keepalive(500), keepalive(600)]);
        bytes.extend_from_slice(&[0xFF; 7]); // truncated garbage tail
        std::fs::write(&path, &bytes).unwrap();
        let m = DumpMeta {
            path,
            ..meta("rrc01", DumpType::Updates, 0, 900)
        };
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].status, RecordStatus::CorruptedRecord);
        assert_eq!(
            recs[2].timestamp, 600,
            "placeholder must carry the last delivered timestamp"
        );
        assert!(
            recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "timestamps must be non-decreasing: {:?}",
            recs.iter().map(|r| r.timestamp).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_dump_head_placeholder_uses_interval_start() {
        // A dump that is garbage from the first byte has delivered
        // nothing; its placeholder falls back to `interval_start`.
        let dir = scratch("corrupt-head");
        let path = dir.join("u.mrt");
        std::fs::write(&path, [0xFFu8; 7]).unwrap();
        let m = DumpMeta {
            path,
            ..meta("rrc01", DumpType::Updates, 450, 300)
        };
        let recs = read_single_file(m, &Filters::none());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].status, RecordStatus::CorruptedRecord);
        assert_eq!(recs[0].timestamp, 450);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admitted_dump_joins_the_running_merge() {
        let dir = scratch("admit");
        let a = dir.join("a.mrt");
        std::fs::write(&a, encode(&[keepalive(100), keepalive(400)])).unwrap();
        let b = dir.join("b.mrt");
        std::fs::write(&b, encode(&[keepalive(200), keepalive(300)])).unwrap();
        let ma = DumpMeta {
            path: a,
            ..meta("rrc01", DumpType::Updates, 0, 900)
        };
        let mb = DumpMeta {
            path: b,
            ..meta("rv2", DumpType::Updates, 0, 900)
        };
        let mut merger = GroupMerger::open(vec![ma], Arc::new(Filters::none().compile()));
        // Drain one record, then admit the second dump mid-merge: its
        // still-future records interleave in timestamp order.
        let first = merger.next().unwrap();
        assert_eq!(first.timestamp, 100);
        merger.admit(mb);
        assert_eq!(merger.width(), 2);
        let rest: Vec<u64> = std::iter::from_fn(|| merger.next().map(|r| r.timestamp)).collect();
        assert_eq!(rest, vec![200, 300, 400]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn looks_like_mrt_peeks_header() {
        let dir = scratch("sniff");
        // Real MRT: accepted.
        let good = dir.join("good.mrt");
        std::fs::write(&good, encode(&[keepalive(1)])).unwrap();
        assert!(looks_like_mrt(&good));
        // Arbitrary text used to pass the old "non-empty" check.
        let text = dir.join("notes.txt");
        std::fs::write(&text, "hello world, definitely not MRT data").unwrap();
        assert!(!looks_like_mrt(&text));
        // Empty, too-short, and missing files are rejected.
        let empty = dir.join("empty");
        std::fs::write(&empty, b"").unwrap();
        assert!(!looks_like_mrt(&empty));
        let short = dir.join("short");
        std::fs::write(&short, [0u8; 5]).unwrap();
        assert!(!looks_like_mrt(&short));
        assert!(!looks_like_mrt(&dir.join("nonexistent")));
        // A known type with an insane length field is rejected.
        let oversized = dir.join("oversized");
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&1u32.to_be_bytes()); // timestamp
        hdr.extend_from_slice(&16u16.to_be_bytes()); // BGP4MP
        hdr.extend_from_slice(&4u16.to_be_bytes()); // subtype
        hdr.extend_from_slice(&(64u32 << 20).to_be_bytes()); // 64 MiB body
        std::fs::write(&oversized, &hdr).unwrap();
        assert!(!looks_like_mrt(&oversized));
        std::fs::remove_dir_all(&dir).ok();
    }
}
