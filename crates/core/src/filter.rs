//! Elem-level stream filters.
//!
//! Meta-data filters (project, collector, dump type, time) select
//! *files* and are pushed down into the broker query; the filters here
//! select *elems* within records: peer ASN, prefix (with the four
//! match modes of libBGPStream), communities (with wildcards, as used
//! by the RTBH case study to match any `*:666`), and elem type.

use std::collections::HashSet;

use bgp_types::trie::PrefixMatch;
use bgp_types::{Asn, Prefix};

use crate::aspath_re::AsPathRegex;
use crate::elem::{BgpStreamElem, ElemType};

/// Address-family constraint (`ipversion` filter term).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IpVersion {
    /// IPv4 prefixes only.
    V4,
    /// IPv6 prefixes only.
    V6,
}

impl IpVersion {
    fn admits(self, p: &Prefix) -> bool {
        match self {
            IpVersion::V4 => p.is_ipv4(),
            IpVersion::V6 => !p.is_ipv4(),
        }
    }
}

/// A community filter with optional wildcards on either half: e.g.
/// `(None, Some(666))` matches any black-holing community `*:666`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommunityFilter {
    /// Required AS identifier half; `None` = any.
    pub asn: Option<u16>,
    /// Required value half; `None` = any.
    pub value: Option<u16>,
}

impl CommunityFilter {
    /// Match any community whose value half is `value`.
    pub fn any_asn(value: u16) -> Self {
        CommunityFilter {
            asn: None,
            value: Some(value),
        }
    }

    /// Match an exact `asn:value` community.
    pub fn exact(asn: u16, value: u16) -> Self {
        CommunityFilter {
            asn: Some(asn),
            value: Some(value),
        }
    }

    /// Whether one community matches.
    pub fn matches(&self, c: &bgp_types::Community) -> bool {
        self.asn.is_none_or(|a| a == c.asn) && self.value.is_none_or(|v| v == c.value)
    }
}

/// The elem-level filter set. Empty collections mean "no constraint".
#[derive(Clone, Debug, Default)]
pub struct Filters {
    /// Accepted VP AS numbers.
    pub peer_asns: HashSet<Asn>,
    /// Prefix constraints (an elem passes if it matches *any*).
    pub prefixes: Vec<(Prefix, PrefixMatch)>,
    /// Community constraints (an elem passes if any community matches
    /// any filter). Elems without communities fail when this is
    /// non-empty.
    pub communities: Vec<CommunityFilter>,
    /// Accepted elem types.
    pub elem_types: HashSet<ElemType>,
    /// AS-path regex constraints (an elem passes if its path matches
    /// *any* pattern). Like community filters, withdrawals and state
    /// messages are exempt — they carry no path.
    pub as_paths: Vec<AsPathRegex>,
    /// Address-family constraint on the prefix.
    pub ip_version: Option<IpVersion>,
}

impl Filters {
    /// No constraints: everything passes.
    pub fn none() -> Self {
        Filters::default()
    }

    /// True when no constraint is configured, i.e. [`Filters::matches`]
    /// would accept every elem. Lets hot paths skip per-elem checks.
    pub fn is_pass_all(&self) -> bool {
        // Exhaustive destructuring: adding a Filters field without
        // deciding its pass-all semantics must not compile.
        let Filters {
            peer_asns,
            prefixes,
            communities,
            elem_types,
            as_paths,
            ip_version,
        } = self;
        peer_asns.is_empty()
            && prefixes.is_empty()
            && communities.is_empty()
            && elem_types.is_empty()
            && as_paths.is_empty()
            && ip_version.is_none()
    }

    /// Whether an elem passes all configured constraints.
    ///
    /// Withdrawals and state messages carry no communities or paths;
    /// they are exempt from community filters *if* they pass the
    /// prefix filter (withdrawals) — matching libBGPStream, which
    /// keeps withdrawal visibility when filtering on announcements'
    /// attributes would otherwise hide route removal.
    pub fn matches(&self, elem: &BgpStreamElem) -> bool {
        if !self.elem_types.is_empty() && !self.elem_types.contains(&elem.elem_type) {
            return false;
        }
        if !self.peer_asns.is_empty() && !self.peer_asns.contains(&elem.peer_asn) {
            return false;
        }
        if !self.prefixes.is_empty() {
            let Some(p) = &elem.prefix else {
                // Prefix filters exclude prefix-less elems (state msgs)
                // only when the filter is the sole way to scope the
                // stream; state messages always pass prefix filters.
                return elem.elem_type == ElemType::PeerState && self.passes_non_prefix(elem);
            };
            let hit = self.prefixes.iter().any(|(f, mode)| match mode {
                PrefixMatch::Exact => f == p,
                PrefixMatch::MoreSpecific => f.contains(p),
                PrefixMatch::LessSpecific => p.contains(f),
                PrefixMatch::Any => f.overlaps(p),
            });
            if !hit {
                return false;
            }
        }
        if !self.communities.is_empty() {
            match (&elem.communities, elem.elem_type) {
                // Withdrawals pass community filters (no attributes to
                // test) so that black-holed-prefix withdrawals remain
                // visible (§4.3 second stream).
                (_, ElemType::Withdrawal) | (_, ElemType::PeerState) => {}
                (Some(cs), _) => {
                    let hit = cs
                        .iter()
                        .any(|c| self.communities.iter().any(|f| f.matches(c)));
                    if !hit {
                        return false;
                    }
                }
                (None, _) => return false,
            }
        }
        if !self.as_paths.is_empty() {
            match (&elem.as_path, elem.elem_type) {
                // Same exemption rationale as community filters.
                (_, ElemType::Withdrawal) | (_, ElemType::PeerState) => {}
                (Some(path), _) => {
                    if !self.as_paths.iter().any(|r| r.matches_path(path)) {
                        return false;
                    }
                }
                (None, _) => return false,
            }
        }
        if let Some(v) = self.ip_version {
            // Prefix-less elems (state messages) are family-agnostic.
            if let Some(p) = &elem.prefix {
                if !v.admits(p) {
                    return false;
                }
            }
        }
        true
    }

    fn passes_non_prefix(&self, elem: &BgpStreamElem) -> bool {
        self.peer_asns.is_empty() || self.peer_asns.contains(&elem.peer_asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Community, CommunitySet, SessionState};
    use std::net::IpAddr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(prefix: &str, comms: &[(u16, u16)]) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 0,
            peer_address: "192.0.2.1".parse::<IpAddr>().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some(p(prefix)),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 137])),
            communities: Some(CommunitySet::from_iter(
                comms.iter().map(|&(a, v)| Community::new(a, v)),
            )),
            old_state: None,
            new_state: None,
        }
    }

    fn withdrawal(prefix: &str) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            prefix: Some(p(prefix)),
            next_hop: None,
            as_path: None,
            communities: None,
            ..announce(prefix, &[])
        }
    }

    fn state_msg() -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::PeerState,
            prefix: None,
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: Some(SessionState::Established),
            new_state: Some(SessionState::Idle),
            ..announce("10.0.0.0/8", &[])
        }
    }

    #[test]
    fn empty_filters_pass_everything() {
        let f = Filters::none();
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(f.matches(&state_msg()));
    }

    #[test]
    fn peer_filter() {
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        f.peer_asns.clear();
        f.peer_asns.insert(Asn(9));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn prefix_modes() {
        let mut f = Filters::none();
        f.prefixes
            .push((p("192.0.0.0/8"), PrefixMatch::MoreSpecific));
        // bgpreader -k 192.0.0.0/8: subprefixes match.
        assert!(f.matches(&announce("192.168.0.0/16", &[])));
        assert!(f.matches(&announce("192.0.0.0/8", &[])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));

        let mut f = Filters::none();
        f.prefixes
            .push((p("192.168.1.0/24"), PrefixMatch::LessSpecific));
        assert!(f.matches(&announce("192.168.0.0/16", &[])));
        assert!(!f.matches(&announce("192.168.2.0/24", &[])));

        let mut f = Filters::none();
        f.prefixes.push((p("192.168.1.0/24"), PrefixMatch::Exact));
        assert!(f.matches(&announce("192.168.1.0/24", &[])));
        assert!(!f.matches(&announce("192.168.1.0/25", &[])));
    }

    #[test]
    fn community_wildcard_matches_blackholes() {
        let mut f = Filters::none();
        f.communities.push(CommunityFilter::any_asn(666));
        assert!(f.matches(&announce("10.0.0.0/8", &[(3356, 666)])));
        assert!(f.matches(&announce("10.0.0.0/8", &[(174, 666), (1, 2)])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[(3356, 100)])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn community_filter_lets_withdrawals_through() {
        let mut f = Filters::none();
        f.communities.push(CommunityFilter::any_asn(666));
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
    }

    #[test]
    fn elem_type_filter() {
        let mut f = Filters::none();
        f.elem_types.insert(ElemType::Withdrawal);
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn state_messages_pass_prefix_filters() {
        let mut f = Filters::none();
        f.prefixes
            .push((p("10.0.0.0/8"), PrefixMatch::MoreSpecific));
        assert!(f.matches(&state_msg()));
        // But not when a peer filter excludes them.
        f.peer_asns.insert(Asn(42));
        assert!(!f.matches(&state_msg()));
    }

    #[test]
    fn aspath_filter_matches_paths() {
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("_137$").unwrap());
        assert!(f.matches(&announce("10.0.0.0/8", &[]))); // path ends in 137
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("^9 *").unwrap());
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn aspath_filter_exempts_withdrawals_and_state() {
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("_99999_").unwrap());
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(f.matches(&state_msg()));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn ip_version_filter() {
        let mut f = Filters::none();
        f.ip_version = Some(IpVersion::V4);
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        let mut v6 = announce("10.0.0.0/8", &[]);
        v6.prefix = Some("2001:db8::/32".parse().unwrap());
        assert!(!f.matches(&v6));
        f.ip_version = Some(IpVersion::V6);
        assert!(f.matches(&v6));
        // State messages carry no prefix: family-agnostic.
        assert!(f.matches(&state_msg()));
    }

    #[test]
    fn combined_filters_are_conjunctive() {
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        f.prefixes
            .push((p("192.0.0.0/8"), PrefixMatch::MoreSpecific));
        f.communities.push(CommunityFilter::exact(3356, 666));
        assert!(f.matches(&announce("192.0.2.0/24", &[(3356, 666)])));
        assert!(!f.matches(&announce("192.0.2.0/24", &[(174, 666)])));
        assert!(!f.matches(&announce("10.0.2.0/24", &[(3356, 666)])));
    }
}
