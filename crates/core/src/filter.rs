//! Elem-level stream filters and their compiled, pushdown-ready form.
//!
//! Meta-data filters (project, collector, dump type, time) select
//! *files* and are pushed down into the broker query; the filters here
//! select *elems* within records: peer ASN, prefix (with the four
//! match modes of libBGPStream), communities (with wildcards, as used
//! by the RTBH case study to match any `*:666`), and elem type.
//!
//! [`Filters`] is the configuration-phase structure (cheap to build
//! and mutate); [`Filters::compile`] turns it into a
//! [`CompiledFilters`] for the reading phase: prefix constraints move
//! into a [`PrefixTrie`] (O(prefix length) membership instead of a
//! linear scan), peer/type sets become Fx-hashed lookups, and
//! [`CompiledFilters::record_may_match`] can reject a whole MRT record
//! from its [`RawMrtView`] — *before* the record body is decoded.

use bgp_types::trie::{PrefixMatch, PrefixTrie};
use bgp_types::{Asn, Community, Prefix};
use fxhash::FxHashSet;
use mrt::raw::{any_community_in_attrs, RawMrtView, RawRibRow, RawUpdate, ScanVerdict};
use mrt::PeerIndexTable;

use crate::aspath_re::AsPathRegex;
use crate::elem::{BgpStreamElem, ElemType};

/// Address-family constraint (`ipversion` filter term).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IpVersion {
    /// IPv4 prefixes only.
    V4,
    /// IPv6 prefixes only.
    V6,
}

impl IpVersion {
    fn admits(self, p: &Prefix) -> bool {
        match self {
            IpVersion::V4 => p.is_ipv4(),
            IpVersion::V6 => !p.is_ipv4(),
        }
    }
}

/// A community filter with optional wildcards on either half: e.g.
/// `(None, Some(666))` matches any black-holing community `*:666`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommunityFilter {
    /// Required AS identifier half; `None` = any.
    pub asn: Option<u16>,
    /// Required value half; `None` = any.
    pub value: Option<u16>,
}

impl CommunityFilter {
    /// Match any community whose value half is `value`.
    pub fn any_asn(value: u16) -> Self {
        CommunityFilter {
            asn: None,
            value: Some(value),
        }
    }

    /// Match an exact `asn:value` community.
    pub fn exact(asn: u16, value: u16) -> Self {
        CommunityFilter {
            asn: Some(asn),
            value: Some(value),
        }
    }

    /// Whether one community matches.
    pub fn matches(&self, c: &bgp_types::Community) -> bool {
        self.asn.is_none_or(|a| a == c.asn) && self.value.is_none_or(|v| v == c.value)
    }
}

/// The elem-level filter set. Empty collections mean "no constraint".
#[derive(Clone, Debug, Default)]
pub struct Filters {
    /// Accepted VP AS numbers.
    pub peer_asns: FxHashSet<Asn>,
    /// Prefix constraints (an elem passes if it matches *any*).
    pub prefixes: Vec<(Prefix, PrefixMatch)>,
    /// Community constraints (an elem passes if any community matches
    /// any filter). Elems without communities fail when this is
    /// non-empty.
    pub communities: Vec<CommunityFilter>,
    /// Accepted elem types.
    pub elem_types: FxHashSet<ElemType>,
    /// AS-path regex constraints (an elem passes if its path matches
    /// *any* pattern). Like community filters, withdrawals and state
    /// messages are exempt — they carry no path.
    pub as_paths: Vec<AsPathRegex>,
    /// Address-family constraint on the prefix.
    pub ip_version: Option<IpVersion>,
}

impl Filters {
    /// No constraints: everything passes.
    pub fn none() -> Self {
        Filters::default()
    }

    /// True when no constraint is configured, i.e. [`Filters::matches`]
    /// would accept every elem. Lets hot paths skip per-elem checks.
    pub fn is_pass_all(&self) -> bool {
        // Exhaustive destructuring: adding a Filters field without
        // deciding its pass-all semantics must not compile.
        let Filters {
            peer_asns,
            prefixes,
            communities,
            elem_types,
            as_paths,
            ip_version,
        } = self;
        peer_asns.is_empty()
            && prefixes.is_empty()
            && communities.is_empty()
            && elem_types.is_empty()
            && as_paths.is_empty()
            && ip_version.is_none()
    }

    /// Whether an elem passes all configured constraints.
    ///
    /// Withdrawals and state messages carry no communities or paths;
    /// they are exempt from community filters *if* they pass the
    /// prefix filter (withdrawals) — matching libBGPStream, which
    /// keeps withdrawal visibility when filtering on announcements'
    /// attributes would otherwise hide route removal.
    pub fn matches(&self, elem: &BgpStreamElem) -> bool {
        if !self.elem_types.is_empty() && !self.elem_types.contains(&elem.elem_type) {
            return false;
        }
        if !self.peer_asns.is_empty() && !self.peer_asns.contains(&elem.peer_asn) {
            return false;
        }
        if !self.prefixes.is_empty() {
            let Some(p) = &elem.prefix else {
                // Prefix filters exclude prefix-less elems (state msgs)
                // only when the filter is the sole way to scope the
                // stream; state messages always pass prefix filters.
                return elem.elem_type == ElemType::PeerState && self.passes_non_prefix(elem);
            };
            let hit = self.prefixes.iter().any(|(f, mode)| match mode {
                PrefixMatch::Exact => f == p,
                PrefixMatch::MoreSpecific => f.contains(p),
                PrefixMatch::LessSpecific => p.contains(f),
                PrefixMatch::Any => f.overlaps(p),
            });
            if !hit {
                return false;
            }
        }
        content_filters_pass(&self.communities, &self.as_paths, self.ip_version, elem)
    }

    fn passes_non_prefix(&self, elem: &BgpStreamElem) -> bool {
        self.peer_asns.is_empty() || self.peer_asns.contains(&elem.peer_asn)
    }

    /// Compile the filter set for the reading phase.
    ///
    /// The compiled form answers exactly the same per-elem question as
    /// [`Filters::matches`] (property-tested), but with the prefix
    /// constraints in a trie and the sets Fx-hashed — and it adds the
    /// record-level [`CompiledFilters::record_may_match`] prefilter
    /// the lazy-decode path pushes down below elem extraction.
    pub fn compile(&self) -> CompiledFilters {
        let prefixes = if self.prefixes.is_empty() {
            None
        } else {
            let mut trie: PrefixTrie<u8> = PrefixTrie::new();
            let mut want_covered_by = false;
            for (p, mode) in &self.prefixes {
                let bit = match mode {
                    PrefixMatch::Exact => MODE_EXACT,
                    PrefixMatch::MoreSpecific => MODE_MORE,
                    PrefixMatch::LessSpecific => MODE_LESS,
                    PrefixMatch::Any => MODE_ANY,
                };
                want_covered_by |= bit & (MODE_LESS | MODE_ANY) != 0;
                if let Some(mask) = trie.get_mut(p) {
                    *mask |= bit;
                } else {
                    trie.insert(*p, bit);
                }
            }
            Some(CompiledPrefixes {
                trie,
                want_covered_by,
            })
        };
        CompiledFilters {
            pass_all: self.is_pass_all(),
            peer_asns: self.peer_asns.clone(),
            elem_type_mask: if self.elem_types.is_empty() {
                TYPE_MASK_ALL
            } else {
                self.elem_types.iter().fold(0, |m, t| m | type_bit(*t))
            },
            prefixes,
            communities: self.communities.clone(),
            as_paths: self.as_paths.clone(),
            ip_version: self.ip_version,
        }
    }
}

/// The attribute-content tail shared verbatim by [`Filters::matches`]
/// and [`CompiledFilters::matches`]: community, AS-path and
/// address-family constraints, with the withdrawal/state-message
/// exemptions (withdrawals carry no attributes to test, and hiding
/// them would hide route removal — §4.3's second stream; prefix-less
/// state messages are family-agnostic).
fn content_filters_pass(
    communities: &[CommunityFilter],
    as_paths: &[AsPathRegex],
    ip_version: Option<IpVersion>,
    elem: &BgpStreamElem,
) -> bool {
    if !communities.is_empty() {
        match (&elem.communities, elem.elem_type) {
            (_, ElemType::Withdrawal) | (_, ElemType::PeerState) => {}
            (Some(cs), _) => {
                let hit = cs.iter().any(|c| communities.iter().any(|f| f.matches(c)));
                if !hit {
                    return false;
                }
            }
            (None, _) => return false,
        }
    }
    if !as_paths.is_empty() {
        match (&elem.as_path, elem.elem_type) {
            (_, ElemType::Withdrawal) | (_, ElemType::PeerState) => {}
            (Some(path), _) => {
                if !as_paths.iter().any(|r| r.matches_path(path)) {
                    return false;
                }
            }
            (None, _) => return false,
        }
    }
    if let Some(v) = ip_version {
        if let Some(p) = &elem.prefix {
            if !v.admits(p) {
                return false;
            }
        }
    }
    true
}

const MODE_EXACT: u8 = 1 << 0;
const MODE_MORE: u8 = 1 << 1;
const MODE_LESS: u8 = 1 << 2;
const MODE_ANY: u8 = 1 << 3;

const TYPE_MASK_ALL: u8 = 0b1111;

fn type_bit(t: ElemType) -> u8 {
    match t {
        ElemType::RibEntry => 1 << 0,
        ElemType::Announcement => 1 << 1,
        ElemType::Withdrawal => 1 << 2,
        ElemType::PeerState => 1 << 3,
    }
}

/// Prefix constraints compiled into one trie. Each stored prefix
/// carries the bitmask of match modes it was configured with, so a
/// single root-down walk answers `Exact`/`MoreSpecific`/`Any`
/// membership and one subtree probe (only when such modes exist)
/// answers `LessSpecific`/`Any`.
struct CompiledPrefixes {
    trie: PrefixTrie<u8>,
    /// Whether any `LessSpecific`/`Any` filter requires the
    /// covered-by subtree probe at all.
    want_covered_by: bool,
}

impl CompiledPrefixes {
    fn hit(&self, p: &Prefix) -> bool {
        if self.trie.any_covering(p, |stored, mask| {
            mask & (MODE_MORE | MODE_ANY) != 0 || (mask & MODE_EXACT != 0 && stored == p)
        }) {
            return true;
        }
        self.want_covered_by
            && self
                .trie
                .any_covered_by(p, |_, mask| mask & (MODE_LESS | MODE_ANY) != 0)
    }
}

/// The reading-phase form of [`Filters`]: same elem-level semantics,
/// faster data structures, plus the record-level pushdown predicate.
/// Build with [`Filters::compile`].
pub struct CompiledFilters {
    pass_all: bool,
    peer_asns: FxHashSet<Asn>,
    /// Accepted elem types as a bitmask ([`TYPE_MASK_ALL`] when the
    /// filter set leaves types unconstrained).
    elem_type_mask: u8,
    prefixes: Option<CompiledPrefixes>,
    communities: Vec<CommunityFilter>,
    as_paths: Vec<AsPathRegex>,
    ip_version: Option<IpVersion>,
}

impl CompiledFilters {
    /// True when the source filter set was pass-all:
    /// [`CompiledFilters::matches`] accepts every elem and
    /// [`CompiledFilters::record_may_match`] is a no-op that accepts
    /// every record.
    pub fn is_pass_all(&self) -> bool {
        self.pass_all
    }

    fn type_allowed(&self, t: ElemType) -> bool {
        self.elem_type_mask & type_bit(t) != 0
    }

    fn peer_allowed(&self, asn: Asn) -> bool {
        self.peer_asns.is_empty() || self.peer_asns.contains(&asn)
    }

    fn prefix_and_family_pass(&self, p: &Prefix) -> bool {
        (match &self.prefixes {
            None => true,
            Some(cp) => cp.hit(p),
        }) && self.ip_version.is_none_or(|v| v.admits(p))
    }

    /// Whether an elem passes — identical in outcome to
    /// [`Filters::matches`] on the filter set this was compiled from.
    pub fn matches(&self, elem: &BgpStreamElem) -> bool {
        if !self.type_allowed(elem.elem_type) {
            return false;
        }
        if !self.peer_allowed(elem.peer_asn) {
            return false;
        }
        if let Some(cp) = &self.prefixes {
            let Some(p) = &elem.prefix else {
                // Same carve-out as `Filters::matches`: state messages
                // pass prefix filters (peer filter already checked).
                return elem.elem_type == ElemType::PeerState;
            };
            if !cp.hit(p) {
                return false;
            }
        }
        content_filters_pass(&self.communities, &self.as_paths, self.ip_version, elem)
    }

    /// The record-level pushdown predicate: may **any** elem of the
    /// record behind `view` pass [`CompiledFilters::matches`]?
    ///
    /// Sound by construction — it only returns `false` when the raw
    /// view proves no elem can pass; every uncertainty (unparseable
    /// section, absent peer index table, AS-path filters, which need
    /// the decoded path) resolves to `true`, sending the record to the
    /// full decode where the per-elem filters run as before. A
    /// pass-all filter set compiles to a prefilter that accepts
    /// everything without looking.
    ///
    /// Rejection additionally guarantees the record body would have
    /// *decoded cleanly* (the underlying
    /// [`RawUpdate::prefilter_scan`] / [`RawRibRow::prefilter_scan`]
    /// validate as they scan): skipping the decode can therefore
    /// never hide a corrupted read, a poisoned dump, or a
    /// missing-peer flag that the decode-then-filter path would have
    /// signalled.
    pub fn record_may_match(&self, view: &RawMrtView<'_>, pit: Option<&PeerIndexTable>) -> bool {
        if self.pass_all {
            return true;
        }
        match view {
            // The peer index table must always reach the decoder (RIB
            // rows need it); it produces no elems either way.
            RawMrtView::PeerIndexTable => true,
            // No elems can come out of these at all.
            RawMrtView::Unknown | RawMrtView::NonUpdateMessage => false,
            RawMrtView::StateChange { peer_asn } => {
                // State elems are exempt from prefix / community /
                // AS-path / family constraints (see `matches`).
                self.type_allowed(ElemType::PeerState) && self.peer_allowed(*peer_asn)
            }
            RawMrtView::Update(u) => self.update_may_match(u),
            RawMrtView::RibRow(r) => self.rib_row_may_match(r, pit),
        }
    }

    fn update_may_match(&self, u: &RawUpdate<'_>) -> bool {
        // One VP per update record, so the peer filter (like elem-type
        // gating) folds into the per-prefix predicates: when it
        // excludes the VP no prefix can accept, and the validating
        // scan below proves the reject is safe in the same pass.
        // Announcements share the update's single attribute set, so
        // the community constraint holds or fails for all of them at
        // once (the scan's `comm_gate`). AS-path filters need the
        // decoded path and stay post-decode (conservative accept).
        let peer_ok = self.peer_allowed(u.peer_asn);
        let w_allowed = peer_ok && self.type_allowed(ElemType::Withdrawal);
        let a_allowed = peer_ok && self.type_allowed(ElemType::Announcement);
        let mut wd_pred = |p: &Prefix| self.prefix_and_family_pass(p);
        let mut ann_pred = |p: &Prefix| self.prefix_and_family_pass(p);
        let mut comm_pred = |c: Community| self.communities.iter().any(|f| f.matches(&c));
        match u.prefilter_scan(
            // `None` = this elem kind can never pass (gated off): the
            // scan then validates those NLRI without building prefixes.
            w_allowed.then_some(&mut wd_pred as &mut dyn FnMut(&Prefix) -> bool),
            a_allowed.then_some(&mut ann_pred as &mut dyn FnMut(&Prefix) -> bool),
            // The gate only influences announcement acceptance, so
            // skip the per-community predicate work entirely when
            // announcements are gated off (verdict-identical: the
            // attribute bytes are still content-validated).
            (a_allowed && !self.communities.is_empty())
                .then_some(&mut comm_pred as &mut dyn FnMut(Community) -> bool),
        ) {
            ScanVerdict::Reject => false,
            ScanVerdict::Accept | ScanVerdict::Unsure => true,
        }
    }

    fn rib_row_may_match(&self, r: &RawRibRow<'_>, pit: Option<&PeerIndexTable>) -> bool {
        if r.entry_count() == 0 {
            // No entries: no elems, no missing-peer flag, and nothing
            // left for the decoder to validate beyond the framing the
            // view already checked.
            return false;
        }
        // Without the dump's peer table the decoder must run — it is
        // what flags the row not-valid (missing peer).
        let Some(pit) = pit else { return true };
        let row_ok =
            self.type_allowed(ElemType::RibEntry) && self.prefix_and_family_pass(&r.prefix);
        let need_peer = !self.peer_asns.is_empty();
        let need_comm = !self.communities.is_empty();
        match r.prefilter_scan(|peer_index, attrs| {
            let Some(peer) = pit.peers.get(peer_index as usize) else {
                // Out-of-range index: the full decode must run so the
                // record is flagged not-valid — regardless of what
                // the filters say about the row.
                return true;
            };
            if !row_ok {
                return false;
            }
            if need_peer && !self.peer_asns.contains(&peer.asn) {
                return false;
            }
            if need_comm {
                // Unlike withdrawals, RIB entries are subject to
                // community filters; scan this entry's raw attrs.
                return any_community_in_attrs(attrs, |c| {
                    self.communities.iter().any(|f| f.matches(&c))
                })
                .unwrap_or(true);
            }
            true
        }) {
            ScanVerdict::Reject => false,
            ScanVerdict::Accept | ScanVerdict::Unsure => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Community, CommunitySet, SessionState};
    use std::net::IpAddr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(prefix: &str, comms: &[(u16, u16)]) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 0,
            peer_address: "192.0.2.1".parse::<IpAddr>().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some(p(prefix)),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 137])),
            communities: Some(CommunitySet::from_iter(
                comms.iter().map(|&(a, v)| Community::new(a, v)),
            )),
            old_state: None,
            new_state: None,
        }
    }

    fn withdrawal(prefix: &str) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            prefix: Some(p(prefix)),
            next_hop: None,
            as_path: None,
            communities: None,
            ..announce(prefix, &[])
        }
    }

    fn state_msg() -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::PeerState,
            prefix: None,
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: Some(SessionState::Established),
            new_state: Some(SessionState::Idle),
            ..announce("10.0.0.0/8", &[])
        }
    }

    #[test]
    fn empty_filters_pass_everything() {
        let f = Filters::none();
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(f.matches(&state_msg()));
    }

    #[test]
    fn peer_filter() {
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        f.peer_asns.clear();
        f.peer_asns.insert(Asn(9));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn prefix_modes() {
        let mut f = Filters::none();
        f.prefixes
            .push((p("192.0.0.0/8"), PrefixMatch::MoreSpecific));
        // bgpreader -k 192.0.0.0/8: subprefixes match.
        assert!(f.matches(&announce("192.168.0.0/16", &[])));
        assert!(f.matches(&announce("192.0.0.0/8", &[])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));

        let mut f = Filters::none();
        f.prefixes
            .push((p("192.168.1.0/24"), PrefixMatch::LessSpecific));
        assert!(f.matches(&announce("192.168.0.0/16", &[])));
        assert!(!f.matches(&announce("192.168.2.0/24", &[])));

        let mut f = Filters::none();
        f.prefixes.push((p("192.168.1.0/24"), PrefixMatch::Exact));
        assert!(f.matches(&announce("192.168.1.0/24", &[])));
        assert!(!f.matches(&announce("192.168.1.0/25", &[])));
    }

    #[test]
    fn community_wildcard_matches_blackholes() {
        let mut f = Filters::none();
        f.communities.push(CommunityFilter::any_asn(666));
        assert!(f.matches(&announce("10.0.0.0/8", &[(3356, 666)])));
        assert!(f.matches(&announce("10.0.0.0/8", &[(174, 666), (1, 2)])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[(3356, 100)])));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn community_filter_lets_withdrawals_through() {
        let mut f = Filters::none();
        f.communities.push(CommunityFilter::any_asn(666));
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
    }

    #[test]
    fn elem_type_filter() {
        let mut f = Filters::none();
        f.elem_types.insert(ElemType::Withdrawal);
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn state_messages_pass_prefix_filters() {
        let mut f = Filters::none();
        f.prefixes
            .push((p("10.0.0.0/8"), PrefixMatch::MoreSpecific));
        assert!(f.matches(&state_msg()));
        // But not when a peer filter excludes them.
        f.peer_asns.insert(Asn(42));
        assert!(!f.matches(&state_msg()));
    }

    #[test]
    fn aspath_filter_matches_paths() {
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("_137$").unwrap());
        assert!(f.matches(&announce("10.0.0.0/8", &[]))); // path ends in 137
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("^9 *").unwrap());
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn aspath_filter_exempts_withdrawals_and_state() {
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("_99999_").unwrap());
        assert!(f.matches(&withdrawal("10.0.0.0/8")));
        assert!(f.matches(&state_msg()));
        assert!(!f.matches(&announce("10.0.0.0/8", &[])));
    }

    #[test]
    fn ip_version_filter() {
        let mut f = Filters::none();
        f.ip_version = Some(IpVersion::V4);
        assert!(f.matches(&announce("10.0.0.0/8", &[])));
        let mut v6 = announce("10.0.0.0/8", &[]);
        v6.prefix = Some("2001:db8::/32".parse().unwrap());
        assert!(!f.matches(&v6));
        f.ip_version = Some(IpVersion::V6);
        assert!(f.matches(&v6));
        // State messages carry no prefix: family-agnostic.
        assert!(f.matches(&state_msg()));
    }

    #[test]
    fn combined_filters_are_conjunctive() {
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        f.prefixes
            .push((p("192.0.0.0/8"), PrefixMatch::MoreSpecific));
        f.communities.push(CommunityFilter::exact(3356, 666));
        assert!(f.matches(&announce("192.0.2.0/24", &[(3356, 666)])));
        assert!(!f.matches(&announce("192.0.2.0/24", &[(174, 666)])));
        assert!(!f.matches(&announce("10.0.2.0/24", &[(3356, 666)])));
    }

    /// Every filter-set/elem combination the tests above exercise,
    /// replayed through the compiled form: `compile().matches` must
    /// agree with `Filters::matches` everywhere.
    #[test]
    fn compiled_matches_agrees_with_interpreted() {
        let mut sets: Vec<Filters> = Vec::new();
        sets.push(Filters::none());
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        sets.push(f);
        for mode in [
            PrefixMatch::Exact,
            PrefixMatch::MoreSpecific,
            PrefixMatch::LessSpecific,
            PrefixMatch::Any,
        ] {
            let mut f = Filters::none();
            f.prefixes.push((p("192.0.0.0/8"), mode));
            f.prefixes.push((p("192.168.1.0/24"), mode));
            sets.push(f);
        }
        let mut f = Filters::none();
        f.communities.push(CommunityFilter::any_asn(666));
        sets.push(f);
        let mut f = Filters::none();
        f.elem_types.insert(ElemType::Withdrawal);
        sets.push(f);
        let mut f = Filters::none();
        f.as_paths.push(AsPathRegex::parse("_137$").unwrap());
        sets.push(f);
        let mut f = Filters::none();
        f.ip_version = Some(IpVersion::V6);
        sets.push(f);
        let mut f = Filters::none();
        f.peer_asns.insert(Asn(65001));
        f.prefixes
            .push((p("192.0.0.0/8"), PrefixMatch::MoreSpecific));
        f.prefixes.push((p("192.0.0.0/8"), PrefixMatch::Exact));
        f.communities.push(CommunityFilter::exact(3356, 666));
        sets.push(f);

        let mut v6 = announce("10.0.0.0/8", &[]);
        v6.prefix = Some("2001:db8::/32".parse().unwrap());
        let elems = vec![
            announce("192.0.2.0/24", &[(3356, 666)]),
            announce("192.0.0.0/8", &[]),
            announce("192.168.1.0/24", &[(174, 666)]),
            announce("192.168.0.0/16", &[]),
            announce("10.0.0.0/8", &[]),
            withdrawal("192.0.2.0/24"),
            withdrawal("10.0.0.0/8"),
            state_msg(),
            v6,
        ];
        for (i, f) in sets.iter().enumerate() {
            let compiled = f.compile();
            assert_eq!(compiled.is_pass_all(), f.is_pass_all());
            for (j, e) in elems.iter().enumerate() {
                assert_eq!(
                    compiled.matches(e),
                    f.matches(e),
                    "filter set {i} vs elem {j}"
                );
            }
        }
    }

    #[test]
    fn pass_all_compiles_to_noop_prefilter() {
        let compiled = Filters::none().compile();
        assert!(compiled.is_pass_all());
        // Any record view — even one that could never yield elems —
        // is accepted without inspection.
        use mrt::{Bgp4mp, MrtHeader, MrtRecord};
        let rec = MrtRecord::bgp4mp(
            1,
            Bgp4mp::StateChange {
                peer_asn: Asn(1),
                local_asn: Asn(2),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                old_state: SessionState::Established,
                new_state: SessionState::Idle,
            },
        );
        let wire = rec.encode();
        let header = MrtHeader::decode(&wire).unwrap();
        let view = RawMrtView::parse(&header, &wire[MrtHeader::LEN..]).unwrap();
        assert!(compiled.record_may_match(&view, None));
    }
}
