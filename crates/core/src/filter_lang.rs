//! The filter mini-language — `bgpstream_parse_filter_string`.
//!
//! libBGPStream (and `bgpreader -f`) accept a single string combining
//! meta-data and elem-level filters, e.g.:
//!
//! ```text
//! collector rrc00 and type updates and prefix more 192.0.0.0/8 and comm *:666
//! ```
//!
//! Terms are joined by `and` (all constraints apply; repeating a term
//! is an any-of within that term, matching [`Filters`] semantics).
//! Values containing spaces (AS-path patterns) are double-quoted.
//!
//! | term | value | effect |
//! |---|---|---|
//! | `project`/`proj` | name | meta-data: collection project |
//! | `collector`/`coll` | name | meta-data: collector |
//! | `type` | `ribs` \| `updates` | meta-data: dump type |
//! | `peer` | ASN | elem: VP AS number |
//! | `prefix` | \[`exact`\|`more`\|`less`\|`any`\] CIDR | elem: prefix, default `more` (the `bgpreader -k` behaviour) |
//! | `community`/`comm` | `asn:value`, `*` wildcards | elem: community |
//! | `aspath` | pattern (quote if spaced) | elem: AS-path regex |
//! | `elemtype` | `announcements` \| `withdrawals` \| `ribs` \| `peerstates` | elem: type |
//! | `ipversion` | `4` \| `6` | elem: address family |

use bgp_types::trie::PrefixMatch;
use bgp_types::Asn;
use broker::DumpType;

use crate::aspath_re::AsPathRegex;
use crate::elem::ElemType;
use crate::filter::{CommunityFilter, Filters, IpVersion};

/// The outcome of parsing: meta-data constraints (pushed down into the
/// broker query) plus elem-level [`Filters`].
#[derive(Clone, Debug, Default)]
pub struct ParsedFilter {
    /// Collection projects to include.
    pub projects: Vec<String>,
    /// Collectors to include.
    pub collectors: Vec<String>,
    /// Dump types to include (empty = both).
    pub dump_types: Vec<DumpType>,
    /// Elem-level filters.
    pub filters: Filters,
}

/// Quote a term value when the tokenizer would otherwise split or
/// drop it (embedded whitespace, or the empty string).
fn quoted(value: &str) -> std::borrow::Cow<'_, str> {
    if value.is_empty() || value.chars().any(char::is_whitespace) {
        std::borrow::Cow::Owned(format!("\"{value}\""))
    } else {
        std::borrow::Cow::Borrowed(value)
    }
}

impl std::fmt::Display for ParsedFilter {
    /// The canonical filter-string form: full (unabbreviated) term
    /// keywords joined by `and`, explicit prefix match modes, set-like
    /// terms (peer, elemtype) in sorted order, and values quoted only
    /// when they contain whitespace. Feeding the displayed string back
    /// through [`parse_filter_string`] reproduces the same constraints
    /// (values containing `"` are not representable — the tokenizer
    /// has no escapes).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut terms: Vec<String> = Vec::new();
        for p in &self.projects {
            terms.push(format!("project {}", quoted(p)));
        }
        for c in &self.collectors {
            terms.push(format!("collector {}", quoted(c)));
        }
        for ty in &self.dump_types {
            terms.push(format!(
                "type {}",
                match ty {
                    DumpType::Rib => "ribs",
                    DumpType::Updates => "updates",
                }
            ));
        }
        let mut peers: Vec<Asn> = self.filters.peer_asns.iter().copied().collect();
        peers.sort_unstable();
        for asn in peers {
            terms.push(format!("peer {}", asn.0));
        }
        for (pfx, mode) in &self.filters.prefixes {
            let mode = match mode {
                PrefixMatch::Exact => "exact",
                PrefixMatch::MoreSpecific => "more",
                PrefixMatch::LessSpecific => "less",
                PrefixMatch::Any => "any",
            };
            terms.push(format!("prefix {mode} {pfx}"));
        }
        for c in &self.filters.communities {
            let asn = c.asn.map_or_else(|| "*".to_string(), |a| a.to_string());
            let val = c.value.map_or_else(|| "*".to_string(), |v| v.to_string());
            terms.push(format!("community {asn}:{val}"));
        }
        for (ty, name) in [
            (ElemType::RibEntry, "ribs"),
            (ElemType::Announcement, "announcements"),
            (ElemType::Withdrawal, "withdrawals"),
            (ElemType::PeerState, "peerstates"),
        ] {
            if self.filters.elem_types.contains(&ty) {
                terms.push(format!("elemtype {name}"));
            }
        }
        for re in &self.filters.as_paths {
            terms.push(format!("aspath {}", quoted(&re.to_string())));
        }
        if let Some(v) = self.filters.ip_version {
            terms.push(format!(
                "ipversion {}",
                match v {
                    IpVersion::V4 => "4",
                    IpVersion::V6 => "6",
                }
            ));
        }
        f.write_str(&terms.join(" and "))
    }
}

/// Errors from [`parse_filter_string`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FilterLangError {
    /// A term keyword we do not know.
    UnknownTerm(String),
    /// A term missing its value.
    MissingValue(&'static str),
    /// A malformed value for a term.
    BadValue(&'static str, String),
    /// An unterminated double quote.
    UnterminatedQuote,
    /// Expected `and` between terms.
    ExpectedAnd(String),
}

impl std::fmt::Display for FilterLangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterLangError::UnknownTerm(t) => write!(f, "unknown filter term {t:?}"),
            FilterLangError::MissingValue(t) => write!(f, "filter term {t} needs a value"),
            FilterLangError::BadValue(t, v) => write!(f, "bad {t} value {v:?}"),
            FilterLangError::UnterminatedQuote => write!(f, "unterminated quote"),
            FilterLangError::ExpectedAnd(t) => {
                write!(f, "expected 'and' between terms, found {t:?}")
            }
        }
    }
}

impl std::error::Error for FilterLangError {}

/// Split the input into tokens, honouring double quotes.
fn tokenize(input: &str) -> Result<Vec<String>, FilterLangError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut tok = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => tok.push(ch),
                    None => return Err(FilterLangError::UnterminatedQuote),
                }
            }
            tokens.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                tok.push(ch);
                chars.next();
            }
            tokens.push(tok);
        }
    }
    Ok(tokens)
}

/// Parse a filter string into meta-data constraints and elem filters.
pub fn parse_filter_string(input: &str) -> Result<ParsedFilter, FilterLangError> {
    let tokens = tokenize(input)?;
    let mut out = ParsedFilter::default();
    let mut i = 0;
    let mut first = true;
    while i < tokens.len() {
        if !first {
            if !tokens[i].eq_ignore_ascii_case("and") {
                return Err(FilterLangError::ExpectedAnd(tokens[i].clone()));
            }
            i += 1;
        }
        first = false;
        let Some(term) = tokens.get(i) else { break };
        i += 1;
        let mut value = |what: &'static str| -> Result<String, FilterLangError> {
            let v = tokens
                .get(i)
                .cloned()
                .ok_or(FilterLangError::MissingValue(what))?;
            i += 1;
            Ok(v)
        };
        match term.to_ascii_lowercase().as_str() {
            "project" | "proj" => out.projects.push(value("project")?),
            "collector" | "coll" => out.collectors.push(value("collector")?),
            "type" => {
                let v = value("type")?;
                let ty = match v.to_ascii_lowercase().as_str() {
                    "ribs" | "rib" => DumpType::Rib,
                    "updates" => DumpType::Updates,
                    _ => return Err(FilterLangError::BadValue("type", v)),
                };
                out.dump_types.push(ty);
            }
            "peer" => {
                let v = value("peer")?;
                let asn = v
                    .parse::<u32>()
                    .map_err(|_| FilterLangError::BadValue("peer", v))?;
                out.filters.peer_asns.insert(Asn(asn));
            }
            "prefix" => {
                let v = value("prefix")?;
                let (mode, pfx_str) = match v.to_ascii_lowercase().as_str() {
                    "exact" => (PrefixMatch::Exact, value("prefix")?),
                    "more" => (PrefixMatch::MoreSpecific, value("prefix")?),
                    "less" => (PrefixMatch::LessSpecific, value("prefix")?),
                    "any" => (PrefixMatch::Any, value("prefix")?),
                    _ => (PrefixMatch::MoreSpecific, v),
                };
                let pfx = pfx_str
                    .parse()
                    .map_err(|_| FilterLangError::BadValue("prefix", pfx_str))?;
                out.filters.prefixes.push((pfx, mode));
            }
            "community" | "comm" => {
                let v = value("community")?;
                let Some((a, b)) = v.split_once(':') else {
                    return Err(FilterLangError::BadValue("community", v));
                };
                let asn = match a {
                    "*" => None,
                    _ => Some(
                        a.parse::<u16>()
                            .map_err(|_| FilterLangError::BadValue("community", v.clone()))?,
                    ),
                };
                let val = match b {
                    "*" => None,
                    _ => Some(
                        b.parse::<u16>()
                            .map_err(|_| FilterLangError::BadValue("community", v.clone()))?,
                    ),
                };
                out.filters
                    .communities
                    .push(CommunityFilter { asn, value: val });
            }
            "aspath" => {
                let v = value("aspath")?;
                let re =
                    AsPathRegex::parse(&v).map_err(|_| FilterLangError::BadValue("aspath", v))?;
                out.filters.as_paths.push(re);
            }
            "elemtype" => {
                let v = value("elemtype")?;
                let ty = match v.to_ascii_lowercase().as_str() {
                    "announcements" | "announcement" | "a" => ElemType::Announcement,
                    "withdrawals" | "withdrawal" | "w" => ElemType::Withdrawal,
                    "ribs" | "rib" | "r" => ElemType::RibEntry,
                    "peerstates" | "peerstate" | "s" => ElemType::PeerState,
                    _ => return Err(FilterLangError::BadValue("elemtype", v)),
                };
                out.filters.elem_types.insert(ty);
            }
            "ipversion" => {
                let v = value("ipversion")?;
                out.filters.ip_version = Some(match v.as_str() {
                    "4" => IpVersion::V4,
                    "6" => IpVersion::V6,
                    _ => return Err(FilterLangError::BadValue("ipversion", v)),
                });
            }
            other => return Err(FilterLangError::UnknownTerm(other.to_string())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_expression_parses() {
        let p = parse_filter_string(
            "collector rrc00 and type updates and prefix more 192.0.0.0/8 and comm *:666",
        )
        .unwrap();
        assert_eq!(p.collectors, vec!["rrc00"]);
        assert_eq!(p.dump_types, vec![DumpType::Updates]);
        assert_eq!(p.filters.prefixes.len(), 1);
        assert_eq!(p.filters.prefixes[0].1, PrefixMatch::MoreSpecific);
        assert_eq!(p.filters.communities, vec![CommunityFilter::any_asn(666)]);
    }

    #[test]
    fn empty_string_is_no_constraints() {
        let p = parse_filter_string("").unwrap();
        assert!(p.projects.is_empty());
        assert!(p.collectors.is_empty());
        assert!(p.dump_types.is_empty());
    }

    #[test]
    fn repeated_terms_accumulate() {
        let p = parse_filter_string("coll rrc00 and coll route-views2 and proj ris").unwrap();
        assert_eq!(p.collectors, vec!["rrc00", "route-views2"]);
        assert_eq!(p.projects, vec!["ris"]);
    }

    #[test]
    fn prefix_modes() {
        for (mode_str, mode) in [
            ("exact", PrefixMatch::Exact),
            ("more", PrefixMatch::MoreSpecific),
            ("less", PrefixMatch::LessSpecific),
            ("any", PrefixMatch::Any),
        ] {
            let p = parse_filter_string(&format!("prefix {mode_str} 10.0.0.0/8")).unwrap();
            assert_eq!(p.filters.prefixes[0].1, mode, "{mode_str}");
        }
        // Default mode is more-specific.
        let p = parse_filter_string("prefix 10.0.0.0/8").unwrap();
        assert_eq!(p.filters.prefixes[0].1, PrefixMatch::MoreSpecific);
    }

    #[test]
    fn quoted_aspath_pattern() {
        let p = parse_filter_string("aspath \"^174 * 137$\" and peer 25152").unwrap();
        assert_eq!(p.filters.as_paths.len(), 1);
        assert!(p.filters.as_paths[0].matches_tokens(&[174, 9, 137]));
        assert!(p.filters.peer_asns.contains(&Asn(25152)));
    }

    #[test]
    fn underscore_aspath_needs_no_quotes() {
        let p = parse_filter_string("aspath _3356_").unwrap();
        assert!(p.filters.as_paths[0].matches_tokens(&[1, 3356, 2]));
    }

    #[test]
    fn elemtype_and_ipversion() {
        let p = parse_filter_string("elemtype withdrawals and ipversion 6").unwrap();
        assert!(p.filters.elem_types.contains(&ElemType::Withdrawal));
        assert_eq!(p.filters.ip_version, Some(IpVersion::V6));
    }

    #[test]
    fn community_wildcard_forms() {
        let p = parse_filter_string("comm 3356:666").unwrap();
        assert_eq!(p.filters.communities[0], CommunityFilter::exact(3356, 666));
        let p = parse_filter_string("comm 3356:*").unwrap();
        assert_eq!(
            p.filters.communities[0],
            CommunityFilter {
                asn: Some(3356),
                value: None
            }
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_filter_string("bogus x"),
            Err(FilterLangError::UnknownTerm(_))
        ));
        assert!(matches!(
            parse_filter_string("peer"),
            Err(FilterLangError::MissingValue(_))
        ));
        assert!(matches!(
            parse_filter_string("peer twelve"),
            Err(FilterLangError::BadValue("peer", _))
        ));
        assert!(matches!(
            parse_filter_string("coll rrc00 coll rrc01"),
            Err(FilterLangError::ExpectedAnd(_))
        ));
        assert!(matches!(
            parse_filter_string("aspath \"^174"),
            Err(FilterLangError::UnterminatedQuote)
        ));
        assert!(matches!(
            parse_filter_string("type weekly"),
            Err(FilterLangError::BadValue("type", _))
        ));
        assert!(matches!(
            parse_filter_string("comm 3356-666"),
            Err(FilterLangError::BadValue("community", _))
        ));
        assert!(matches!(
            parse_filter_string("ipversion 5"),
            Err(FilterLangError::BadValue("ipversion", _))
        ));
    }

    #[test]
    fn case_insensitive_keywords() {
        let p = parse_filter_string("Collector rrc00 AND Type ribs").unwrap();
        assert_eq!(p.collectors, vec!["rrc00"]);
        assert_eq!(p.dump_types, vec![DumpType::Rib]);
    }

    #[test]
    fn display_is_canonical() {
        let p = parse_filter_string(
            "coll rrc00 and type updates and prefix 192.0.0.0/8 and comm *:666",
        )
        .unwrap();
        // Abbreviations expand, the default prefix mode becomes
        // explicit, and the result reparses to the same constraints.
        assert_eq!(
            p.to_string(),
            "collector rrc00 and type updates and prefix more 192.0.0.0/8 and community *:666"
        );
        assert_eq!(ParsedFilter::default().to_string(), "");
    }

    mod display_roundtrip {
        use super::*;
        use bgp_types::Prefix;
        use proptest::collection::vec;
        use proptest::prelude::*;

        fn arb_prefix() -> impl Strategy<Value = Prefix> {
            prop_oneof![
                (any::<u32>(), 0u8..=32u8).prop_map(|(bits, len)| {
                    let masked = if len == 0 {
                        0
                    } else {
                        bits & (u32::MAX << (32 - len))
                    };
                    format!("{}/{len}", std::net::Ipv4Addr::from(masked))
                        .parse()
                        .unwrap()
                }),
                (any::<u128>(), 0u8..=128u8).prop_map(|(bits, len)| {
                    let masked = if len == 0 {
                        0
                    } else {
                        bits & (u128::MAX << (128 - len))
                    };
                    format!("{}/{len}", std::net::Ipv6Addr::from(masked))
                        .parse()
                        .unwrap()
                }),
            ]
        }

        fn arb_mode() -> impl Strategy<Value = PrefixMatch> {
            prop_oneof![
                Just(PrefixMatch::Exact),
                Just(PrefixMatch::MoreSpecific),
                Just(PrefixMatch::LessSpecific),
                Just(PrefixMatch::Any),
            ]
        }

        fn arb_aspath() -> impl Strategy<Value = AsPathRegex> {
            (
                any::<bool>(),
                any::<bool>(),
                vec(
                    prop_oneof![
                        (1u32..4_000_000_000).prop_map(|n| n.to_string()),
                        Just("?".to_string()),
                        Just("*".to_string()),
                    ],
                    1..5,
                ),
            )
                .prop_map(|(start, end, toks)| {
                    let mut pat = String::new();
                    if start {
                        pat.push('^');
                    }
                    pat.push_str(&toks.join(" "));
                    if end {
                        pat.push('$');
                    }
                    AsPathRegex::parse(&pat).expect("constructed pattern is valid")
                })
        }

        fn arb_comm() -> impl Strategy<Value = CommunityFilter> {
            (
                proptest::option::of(0u16..u16::MAX),
                proptest::option::of(0u16..u16::MAX),
            )
                .prop_map(|(asn, value)| CommunityFilter { asn, value })
        }

        fn arb_parsed() -> impl Strategy<Value = ParsedFilter> {
            let name = "[a-z0-9.]{1,8}";
            (
                vec(name, 0..3),
                vec(name, 0..3),
                vec(
                    prop_oneof![Just(DumpType::Rib), Just(DumpType::Updates)],
                    0..3,
                ),
                vec(any::<u32>(), 0..4),
                vec((arb_prefix(), arb_mode()), 0..3),
                vec(arb_comm(), 0..3),
                vec(
                    prop_oneof![
                        Just(ElemType::RibEntry),
                        Just(ElemType::Announcement),
                        Just(ElemType::Withdrawal),
                        Just(ElemType::PeerState),
                    ],
                    0..4,
                ),
                vec(arb_aspath(), 0..3),
                proptest::option::of(prop_oneof![Just(IpVersion::V4), Just(IpVersion::V6)]),
            )
                .prop_map(
                    |(
                        projects,
                        collectors,
                        dump_types,
                        peers,
                        prefixes,
                        communities,
                        elem_types,
                        as_paths,
                        ip_version,
                    )| {
                        ParsedFilter {
                            projects,
                            collectors,
                            dump_types,
                            filters: Filters {
                                peer_asns: peers.into_iter().map(Asn).collect(),
                                prefixes,
                                communities,
                                elem_types: elem_types.into_iter().collect(),
                                as_paths,
                                ip_version,
                            },
                        }
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Display is parseable and lossless: every constraint
            /// survives the round trip, and the canonical form is a
            /// fixed point of `parse ∘ to_string`.
            #[test]
            fn display_round_trips(p in arb_parsed()) {
                let s = p.to_string();
                let q = parse_filter_string(&s).expect("canonical form reparses");
                prop_assert_eq!(&q.projects, &p.projects);
                prop_assert_eq!(&q.collectors, &p.collectors);
                prop_assert_eq!(&q.dump_types, &p.dump_types);
                prop_assert_eq!(&q.filters.peer_asns, &p.filters.peer_asns);
                prop_assert_eq!(&q.filters.prefixes, &p.filters.prefixes);
                prop_assert_eq!(&q.filters.communities, &p.filters.communities);
                prop_assert_eq!(&q.filters.elem_types, &p.filters.elem_types);
                prop_assert_eq!(&q.filters.as_paths, &p.filters.as_paths);
                prop_assert_eq!(q.filters.ip_version, p.filters.ip_version);
                prop_assert_eq!(q.to_string(), s);
            }
        }
    }
}
