//! The user-facing BGP data stream: configuration phase + reading
//! phase, historical and live modes.
//!
//! The library implements the paper's "client pull" model (§3.3.2):
//! it alternates between meta-data queries to the broker and reading
//! the returned dump files, so data is only retrieved when the user is
//! ready to process it. When a live stream runs dry, the query
//! mechanism blocks: the stream polls the broker until new data
//! appears.

use bsync::atomic::{AtomicU64, Ordering};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bgp_types::trie::PrefixMatch;
use bgp_types::{Asn, Prefix};
use broker::index::{BrokerCursor, DumpMeta, Query};
use broker::{
    BrokerClient, BrokerError, DataInterface, DumpType, Index, LeaseId, LocalBroker, ReleasePolicy,
    SourceId,
};
use bsync::channel::{Receiver, Sender};

use crate::filter::{CommunityFilter, CompiledFilters, Filters};
use crate::record::BgpStreamRecord;
use crate::sort::{partition_overlap_groups, GroupMerger};
use mrt::DecodeMode;

/// Virtual-time source for live mode.
///
/// Offline analyses use [`Clock::all_published`] (everything in the
/// index is visible); live experiments share a [`Clock::manual`] with
/// the collector simulator's driver thread.
#[derive(Clone)]
pub enum Clock {
    /// A fixed instant.
    Fixed(u64),
    /// A shared, externally driven clock.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A clock pinned at the end of time: every registered file is
    /// visible (offline/historical processing).
    pub fn all_published() -> Self {
        Clock::Fixed(u64::MAX)
    }

    /// A manual clock starting at `t`; drive it with
    /// [`Clock::advance_to`].
    pub fn manual(t: u64) -> Self {
        Clock::Manual(Arc::new(AtomicU64::new(t)))
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Fixed(t) => *t,
            Clock::Manual(a) => a.load(Ordering::SeqCst),
        }
    }

    /// Move a manual clock forward (no-op on fixed clocks; never moves
    /// backward).
    pub fn advance_to(&self, t: u64) {
        if let Clock::Manual(a) = self {
            a.fetch_max(t, Ordering::SeqCst);
        }
    }
}

/// How the reading phase behaves once the configured interval's
/// published data is exhausted.
///
/// The paper: "code can be converted into a live monitoring process
/// simply by setting the end of the time interval to -1" —
/// [`BgpStreamBuilder::interval`] with `end = None` (or
/// [`BgpStreamBuilder::live`]) selects [`StreamMode::Live`]
/// implicitly; [`BgpStreamBuilder::stream_mode`] makes the choice
/// explicit and carries the live poll interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamMode {
    /// Bounded interval: the stream ends when the interval is
    /// exhausted.
    Historical,
    /// Unbounded: instead of ending, the stream polls the broker
    /// (blocking up to `poll` per wait) for newly published dumps,
    /// releasing windows per the configured
    /// [`broker::ReleasePolicy`].
    Live {
        /// Wall-clock poll interval while blocked waiting for data.
        poll: Duration,
    },
}

/// Stream statistics (exposed for the §3.3.4 sorting-cost analysis).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Broker queries issued.
    pub broker_queries: u64,
    /// Dump files opened.
    pub files_opened: u64,
    /// Overlap groups processed.
    pub groups: u64,
    /// Widest multi-way merge (simultaneously open files).
    pub max_group_width: usize,
    /// Records delivered.
    pub records: u64,
}

/// Error starting a stream: the configured [`DataInterface`] could
/// not be materialised (unreadable CSV manifest, malformed manifest
/// line, missing single file, …) or the broker refused the live
/// session (admission control, expired resume lease).
///
/// Wraps the broker's typed [`BrokerError`]; inspect it via
/// [`StreamStartError::broker_error`] or the
/// [`std::error::Error::source`] chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamStartError(BrokerError);

impl StreamStartError {
    /// The underlying broker error.
    pub fn broker_error(&self) -> &BrokerError {
        &self.0
    }
}

impl std::fmt::Display for StreamStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot start stream: {}", self.0)
    }
}

impl std::error::Error for StreamStartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.0)
    }
}

impl From<BrokerError> for StreamStartError {
    fn from(e: BrokerError) -> Self {
        StreamStartError(e)
    }
}

/// Configuration-phase builder (mirrors `bgpstream_set_filter` etc.).
///
/// ```
/// use bgpstream::BgpStream;
/// use broker::{DumpType, Index, LocalBroker};
///
/// let mut stream = BgpStream::builder()
///     .broker_client(LocalBroker::shared(Index::shared()))
///     .project("ris")
///     .collector("rrc00")
///     .record_type(DumpType::Updates)
///     .interval(0, Some(3600))
///     .try_start()
///     .expect("a local broker is always reachable");
/// // Reading phase: the index above is empty, so the historical
/// // stream ends immediately.
/// assert!(stream.next_record().is_none());
/// ```
///
/// Swapping `LocalBroker::shared(...)` for a
/// [`broker::RemoteBroker`] connected to a served
/// [`broker::BrokerService`] changes nothing downstream — the
/// reading phase is byte-identical through either client.
pub struct BgpStreamBuilder {
    interface: Option<DataInterface>,
    query: Query,
    filters: Filters,
    clock: Clock,
    live_grace: u64,
    poll: Duration,
    release: Option<ReleasePolicy>,
    resume_lease: Option<LeaseId>,
    decode: DecodeMode,
}

impl Default for BgpStreamBuilder {
    fn default() -> Self {
        BgpStreamBuilder {
            interface: None,
            query: Query::default(),
            filters: Filters::none(),
            clock: Clock::all_published(),
            live_grace: 300,
            poll: Duration::from_millis(2),
            release: None,
            resume_lease: None,
            decode: DecodeMode::Sequential,
        }
    }
}

impl BgpStreamBuilder {
    /// Select the meta-data/data interface (Broker, SingleFile, CSV).
    pub fn data_interface(mut self, iface: DataInterface) -> Self {
        self.interface = Some(iface);
        self
    }

    /// Sugar for [`BgpStreamBuilder::data_interface`] with an explicit
    /// [`BrokerClient`] — a [`broker::LocalBroker`] or a
    /// [`broker::RemoteBroker`] talking to a served
    /// [`broker::BrokerService`].
    pub fn broker_client(self, client: Arc<dyn BrokerClient>) -> Self {
        self.data_interface(DataInterface::Client(client))
    }

    /// Resume a live session from a previous stream's lease id
    /// ([`BgpStream::live_lease`]): the broker kept the session's
    /// cursor state, so delivery continues exactly once from where the
    /// crashed client stopped. Starting fails with
    /// [`BrokerError::LeaseExpired`] (wrapped in
    /// [`StreamStartError`]) when the lease lapsed. Ignored for
    /// historical streams.
    pub fn resume_live_lease(mut self, lease: LeaseId) -> Self {
        self.resume_lease = Some(lease);
        self
    }

    /// Restrict to a collection project (repeatable).
    pub fn project(mut self, name: &str) -> Self {
        self.query.projects.push(name.to_string());
        self
    }

    /// Restrict to a collector (repeatable).
    pub fn collector(mut self, name: &str) -> Self {
        self.query.collectors.push(name.to_string());
        self
    }

    /// Restrict to a dump type (repeatable; default both).
    pub fn record_type(mut self, ty: DumpType) -> Self {
        self.query.dump_types.push(ty);
        self
    }

    /// Historical interval `[start, end]`; `end = None` = live mode
    /// (the paper: "code can be converted into a live monitoring
    /// process simply by setting the end of the time interval to -1").
    pub fn interval(mut self, start: u64, end: Option<u64>) -> Self {
        self.query.start = start;
        self.query.end = end;
        self
    }

    /// Live mode starting at `start`.
    pub fn live(self, start: u64) -> Self {
        self.interval(start, None)
    }

    /// Select the stream mode explicitly. [`StreamMode::Live`] clears
    /// the interval end and sets the poll interval;
    /// [`StreamMode::Historical`] keeps the configured interval.
    pub fn stream_mode(mut self, mode: StreamMode) -> Self {
        match mode {
            StreamMode::Historical => {}
            StreamMode::Live { poll } => {
                self.query.end = None;
                self.poll = poll;
            }
        }
        self
    }

    /// Release live broker windows off the provider's publication
    /// watermark ([`broker::Index::advance_watermark`]) instead of the
    /// default grace-period wait ([`BgpStreamBuilder::live_grace`]).
    /// Watermark release is both lower-latency (no grace to wait out)
    /// and lossless under publication faults: a stalled or
    /// out-of-order publisher holds window release back instead of
    /// being overtaken by the clock.
    pub fn watermark_release(mut self) -> Self {
        self.release = Some(ReleasePolicy::Watermark);
        self
    }

    /// Keep only elems from this VP (repeatable).
    pub fn filter_peer_asn(mut self, asn: Asn) -> Self {
        self.filters.peer_asns.insert(asn);
        self
    }

    /// Keep only elems whose prefix matches (repeatable, any-of).
    pub fn filter_prefix(mut self, prefix: Prefix, mode: PrefixMatch) -> Self {
        self.filters.prefixes.push((prefix, mode));
        self
    }

    /// Keep only elems carrying a matching community (repeatable).
    pub fn filter_community(mut self, f: CommunityFilter) -> Self {
        self.filters.communities.push(f);
        self
    }

    /// Keep only elems of this type (repeatable).
    pub fn filter_elem_type(mut self, ty: crate::elem::ElemType) -> Self {
        self.filters.elem_types.insert(ty);
        self
    }

    /// Keep only elems whose AS path matches (repeatable, any-of).
    pub fn filter_aspath(mut self, re: crate::aspath_re::AsPathRegex) -> Self {
        self.filters.as_paths.push(re);
        self
    }

    /// Keep only elems of this address family.
    pub fn filter_ip_version(mut self, v: crate::filter::IpVersion) -> Self {
        self.filters.ip_version = Some(v);
        self
    }

    /// Apply a `parse_filter_string` expression: meta-data terms merge
    /// into the broker query, elem terms into the filters.
    pub fn filter_string(mut self, expr: &str) -> Result<Self, crate::FilterLangError> {
        let parsed = crate::parse_filter_string(expr)?;
        self.query.projects.extend(parsed.projects);
        self.query.collectors.extend(parsed.collectors);
        self.query.dump_types.extend(parsed.dump_types);
        let f = &mut self.filters;
        f.peer_asns.extend(parsed.filters.peer_asns);
        f.prefixes.extend(parsed.filters.prefixes);
        f.communities.extend(parsed.filters.communities);
        f.elem_types.extend(parsed.filters.elem_types);
        f.as_paths.extend(parsed.filters.as_paths);
        if parsed.filters.ip_version.is_some() {
            f.ip_version = parsed.filters.ip_version;
        }
        Ok(self)
    }

    /// Replace the whole filter set at once.
    pub fn filters(mut self, filters: Filters) -> Self {
        self.filters = filters;
        self
    }

    /// Virtual-time source (live mode).
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// How long past a broker window's *end* the stream waits before
    /// declaring the window complete in live mode. Must cover the
    /// maximum publication delay of the data provider; smaller values
    /// trade completeness for latency (§6.2.3's trade-off).
    pub fn live_grace(mut self, seconds: u64) -> Self {
        self.live_grace = seconds;
        self
    }

    /// Wall-clock poll interval while blocked in live mode.
    pub fn poll_interval(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// How dump files are decoded ([`DecodeMode::Sequential`] by
    /// default). [`DecodeMode::Parallel`] frames each dump on the
    /// reading thread and decodes records on a worker pool,
    /// reassembled in order — the record sequence is byte-identical
    /// either way; parallel pays a pool spawn per dump and wins on
    /// decode-heavy streams (large RIBs, historical backfill).
    pub fn decode_mode(mut self, mode: DecodeMode) -> Self {
        self.decode = mode;
        self
    }

    /// Finish configuration and enter the reading phase.
    ///
    /// Panics when the data interface cannot be materialised (e.g. an
    /// unreadable CSV manifest); use [`BgpStreamBuilder::try_start`]
    /// to handle that case.
    pub fn start(self) -> BgpStream {
        self.try_start()
            .unwrap_or_else(|e| panic!("BgpStreamBuilder::start: {e}"))
    }

    /// Fallible [`BgpStreamBuilder::start`]: returns an error instead
    /// of panicking when the configured [`DataInterface`] cannot be
    /// resolved into a [`BrokerClient`] (the `CsvFile` interface reads
    /// its manifest here, so a missing or malformed file surfaces at
    /// configuration time, not mid-stream) or the broker refuses the
    /// live session.
    pub fn try_start(self) -> Result<BgpStream, StreamStartError> {
        let iface = self
            .interface
            .unwrap_or_else(|| DataInterface::client(LocalBroker::shared(Index::shared())));
        let client = iface.into_client()?;
        let cursor = BrokerCursor {
            window_start: self.query.start,
        };
        // Repeatable setters and `filter_string` can push the same
        // term twice; dedup so the broker query carries each at most
        // once (order-preserving).
        let mut query = self.query;
        dedup_preserving(&mut query.projects);
        dedup_preserving(&mut query.collectors);
        dedup_preserving(&mut query.dump_types);
        // Compile the elem filters once for the whole reading phase:
        // every group merger (and every prefetch worker) shares the
        // same trie/bitset form and its record-level prefilter.
        let compiled = Arc::new(self.filters.compile());
        let live = query.end.is_none();
        let release = self
            .release
            .unwrap_or(ReleasePolicy::Grace(self.live_grace));
        let lease = if live {
            Some(client.open_live(&query, release, self.resume_lease)?)
        } else {
            None
        };
        let released_through = query.start;
        Ok(BgpStream {
            client,
            cursor,
            live,
            lease,
            released_through,
            last_delivered_ts: 0,
            last_polled_version: None,
            query,
            filters: Arc::new(self.filters),
            compiled,
            clock: self.clock,
            poll: self.poll,
            decode: self.decode,
            groups: VecDeque::new(),
            lookahead: VecDeque::new(),
            merger: None,
            prefetch: None,
            exhausted: false,
            last_error: None,
            stats: StreamStats::default(),
            elem_cursor: None,
        })
    }
}

/// Remove duplicate entries, keeping first occurrences in order.
fn dedup_preserving<T: PartialEq>(v: &mut Vec<T>) {
    let mut i = 0;
    while i < v.len() {
        if v[..i].contains(&v[i]) {
            v.remove(i);
        } else {
            i += 1;
        }
    }
}

/// The reading-phase stream.
pub struct BgpStream {
    /// The broker behind its client abstraction: in-process
    /// ([`broker::LocalBroker`]) or served over the message queue
    /// ([`broker::RemoteBroker`]) — the reading phase is identical
    /// through either.
    client: Arc<dyn BrokerClient>,
    query: Query,
    cursor: BrokerCursor,
    live: bool,
    /// The live session lease: the broker holds the incremental
    /// cursor (windowed release, cross-poll dedup, completeness
    /// watermark) server-side under this id, so a crashed client can
    /// resume exactly-once via
    /// [`BgpStreamBuilder::resume_live_lease`].
    lease: Option<LeaseId>,
    /// Completeness watermark from the live cursor: every record with
    /// a timestamp below this has been released to the stream (live
    /// mode; tracks the interval start otherwise).
    released_through: u64,
    /// Timestamp of the last record handed out, enforcing the §3.3.4
    /// monotonicity promise end to end: a live straggler admitted
    /// behind the merge (or a corrupted-read placeholder racing
    /// another dump) is re-stamped rather than moving time backwards.
    last_delivered_ts: u64,
    /// Index version as of the last live poll; polling is skipped
    /// while the version is unchanged and local buffers hold data.
    last_polled_version: Option<u64>,
    filters: Arc<Filters>,
    /// The reading-phase compiled form of `filters` (tries, bitsets,
    /// record-level prefilter), built once in `try_start`.
    compiled: Arc<CompiledFilters>,
    clock: Clock,
    poll: Duration,
    /// Decode mode every merger of this stream opens dumps with.
    decode: DecodeMode,
    groups: VecDeque<Vec<DumpMeta>>,
    /// Records handed back via [`BgpStream::unread`], delivered again
    /// (in order) before anything else.
    lookahead: VecDeque<BgpStreamRecord>,
    merger: Option<GroupMerger>,
    /// Overlap-group pipelining: a worker thread pre-opens the next
    /// group's files (file reads + PeerIndexTable parsing) while the
    /// current merger drains.
    prefetch: Option<Prefetch>,
    exhausted: bool,
    /// The broker error that terminated the stream, if any
    /// ([`BgpStream::last_error`]). A terminal error behaves like
    /// exhaustion — the paper's libBGPStream likewise ends the stream
    /// on a broker failure rather than delivering partial windows.
    last_error: Option<BrokerError>,
    stats: StreamStats,
    /// Remaining elems of the current record + its source annotation,
    /// for `next_elem`. Elems are moved out of the record (no clones).
    elem_cursor: Option<(std::vec::IntoIter<crate::elem::BgpStreamElem>, ElemSource)>,
}

/// One group-prefetch request for the shared worker.
struct PrefetchReq {
    group: Vec<DumpMeta>,
    filters: Arc<CompiledFilters>,
    mode: DecodeMode,
    reply: Sender<GroupMerger>,
}

/// The shared prefetch workers: a small detached pool per process,
/// spawned on first use, serving every stream (the vendored crossbeam
/// channel is MPMC, so the workers share one request queue). Requests
/// and replies travel over unbounded channels, so neither side ever
/// blocks on send. Sharing the pool keeps the per-stream cost to
/// channel operations — no thread spawn on the stream path — while
/// more than one worker avoids head-of-line blocking between
/// concurrent streams.
fn prefetch_worker() -> &'static Sender<PrefetchReq> {
    static WORKER: std::sync::OnceLock<Sender<PrefetchReq>> = std::sync::OnceLock::new();
    WORKER.get_or_init(|| {
        let (req_tx, req_rx) = bsync::channel::unbounded::<PrefetchReq>();
        for _ in 0..2 {
            let rx = req_rx.clone();
            bsync::thread::spawn_named("prefetch", move || {
                while let Ok(req) = rx.recv() {
                    // Contain panics from a pathological open: the
                    // worker must survive, and dropping `reply`
                    // un-blocks the requesting stream (its recv fails
                    // and it re-opens the group synchronously).
                    // xcheck:allow(catch-unwind) — see above
                    let opened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        GroupMerger::open_with(req.group, req.filters, req.mode)
                    }));
                    if let Ok(merger) = opened {
                        // A dropped stream makes the send fail; ignore.
                        let _ = req.reply.send(merger);
                    }
                }
            });
        }
        req_tx
    })
}

/// A stream's in-flight prefetch: the reply channel plus a copy of the
/// requested group so it can be re-opened synchronously if the worker
/// ever dies.
struct Prefetch {
    res_rx: Receiver<GroupMerger>,
    group: Vec<DumpMeta>,
}

/// Outcome of one non-blocking [`BgpStream::pump`] step.
enum Pump {
    /// A record was produced.
    Record(BgpStreamRecord),
    /// Nothing buffered and nothing releasable right now (live mode).
    Idle,
    /// The stream is exhausted (historical interval end).
    End,
}

/// Outcome of one [`BgpStream::next_batch_step`] call — the
/// non-blocking batch interface live consumers drive, so they regain
/// control between batches (to close time bins off the watermark,
/// check shutdown flags, …) instead of parking inside the stream.
#[derive(Debug)]
pub enum BatchStep {
    /// One or more records, in stream order.
    Records(Vec<BgpStreamRecord>),
    /// Nothing deliverable right now; the stream waited at most one
    /// poll interval for news before returning. Everything timestamped
    /// below `released_through` that will ever exist has been
    /// delivered — bins ending at or before it can close.
    Idle {
        /// The stream's completeness watermark
        /// ([`BgpStream::released_through`]).
        released_through: u64,
    },
    /// The stream is exhausted: historical interval end, or a live
    /// stream whose fixed clock can never make progress.
    End,
}

impl BgpStream {
    /// Start configuring a stream.
    pub fn builder() -> BgpStreamBuilder {
        BgpStreamBuilder::default()
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The stream's filters (shared with BGPCorsaro plugins).
    pub fn filters(&self) -> Arc<Filters> {
        self.filters.clone()
    }

    /// The stream's completeness watermark: every record timestamped
    /// below this has been released to the stream (live mode — see
    /// [`broker::LiveCursor`]; historical streams report the interval
    /// start until exhaustion, then `u64::MAX`). Downstream time bins
    /// with `end <= released_through()` can close: nothing older will
    /// arrive, except re-stamped stragglers which land at or after the
    /// current stream time.
    pub fn released_through(&self) -> u64 {
        if self.exhausted {
            u64::MAX
        } else {
            self.released_through
        }
    }

    /// The live session's lease id, for exactly-once resume after a
    /// crash: persist it, then rebuild the stream with
    /// [`BgpStreamBuilder::resume_live_lease`]. `None` for historical
    /// streams.
    pub fn live_lease(&self) -> Option<LeaseId> {
        self.lease
    }

    /// The broker error that terminated this stream, if any. A live
    /// stream whose lease expired (or whose broker failed) ends —
    /// `next_record` returns `None` — and records the cause here; a
    /// cleanly exhausted historical stream reports `None`.
    pub fn last_error(&self) -> Option<&BrokerError> {
        self.last_error.as_ref()
    }

    /// Pull the next record of the sorted stream.
    ///
    /// Historical mode returns `None` when the interval is exhausted.
    /// Live mode blocks (broker polling) until new data is published,
    /// so it returns `None` only if the clock is `Fixed` and no more
    /// data can ever appear.
    pub fn next_record(&mut self) -> Option<BgpStreamRecord> {
        if let Some(rec) = self.lookahead.pop_front() {
            self.stats.records += 1;
            return Some(rec);
        }
        loop {
            match self.pump() {
                Pump::Record(rec) => {
                    self.stats.records += 1;
                    return Some(rec);
                }
                Pump::End => return None,
                Pump::Idle => {
                    self.promise_released_through();
                    let v = self.client.version();
                    // Block: wake on new publications (or watermark
                    // advances) or poll timeout, then re-check the
                    // clock.
                    let _ = self.client.wait_for_new(v, self.poll);
                    if matches!(self.clock, Clock::Fixed(_)) && self.client.version() == v {
                        // A fixed clock can never make progress.
                        return None;
                    }
                }
            }
        }
    }

    /// One non-blocking reading-phase step: drain the current merge,
    /// install queued groups, and (live) fold in newly published
    /// dumps. Never sleeps; `Pump::Idle` means "nothing buffered and
    /// nothing releasable right now".
    fn pump(&mut self) -> Pump {
        // Guard against unbounded in-call window advancement: a
        // cursor whose every window is releasable (e.g. the provider
        // finished and parked the watermark at `u64::MAX`) would
        // otherwise spin here forever releasing empty windows. After a
        // long run of file-less windows, yield `Idle` — callers regain
        // control (live bin closing, shutdown checks) and the next
        // pump call picks up where this one left off.
        const MAX_EMPTY_ADVANCES: u32 = 1024;
        let mut empty_advances = 0u32;
        loop {
            // Live: fold in anything newly published since the last
            // poll. Skipped while the index is unchanged and local
            // buffers still hold data, so the steady-state per-record
            // cost is one version load.
            if self.live {
                let version = self.client.version();
                let drained = self.merger.is_none() && self.groups.is_empty();
                if self.last_polled_version != Some(version) || drained {
                    self.last_polled_version = Some(version);
                    let now = self.clock.now();
                    // xcheck:allow(unwrap) — set when live mode was entered
                    let lease = self.lease.expect("live stream holds a lease");
                    let poll = match self.client.poll_live(lease, now) {
                        Ok(poll) => poll,
                        // Transient overload: back off — the caller's
                        // idle path waits one poll interval, and the
                        // next pump retries the same lease.
                        Err(BrokerError::Busy) => return Pump::Idle,
                        // Terminal (lease expired, broker gone):
                        // record the cause and end the stream.
                        Err(e) => {
                            self.last_error = Some(e);
                            self.exhausted = true;
                            return Pump::End;
                        }
                    };
                    self.released_through = poll.released_through;
                    let productive = !poll.files.is_empty() || !poll.late.is_empty();
                    if poll.advanced {
                        self.stats.broker_queries += 1;
                    }
                    if !poll.late.is_empty() {
                        // Stragglers surfaced behind the cursor: admit
                        // them into the running merge so their
                        // still-future records interleave in order
                        // (past ones are re-stamped on delivery);
                        // without a running merge they form their own
                        // groups, delivered before anything queued.
                        if let Some(m) = self.merger.as_mut() {
                            for meta in poll.late {
                                self.stats.files_opened += 1;
                                m.admit(meta);
                            }
                            let w = self.merger.as_ref().map(|m| m.width()).unwrap_or(0);
                            self.stats.max_group_width = self.stats.max_group_width.max(w);
                        } else {
                            for group in partition_overlap_groups(&poll.late).into_iter().rev() {
                                self.groups.push_front(group);
                            }
                        }
                    }
                    if !poll.files.is_empty() {
                        self.groups.extend(partition_overlap_groups(&poll.files));
                    }
                    if poll.advanced {
                        // A window boundary was crossed (possibly
                        // empty): re-poll before concluding idleness —
                        // the next window may already be releasable.
                        self.last_polled_version = None;
                        if productive {
                            empty_advances = 0;
                        } else {
                            empty_advances += 1;
                            if empty_advances > MAX_EMPTY_ADVANCES {
                                return Pump::Idle;
                            }
                        }
                    }
                }
            }
            if let Some(m) = self.merger.as_mut() {
                if let Some(rec) = m.next() {
                    return Pump::Record(self.stamp(rec));
                }
                self.merger = None;
            }
            if self.install_next_merger() {
                continue;
            }
            if self.exhausted {
                return Pump::End;
            }
            if self.live {
                if self.last_polled_version.is_none() {
                    // An advanced (possibly empty) window: loop to
                    // poll for the next one immediately.
                    continue;
                }
                return Pump::Idle;
            }
            // Historical: page the broker window cursor forward.
            let now = self.clock.now();
            self.stats.broker_queries += 1;
            // Any error here is terminal — including `Busy`, which the
            // remote client only surfaces after exhausting its own
            // retries. Ending with `last_error` set keeps a shed
            // historical stream distinguishable from a cleanly
            // exhausted one.
            let resp = match self.client.query(&self.query, &mut self.cursor, now) {
                Ok(resp) => resp,
                Err(e) => {
                    self.last_error = Some(e);
                    self.exhausted = true;
                    return Pump::End;
                }
            };
            if resp.exhausted {
                self.exhausted = true;
            }
            if !resp.files.is_empty() {
                self.groups = partition_overlap_groups(&resp.files).into();
            } else if self.exhausted {
                return Pump::End;
            }
        }
    }

    /// Enforce end-to-end timestamp monotonicity on delivery: a record
    /// older than the stream's last output (live straggler admitted
    /// behind the merge, or a corrupted-read placeholder racing
    /// another dump in its group) is re-stamped with the last
    /// delivered timestamp — the same rule PR 2 applies within a dump.
    fn stamp(&mut self, mut rec: BgpStreamRecord) -> BgpStreamRecord {
        if rec.timestamp < self.last_delivered_ts {
            rec.timestamp = self.last_delivered_ts;
        } else {
            self.last_delivered_ts = rec.timestamp;
        }
        rec
    }

    /// Make the idleness contract binding: once idleness has been
    /// observed with watermark `released_through`, nothing older may
    /// be delivered afterwards — consumers will have closed bins up to
    /// that point. Raising the monotonic delivery floor to the
    /// promised watermark means a grace-policy straggler that
    /// undercuts it is re-stamped to (at least) the promise instead of
    /// landing in a bin that already closed. Records of windows not
    /// yet released start at or after the watermark, so the floor
    /// never rewrites the normal flow.
    fn promise_released_through(&mut self) {
        // A feed-complete watermark (`u64::MAX`) is an end-of-session
        // signal, not a timestamp to re-stamp surprise stragglers to.
        if self.released_through != u64::MAX {
            self.last_delivered_ts = self.last_delivered_ts.max(self.released_through);
        }
    }

    /// Install the next group's merger: take the prefetched one if a
    /// request is in flight, otherwise open synchronously. Then hand
    /// the *following* group to the worker so its file reads and
    /// PeerIndexTable parsing overlap with draining the one just
    /// installed. Returns false when no group is available.
    fn install_next_merger(&mut self) -> bool {
        let merger = match self.prefetch.take() {
            Some(p) => match p.res_rx.recv() {
                Ok(m) => m,
                // Worker died (only possible via panic); re-open the
                // in-flight group synchronously so no records are lost.
                Err(_) => GroupMerger::open_with(p.group, self.compiled.clone(), self.decode),
            },
            None => match self.groups.pop_front() {
                Some(g) => GroupMerger::open_with(g, self.compiled.clone(), self.decode),
                None => return false,
            },
        };
        self.stats.files_opened += merger.width() as u64;
        self.stats.groups += 1;
        self.stats.max_group_width = self.stats.max_group_width.max(merger.width());
        self.merger = Some(merger);
        // Kick off the next group's open while this one drains.
        if let Some(group) = self.groups.pop_front() {
            let (reply, res_rx) = bsync::channel::unbounded();
            let req = PrefetchReq {
                group: group.clone(),
                filters: self.compiled.clone(),
                mode: self.decode,
                reply,
            };
            if prefetch_worker().send(req).is_ok() {
                self.prefetch = Some(Prefetch { res_rx, group });
            } else {
                // Worker gone: put the group back for synchronous
                // opening next round.
                self.groups.push_front(group);
            }
        }
        true
    }

    /// Hand already-pulled records back to the stream; subsequent
    /// [`BgpStream::next_record`]/[`BgpStream::next_batch`] calls
    /// deliver them again, in the given (stream) order, before
    /// anything else. Used by consumers that read ahead in batches
    /// and hit a stop condition mid-batch — the unconsumed tail goes
    /// back so the stream can be handed to another reader without
    /// losing records. [`StreamStats::records`] is adjusted so
    /// re-delivered records are not double-counted.
    pub fn unread(&mut self, records: Vec<BgpStreamRecord>) {
        debug_assert!(
            self.stats.records >= records.len() as u64,
            "unread of more records than this stream ever delivered"
        );
        self.stats.records = self.stats.records.saturating_sub(records.len() as u64);
        for rec in records.into_iter().rev() {
            self.lookahead.push_front(rec);
        }
    }

    /// Pull up to `max` records of the sorted stream in one call.
    ///
    /// Batch handoff for multi-threaded consumers (the sharded
    /// BGPCorsaro runtime): pulling a batch and handing it to worker
    /// queues as one unit amortises per-record channel traffic. The
    /// batch preserves stream order and never blocks once at least one
    /// record has been read — in live mode a partially filled batch is
    /// returned as soon as the next record would block on the broker,
    /// so batching adds no latency at bin boundaries.
    ///
    /// Returns `None` only when the stream is exhausted (`max == 0`
    /// also returns `None`).
    pub fn next_batch(&mut self, max: usize) -> Option<Vec<BgpStreamRecord>> {
        if max == 0 {
            return None;
        }
        let first = self.next_record()?;
        let mut out = Vec::with_capacity(max.clamp(1, 4096));
        out.push(first);
        while out.len() < max {
            // Only continue while a record is ready without blocking:
            // an unread record is buffered, the current merger has one
            // primed, or a fully materialised group is queued locally.
            // An in-flight prefetch does NOT count — collecting it
            // waits on the worker's file reads, and this method
            // promises to return the partial batch instead of
            // stalling once at least one record is in hand.
            let ready = !self.lookahead.is_empty()
                || self.merger.as_ref().map(|m| m.has_next()).unwrap_or(false)
                || !self.groups.is_empty();
            if !ready {
                break;
            }
            match self.next_record() {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        Some(out)
    }

    /// One bounded step of batched reading: like
    /// [`BgpStream::next_batch`], but instead of blocking indefinitely
    /// when a live stream runs dry it returns [`BatchStep::Idle`]
    /// (after waiting at most one poll interval), handing the caller
    /// the completeness watermark so live time bins can close during
    /// quiet periods. The sharded corsaro runtime's `run_live` loop is
    /// the intended driver.
    ///
    /// `max == 0` returns `Idle` without touching the stream.
    pub fn next_batch_step(&mut self, max: usize) -> BatchStep {
        if max == 0 {
            return BatchStep::Idle {
                released_through: self.released_through(),
            };
        }
        let mut out: Vec<BgpStreamRecord> = Vec::new();
        while out.len() < max {
            if let Some(rec) = self.lookahead.pop_front() {
                self.stats.records += 1;
                out.push(rec);
                continue;
            }
            // Mirror `next_batch`: once at least one record is in
            // hand, only continue while another is ready without
            // waiting on the prefetch worker's file reads.
            if !out.is_empty() {
                let ready = self.merger.as_ref().map(|m| m.has_next()).unwrap_or(false)
                    || !self.groups.is_empty();
                if !ready {
                    break;
                }
            }
            match self.pump() {
                Pump::Record(rec) => {
                    self.stats.records += 1;
                    out.push(rec);
                }
                Pump::End => {
                    if out.is_empty() {
                        return BatchStep::End;
                    }
                    break;
                }
                Pump::Idle => {
                    if !out.is_empty() {
                        break;
                    }
                    // Bounded block, then hand control back. The
                    // reported watermark becomes a delivery floor:
                    // stragglers may not undercut it afterwards.
                    self.promise_released_through();
                    let v = self.client.version();
                    let _ = self.client.wait_for_new(v, self.poll);
                    if matches!(self.clock, Clock::Fixed(_)) && self.client.version() == v {
                        return BatchStep::End;
                    }
                    return BatchStep::Idle {
                        released_through: self.released_through(),
                    };
                }
            }
        }
        BatchStep::Records(out)
    }

    /// Pull the next record that has at least one elem passing the
    /// filters (skipping empty/marker records).
    pub fn next_matching_record(&mut self) -> Option<BgpStreamRecord> {
        loop {
            let rec = self.next_record()?;
            if !rec.elems().is_empty() {
                return Some(rec);
            }
        }
    }

    /// Flattened elem iteration — the PyBGPStream scripting pattern
    /// (`for elem in stream` instead of the nested record/elem loops).
    /// Consumes records internally and yields each elem together with
    /// its source annotations.
    pub fn next_elem(&mut self) -> Option<(crate::elem::BgpStreamElem, ElemSource)> {
        loop {
            if let Some((iter, src)) = self.elem_cursor.as_mut() {
                if let Some(elem) = iter.next() {
                    return Some((elem, *src));
                }
                self.elem_cursor = None;
            }
            let rec = self.next_matching_record()?;
            let src = ElemSource {
                source: rec.source,
                dump_time: rec.dump_time,
            };
            self.elem_cursor = Some((rec.into_elems().into_iter(), src));
        }
    }
}

/// Record iteration — the PyBGPStream ergonomic style
/// (`for record in stream`), equivalent to calling
/// [`BgpStream::next_record`] in a loop.
///
/// ```
/// use bgpstream::BgpStream;
/// use broker::{Index, LocalBroker};
///
/// let stream = BgpStream::builder()
///     .broker_client(LocalBroker::shared(Index::shared()))
///     .interval(0, Some(3600))
///     .start();
/// for record in stream {
///     for elem in record.elems() {
///         println!("{}", elem.peer_asn);
///     }
/// }
/// ```
impl Iterator for BgpStream {
    type Item = BgpStreamRecord;

    fn next(&mut self) -> Option<BgpStreamRecord> {
        self.next_record()
    }
}

/// Source annotations attached to elems yielded by
/// [`BgpStream::next_elem`]. `Copy`: the identity is an interned
/// [`SourceId`], so annotating an elem allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ElemSource {
    /// Interned source identity (project + collector + dump type).
    pub source: SourceId,
    /// Nominal time of the source dump.
    pub dump_time: u64,
}

impl ElemSource {
    /// Collection project.
    pub fn project(&self) -> &'static str {
        self.source.project()
    }

    /// Collector name.
    pub fn collector(&self) -> &'static str {
        self.source.collector()
    }

    /// Dump type the elem came from.
    pub fn dump_type(&self) -> DumpType {
        self.source.dump_type()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_semantics() {
        let c = Clock::manual(10);
        assert_eq!(c.now(), 10);
        c.advance_to(50);
        assert_eq!(c.now(), 50);
        c.advance_to(20); // never backward
        assert_eq!(c.now(), 50);
        let f = Clock::all_published();
        assert_eq!(f.now(), u64::MAX);
        f.advance_to(0); // no-op
        assert_eq!(f.now(), u64::MAX);
    }

    #[test]
    fn empty_index_historical_stream_ends() {
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(0, Some(1000))
            .start();
        assert!(s.next_record().is_none());
        assert!(s.stats().broker_queries >= 1);
    }

    #[test]
    fn builder_dedups_repeated_query_terms() {
        // Repeatable setters and `filter_string` used to push
        // duplicate terms into the broker query.
        let s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .project("ris")
            .project("ris")
            .collector("rrc00")
            .collector("rrc00")
            .collector("rrc01")
            .record_type(DumpType::Rib)
            .record_type(DumpType::Rib)
            .filter_string("project ris and collector rrc00 and type ribs")
            .unwrap()
            .interval(0, Some(10))
            .start();
        assert_eq!(s.query.projects, vec!["ris".to_string()]);
        assert_eq!(
            s.query.collectors,
            vec!["rrc00".to_string(), "rrc01".to_string()]
        );
        assert_eq!(s.query.dump_types, vec![DumpType::Rib]);
    }

    #[test]
    fn try_start_reports_unresolvable_interface() {
        // A CSV manifest that does not exist: `try_start` must return
        // an error (and `start` would panic) instead of yielding a
        // half-configured stream.
        let missing = std::env::temp_dir().join("bgpstream-no-such-manifest.csv");
        let err = match BgpStream::builder()
            .data_interface(DataInterface::CsvFile(missing))
            .interval(0, Some(10))
            .try_start()
        {
            Ok(_) => panic!("missing manifest must not start"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("cannot start stream"), "got: {msg}");
        // Source chain: implements std::error::Error.
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    #[should_panic(expected = "BgpStreamBuilder::start")]
    fn start_panics_with_context_on_unresolvable_interface() {
        let missing = std::env::temp_dir().join("bgpstream-no-such-manifest.csv");
        let _ = BgpStream::builder()
            .data_interface(DataInterface::CsvFile(missing))
            .start();
    }

    #[test]
    fn next_batch_preserves_order_and_exhausts() {
        use mrt::{Bgp4mp, MrtRecord, MrtWriter};
        let dir = std::env::temp_dir().join(format!("next_batch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.mrt");
        {
            let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
            for ts in 0..10u32 {
                w.write(&MrtRecord::bgp4mp(
                    100 + ts,
                    Bgp4mp::StateChange {
                        peer_asn: bgp_types::Asn(65001),
                        local_asn: bgp_types::Asn(12654),
                        peer_ip: "192.0.2.1".parse().unwrap(),
                        local_ip: "192.0.2.254".parse().unwrap(),
                        old_state: bgp_types::SessionState::OpenConfirm,
                        new_state: bgp_types::SessionState::Established,
                    },
                ))
                .unwrap();
            }
        }
        let build = || {
            BgpStream::builder()
                .data_interface(DataInterface::SingleFile {
                    dump_type: DumpType::Updates,
                    path: path.clone(),
                    interval_start: 100,
                    duration: 10,
                })
                .interval(0, Some(1000))
                .start()
        };
        // Batched timestamps must equal record-at-a-time timestamps.
        let mut one_by_one = Vec::new();
        let mut s = build();
        while let Some(r) = s.next_record() {
            one_by_one.push(r.timestamp);
        }
        let mut batched = Vec::new();
        let mut s = build();
        while let Some(batch) = s.next_batch(4) {
            assert!(!batch.is_empty() && batch.len() <= 4);
            batched.extend(batch.into_iter().map(|r| r.timestamp));
        }
        assert_eq!(batched, one_by_one);
        assert!(!batched.is_empty());
        let mut s = build();
        assert!(s.next_batch(0).is_none());

        // Unread: a consumed tail handed back is re-delivered in
        // order, ahead of everything else, without double-counting.
        let mut s = build();
        let mut batch = s.next_batch(4).unwrap();
        let counted = s.stats().records;
        let tail = batch.split_off(2);
        let tail_ts: Vec<u64> = tail.iter().map(|r| r.timestamp).collect();
        s.unread(tail);
        assert_eq!(s.stats().records, counted - tail_ts.len() as u64);
        let mut redelivered = Vec::new();
        while let Some(r) = s.next_record() {
            redelivered.push(r.timestamp);
        }
        assert_eq!(&redelivered[..tail_ts.len()], &tail_ts[..]);
        assert_eq!(
            batch
                .iter()
                .map(|r| r.timestamp)
                .chain(redelivered.iter().copied())
                .collect::<Vec<_>>(),
            one_by_one
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn one_file_index(path: &std::path::Path, start: u64, dur: u64, avail: u64) -> Arc<Index> {
        let idx = Index::shared();
        idx.register(broker::DumpMeta {
            project: "ris".into(),
            collector: "rrc00".into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: dur,
            path: path.to_path_buf(),
            available_at: avail,
            size: 1,
        });
        idx
    }

    fn write_keepalives(dir: &std::path::Path, name: &str, stamps: &[u32]) -> std::path::PathBuf {
        use mrt::{Bgp4mp, MrtRecord, MrtWriter};
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(name);
        let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
        for &ts in stamps {
            w.write(&MrtRecord::bgp4mp(
                ts,
                Bgp4mp::Message {
                    peer_asn: bgp_types::Asn(65001),
                    local_asn: bgp_types::Asn(12654),
                    peer_ip: "192.0.2.1".parse().unwrap(),
                    local_ip: "192.0.2.254".parse().unwrap(),
                    message: bgp_types::BgpMessage::Keepalive,
                },
            ))
            .unwrap();
        }
        path
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "bgpstream-stream-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ))
    }

    #[test]
    fn stream_mode_live_clears_end_and_sets_poll() {
        let s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(100, Some(200))
            .stream_mode(StreamMode::Live {
                poll: Duration::from_millis(7),
            })
            .start();
        assert!(s.live);
        assert_eq!(s.query.end, None);
        assert_eq!(s.poll, Duration::from_millis(7));
        let h = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(100, Some(200))
            .stream_mode(StreamMode::Historical)
            .start();
        assert!(!h.live);
        assert_eq!(h.query.end, Some(200));
    }

    #[test]
    fn watermark_release_delivers_without_grace_wait() {
        // A watermark-released live stream needs no clock progress at
        // all: the provider vouching for the window is enough.
        let dir = scratch("wm");
        let path = write_keepalives(&dir, "u.mrt", &[10, 20, 30]);
        let idx = one_file_index(&path, 0, 300, 40);
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .live(0)
            .watermark_release()
            .clock(Clock::manual(50))
            .poll_interval(Duration::from_millis(1))
            .start();
        // No watermark yet: the stream idles (probe via batch step, so
        // the test cannot hang).
        match s.next_batch_step(8) {
            BatchStep::Idle { released_through } => assert_eq!(released_through, 0),
            other => panic!("expected Idle, got {other:?}"),
        }
        idx.advance_watermark(broker::index::DEFAULT_WINDOW);
        let mut got = Vec::new();
        while got.len() < 3 {
            match s.next_batch_step(8) {
                BatchStep::Records(recs) => got.extend(recs.into_iter().map(|r| r.timestamp)),
                BatchStep::Idle { .. } => {}
                BatchStep::End => panic!("live stream must not end"),
            }
        }
        assert_eq!(got, vec![10, 20, 30]);
        assert!(s.released_through() >= broker::index::DEFAULT_WINDOW);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_step_reports_end_on_historical_exhaustion() {
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(0, Some(1000))
            .start();
        assert!(matches!(s.next_batch_step(4), BatchStep::End));
        assert_eq!(s.released_through(), u64::MAX);
        // max == 0 never touches the stream.
        let mut s2 = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .live(0)
            .clock(Clock::Fixed(0))
            .start();
        assert!(matches!(s2.next_batch_step(0), BatchStep::Idle { .. }));
    }

    #[test]
    fn late_straggler_is_restamped_monotonically() {
        // Grace-released live stream; a dump published long after its
        // window was released must still be delivered (exactly once),
        // with its stale timestamps re-stamped so the stream never
        // goes backwards.
        let dir = scratch("straggler");
        let early = write_keepalives(&dir, "early.mrt", &[100, 200]);
        let late = write_keepalives(&dir, "late.mrt", &[150, 160]);
        let idx = one_file_index(&early, 0, 300, 400);
        let clock = Clock::manual(broker::index::DEFAULT_WINDOW + 600);
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .live(0)
            .clock(clock.clone())
            .live_grace(500)
            .poll_interval(Duration::from_millis(1))
            .start();
        // Window [0, 7200) releases; both records arrive.
        assert_eq!(s.next_record().unwrap().timestamp, 100);
        assert_eq!(s.next_record().unwrap().timestamp, 200);
        // Now the straggler surfaces, hours late, behind the cursor.
        idx.register(broker::DumpMeta {
            project: "ris".into(),
            collector: "rrc00".into(),
            dump_type: DumpType::Updates,
            interval_start: 0,
            duration: 300,
            path: late,
            available_at: clock.now(),
            size: 1,
        });
        let a = s.next_record().unwrap();
        let b = s.next_record().unwrap();
        assert_eq!(
            (a.timestamp, b.timestamp),
            (200, 200),
            "stale straggler records must be re-stamped to the last delivered time"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn straggler_cannot_undercut_a_reported_idle_watermark() {
        // The BatchStep::Idle contract: once Idle { released_through }
        // is observed, nothing older may be delivered — consumers
        // close bins up to that point. A grace-policy straggler
        // arriving afterwards must be re-stamped to at least the
        // promised watermark, not merely to the last delivered record.
        let dir = scratch("idle-floor");
        let early = write_keepalives(&dir, "early.mrt", &[100]);
        let late = write_keepalives(&dir, "late.mrt", &[150]);
        let idx = one_file_index(&early, 0, 300, 400);
        let window = broker::index::DEFAULT_WINDOW;
        // Clock far enough that windows [0, w) and [w, 2w) released.
        let clock = Clock::manual(2 * window + 600);
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .live(0)
            .clock(clock.clone())
            .live_grace(500)
            .poll_interval(Duration::from_millis(1))
            .start();
        // Drain the early record, then observe idleness: the stream
        // promises released_through = 2 * window.
        let released = loop {
            match s.next_batch_step(8) {
                BatchStep::Records(_) => {}
                BatchStep::Idle { released_through } => {
                    if released_through >= 2 * window {
                        break released_through;
                    }
                }
                BatchStep::End => panic!("live stream must not end"),
            }
        };
        // A straggler for the long-closed first window surfaces.
        idx.register(broker::DumpMeta {
            project: "ris".into(),
            collector: "rrc00".into(),
            dump_type: DumpType::Updates,
            interval_start: 0,
            duration: 300,
            path: late,
            available_at: clock.now(),
            size: 1,
        });
        let rec = loop {
            match s.next_batch_step(8) {
                BatchStep::Records(mut recs) => break recs.remove(0),
                BatchStep::Idle { .. } => {}
                BatchStep::End => panic!("live stream must not end"),
            }
        };
        assert!(
            rec.timestamp >= released,
            "straggler stamped {} below the promised watermark {released}",
            rec.timestamp
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parked_watermark_with_no_data_left_signals_feed_complete() {
        // A provider that parks the watermark at u64::MAX has declared
        // the feed over; once every dump released, the stream reports
        // released_through == u64::MAX instead of stepping windows
        // through the empty eternity (which would make run_live close
        // unbounded empty bins).
        let dir = scratch("feed-complete");
        let path = write_keepalives(&dir, "u.mrt", &[10, 20]);
        let idx = one_file_index(&path, 0, 300, 40);
        idx.advance_watermark(u64::MAX);
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx))
            .live(0)
            .watermark_release()
            .clock(Clock::manual(50))
            .poll_interval(Duration::from_millis(1))
            .start();
        let mut got = 0;
        loop {
            match s.next_batch_step(8) {
                BatchStep::Records(recs) => got += recs.len(),
                BatchStep::Idle { released_through } => {
                    if released_through == u64::MAX {
                        break;
                    }
                }
                BatchStep::End => panic!("manual-clock live stream must idle, not end"),
            }
        }
        assert_eq!(got, 2, "all data delivered before the completion signal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_stream_holds_a_lease_and_resumes_by_id() {
        use broker::LocalBroker;
        let dir = scratch("lease");
        let path = write_keepalives(&dir, "u.mrt", &[10, 20]);
        let idx = one_file_index(&path, 0, 300, 40);
        idx.advance_watermark(u64::MAX);
        let client = LocalBroker::shared(idx);
        let mut s = BgpStream::builder()
            .broker_client(client.clone())
            .live(0)
            .watermark_release()
            .clock(Clock::manual(50))
            .poll_interval(Duration::from_millis(1))
            .start();
        let lease = s.live_lease().expect("live stream holds a lease");
        assert_eq!(s.next_record().unwrap().timestamp, 10);
        // Simulate a crash: drop the stream, rebuild from the lease.
        drop(s);
        let resumed = BgpStream::builder()
            .broker_client(client.clone())
            .live(0)
            .watermark_release()
            .clock(Clock::manual(50))
            .poll_interval(Duration::from_millis(1))
            .resume_live_lease(lease)
            .start();
        assert_eq!(resumed.live_lease(), Some(lease));
        // The broker-side cursor already released the whole window to
        // the crashed client, so the resumed stream sees no duplicate
        // files (exactly-once at dump granularity).
        assert!(resumed.last_error().is_none());

        // An unknown lease refuses to start, with a typed cause.
        let err = match BgpStream::builder()
            .broker_client(client)
            .live(0)
            .resume_live_lease(lease + 999)
            .try_start()
        {
            Ok(_) => panic!("bogus lease must not start"),
            Err(e) => e,
        };
        assert_eq!(err.broker_error(), &BrokerError::LeaseExpired);
        assert!(err.to_string().contains("cannot start stream"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn historical_stream_is_unaffected_by_resume_lease() {
        let s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(0, Some(1000))
            .resume_live_lease(42)
            .start();
        assert_eq!(s.live_lease(), None);
        assert!(s.last_error().is_none());
    }

    #[test]
    fn live_stream_with_fixed_clock_and_no_data_ends() {
        // Degenerate but must not hang: fixed clock can never allow
        // the next live window, and nothing will be published.
        let mut s = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .live(0)
            .clock(Clock::Fixed(0))
            .poll_interval(Duration::from_millis(1))
            .start();
        assert!(s.next_record().is_none());
    }
}
