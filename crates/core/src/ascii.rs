//! `bgpdump`-style ASCII rendering — the heart of BGPReader (§4.1).
//!
//! BGPReader "can be thought of as a drop-in replacement of the
//! analogous bgpdump tool". One pipe-separated line per elem:
//!
//! ```text
//! <dump-type>|<elem-type>|<time>|<project>|<collector>|<peer-ASN>|<peer-IP>|<prefix>|<next-hop>|<AS-path>|<communities>|<old-state>|<new-state>
//! ```
//!
//! Fields not applicable to the elem type are left empty, matching
//! libBGPStream's elem string format.

use crate::elem::BgpStreamElem;
use crate::record::BgpStreamRecord;
use broker::DumpType;

/// Render one elem in the context of its record.
pub fn elem_line(record: &BgpStreamRecord, elem: &BgpStreamElem) -> String {
    let dump = match record.dump_type() {
        DumpType::Rib => "R",
        DumpType::Updates => "U",
    };
    let prefix = elem.prefix.map(|p| p.to_string()).unwrap_or_default();
    let next_hop = elem.next_hop.map(|n| n.to_string()).unwrap_or_default();
    let as_path = elem
        .as_path
        .as_ref()
        .map(|p| p.to_bgpdump_string())
        .unwrap_or_default();
    let communities = elem
        .communities
        .as_ref()
        .map(|c| c.to_bgpdump_string())
        .unwrap_or_default();
    let old_state = elem.old_state.map(|s| s.to_string()).unwrap_or_default();
    let new_state = elem.new_state.map(|s| s.to_string()).unwrap_or_default();
    format!(
        "{dump}|{}|{}|{}|{}|{}|{}|{prefix}|{next_hop}|{as_path}|{communities}|{old_state}|{new_state}",
        elem.elem_type.code(),
        elem.time,
        record.project(),
        record.collector(),
        elem.peer_asn,
        elem.peer_address,
    )
}

/// Render every elem of a record, one line each.
pub fn record_lines(record: &BgpStreamRecord) -> Vec<String> {
    record
        .elems()
        .iter()
        .map(|e| elem_line(record, e))
        .collect()
}

/// Classic `bgpdump -m` one-line format — BGPReader's compatibility
/// mode ("a command line option sets bgpdump output format", §4.1):
///
/// ```text
/// BGP4MP|<time>|A|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP|<next-hop>|0|0|<communities>|NAG||
/// BGP4MP|<time>|W|<peer-ip>|<peer-asn>|<prefix>
/// TABLE_DUMP2|<time>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP|<next-hop>|0|0|<communities>|NAG||
/// BGP4MP|<time>|STATE|<peer-ip>|<peer-asn>|<old>|<new>
/// ```
pub fn bgpdump_line(elem: &BgpStreamElem) -> String {
    let peer = format!("{}|{}", elem.peer_address, elem.peer_asn);
    match elem.elem_type {
        crate::elem::ElemType::Withdrawal => {
            format!(
                "BGP4MP|{}|W|{peer}|{}",
                elem.time,
                elem.prefix.map(|p| p.to_string()).unwrap_or_default()
            )
        }
        crate::elem::ElemType::PeerState => {
            format!(
                "BGP4MP|{}|STATE|{peer}|{}|{}",
                elem.time,
                elem.old_state
                    .map(|s| s.code().to_string())
                    .unwrap_or_default(),
                elem.new_state
                    .map(|s| s.code().to_string())
                    .unwrap_or_default()
            )
        }
        ty => {
            let marker = if ty == crate::elem::ElemType::RibEntry {
                "TABLE_DUMP2"
            } else {
                "BGP4MP"
            };
            let code = if ty == crate::elem::ElemType::RibEntry {
                "B"
            } else {
                "A"
            };
            format!(
                "{marker}|{}|{code}|{peer}|{}|{}|IGP|{}|0|0|{}|NAG||",
                elem.time,
                elem.prefix.map(|p| p.to_string()).unwrap_or_default(),
                elem.as_path
                    .as_ref()
                    .map(|p| p.to_bgpdump_string())
                    .unwrap_or_default(),
                elem.next_hop.map(|n| n.to_string()).unwrap_or_default(),
                elem.communities
                    .as_ref()
                    .map(|c| c.to_bgpdump_string())
                    .unwrap_or_default(),
            )
        }
    }
}

/// ExaBGP-style JSON line for one elem — the export format the paper
/// lists as planned future work ("support for more data formats, e.g.
/// JSON exports from ExaBGP"). Hand-rolled writer (all values are
/// numbers, plain addresses or controlled identifiers, so no JSON
/// escaping is required beyond control characters and quotes).
pub fn elem_json(record: &BgpStreamRecord, elem: &BgpStreamElem) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_kv(&mut out, "type", &elem.elem_type.code().to_string());
    out.push(',');
    out.push_str(&format!("\"time\":{}", elem.time));
    out.push(',');
    push_kv(&mut out, "project", record.project());
    out.push(',');
    push_kv(&mut out, "collector", record.collector());
    out.push(',');
    out.push_str(&format!("\"peer_asn\":{}", elem.peer_asn.0));
    out.push(',');
    push_kv(&mut out, "peer_address", &elem.peer_address.to_string());
    if let Some(p) = elem.prefix {
        out.push(',');
        push_kv(&mut out, "prefix", &p.to_string());
    }
    if let Some(nh) = elem.next_hop {
        out.push(',');
        push_kv(&mut out, "next_hop", &nh.to_string());
    }
    if let Some(path) = &elem.as_path {
        out.push(',');
        out.push_str("\"as_path\":[");
        for (i, a) in path.asns().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.0.to_string());
        }
        out.push(']');
    }
    if let Some(cs) = &elem.communities {
        if !cs.is_empty() {
            out.push(',');
            out.push_str("\"communities\":[");
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{c}\""));
            }
            out.push(']');
        }
    }
    if let (Some(old), Some(new)) = (elem.old_state, elem.new_state) {
        out.push(',');
        push_kv(&mut out, "old_state", &old.to_string());
        out.push(',');
        push_kv(&mut out, "new_state", &new.to_string());
    }
    out.push('}');
    out
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(&json_string(value));
    out.push('"');
}

/// Escape the characters JSON strings cannot carry verbatim.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::ElemType;
    use crate::record::{DumpPosition, RecordStatus};
    use bgp_types::{AsPath, Asn, Community, CommunitySet, SessionState};

    fn record(elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc01",
            DumpType::Updates,
            0,
            100,
            DumpPosition::Middle,
            RecordStatus::Valid,
            elems,
        )
    }

    #[test]
    fn announcement_line() {
        let elem = BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 1463011200,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("192.0.2.0/24".parse().unwrap()),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 3356, 137])),
            communities: Some(CommunitySet::from_iter([Community::new(3356, 666)])),
            old_state: None,
            new_state: None,
        };
        let rec = record(vec![elem.clone()]);
        let line = elem_line(&rec, &elem);
        assert_eq!(
            line,
            "U|A|1463011200|ris|rrc01|65001|192.0.2.1|192.0.2.0/24|192.0.2.1|65001 3356 137|3356:666||"
        );
    }

    #[test]
    fn state_line_has_empty_route_fields() {
        let elem = BgpStreamElem {
            elem_type: ElemType::PeerState,
            time: 5,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: None,
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: Some(SessionState::OpenConfirm),
            new_state: Some(SessionState::Established),
        };
        let rec = record(vec![elem.clone()]);
        let line = elem_line(&rec, &elem);
        assert_eq!(
            line,
            "U|S|5|ris|rrc01|65001|192.0.2.1|||||OPENCONFIRM|ESTABLISHED"
        );
    }

    #[test]
    fn bgpdump_mode_announcement() {
        let elem = BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 1463011200,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("192.0.2.0/24".parse().unwrap()),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 137])),
            communities: Some(CommunitySet::from_iter([Community::new(3356, 666)])),
            old_state: None,
            new_state: None,
        };
        assert_eq!(
            bgpdump_line(&elem),
            "BGP4MP|1463011200|A|192.0.2.1|65001|192.0.2.0/24|65001 137|IGP|192.0.2.1|0|0|3356:666|NAG||"
        );
        let rib = BgpStreamElem {
            elem_type: ElemType::RibEntry,
            ..elem.clone()
        };
        assert!(bgpdump_line(&rib).starts_with("TABLE_DUMP2|1463011200|B|"));
        let wd = BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            as_path: None,
            next_hop: None,
            communities: None,
            ..elem.clone()
        };
        assert_eq!(
            bgpdump_line(&wd),
            "BGP4MP|1463011200|W|192.0.2.1|65001|192.0.2.0/24"
        );
        let st = BgpStreamElem {
            elem_type: ElemType::PeerState,
            prefix: None,
            as_path: None,
            next_hop: None,
            communities: None,
            old_state: Some(SessionState::OpenConfirm),
            new_state: Some(SessionState::Established),
            ..elem
        };
        assert_eq!(
            bgpdump_line(&st),
            "BGP4MP|1463011200|STATE|192.0.2.1|65001|5|6"
        );
    }

    #[test]
    fn json_export_announcement() {
        let elem = BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 100,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("10.0.0.0/8".parse().unwrap()),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 137])),
            communities: Some(CommunitySet::from_iter([Community::new(1, 2)])),
            old_state: None,
            new_state: None,
        };
        let rec = record(vec![elem.clone()]);
        let json = elem_json(&rec, &elem);
        assert_eq!(
            json,
            "{\"type\":\"A\",\"time\":100,\"project\":\"ris\",\"collector\":\"rrc01\",\
             \"peer_asn\":65001,\"peer_address\":\"192.0.2.1\",\"prefix\":\"10.0.0.0/8\",\
             \"next_hop\":\"192.0.2.1\",\"as_path\":[65001,137],\"communities\":[\"1:2\"]}"
        );
    }

    #[test]
    fn json_export_state_message() {
        let elem = BgpStreamElem {
            elem_type: ElemType::PeerState,
            time: 7,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: None,
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: Some(SessionState::Established),
            new_state: Some(SessionState::Idle),
        };
        let rec = record(vec![elem.clone()]);
        let json = elem_json(&rec, &elem);
        assert!(json.contains("\"old_state\":\"ESTABLISHED\""));
        assert!(json.contains("\"new_state\":\"IDLE\""));
        assert!(!json.contains("prefix"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_string("x\ny"), "x\\u000ay");
    }

    #[test]
    fn record_lines_one_per_elem() {
        let e = BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            time: 1,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("10.0.0.0/8".parse().unwrap()),
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: None,
            new_state: None,
        };
        let rec = record(vec![e.clone(), e]);
        assert_eq!(record_lines(&rec).len(), 2);
    }
}
