//! The `BGPStream elem` structure (Table 1) and record decomposition.
//!
//! An MRT record may group elements of the same type but related to
//! different VPs or prefixes — routes to one prefix from many VPs (RIB
//! dump record) or announcements from one VP to many prefixes sharing
//! a path (Updates record). libBGPStream decomposes each record into a
//! set of elems; this module implements that decomposition, resolving
//! RIB-row peer indexes through the dump's `PEER_INDEX_TABLE`.

use std::net::IpAddr;

use bgp_types::{AsPath, Asn, BgpMessage, CommunitySet, Prefix, SessionState};
use mrt::table_dump_v2::TableDumpV2;
use mrt::{Bgp4mp, MrtBody, MrtRecord, PeerIndexTable};

/// Elem type (Table 1 `type` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemType {
    /// A route from a RIB dump.
    RibEntry,
    /// An announcement from an Updates dump.
    Announcement,
    /// A withdrawal from an Updates dump.
    Withdrawal,
    /// A session state message (RIPE RIS VPs).
    PeerState,
}

impl ElemType {
    /// One-letter code used in ASCII output (`R`/`A`/`W`/`S`).
    pub fn code(self) -> char {
        match self {
            ElemType::RibEntry => 'R',
            ElemType::Announcement => 'A',
            ElemType::Withdrawal => 'W',
            ElemType::PeerState => 'S',
        }
    }
}

/// One elem: the unit of BGP information (Table 1).
///
/// Fields marked conditional in the paper are `Option`s populated
/// based on `elem_type`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BgpStreamElem {
    /// Route/announcement/withdrawal/state-message.
    pub elem_type: ElemType,
    /// Timestamp of the enclosing MRT record.
    pub time: u64,
    /// IP address of the VP.
    pub peer_address: IpAddr,
    /// AS number of the VP.
    pub peer_asn: Asn,
    /// IP prefix (routes, announcements, withdrawals).
    pub prefix: Option<Prefix>,
    /// Next hop (routes, announcements).
    pub next_hop: Option<IpAddr>,
    /// AS path (routes, announcements).
    pub as_path: Option<AsPath>,
    /// Community attribute (routes, announcements).
    pub communities: Option<CommunitySet>,
    /// FSM state before the change (state messages).
    pub old_state: Option<SessionState>,
    /// FSM state after the change (state messages).
    pub new_state: Option<SessionState>,
}

impl BgpStreamElem {
    /// The origin AS of the path, if determinable.
    pub fn origin_asn(&self) -> Option<Asn> {
        self.as_path.as_ref().and_then(|p| p.origin())
    }
}

/// Outcome of decomposing one record.
pub struct ExtractedElems {
    /// The elems, in record order.
    pub elems: Vec<BgpStreamElem>,
    /// True when a RIB row referenced a peer index missing from the
    /// `PEER_INDEX_TABLE` (the record should be marked not-valid).
    pub missing_peer: bool,
}

/// Decompose an MRT record into elems. RIB rows need the dump's peer
/// index table (`pit`).
///
/// Borrowing convenience over [`extract_into`]; clones the record
/// body. The sorted-stream hot path uses [`extract_into`] directly,
/// which moves path attributes into the elems instead of cloning.
pub fn extract(record: &MrtRecord, pit: Option<&PeerIndexTable>) -> ExtractedElems {
    let mut elems = Vec::new();
    let missing_peer = extract_into(record.clone(), pit, &mut elems);
    ExtractedElems {
        elems,
        missing_peer,
    }
}

/// Deprecated alias for [`extract`].
#[deprecated(since = "0.1.0", note = "renamed to `extract`")]
pub fn extract_elems(record: &MrtRecord, pit: Option<&PeerIndexTable>) -> ExtractedElems {
    extract(record, pit)
}

/// Deprecated owned-record variant; extraction always consumes the
/// record internally, so [`extract_into`] (reusing a scratch buffer)
/// or [`extract`] (borrowed) cover every call shape.
#[deprecated(
    since = "0.1.0",
    note = "use `extract_into` (or `extract` for borrowed records)"
)]
pub fn extract_elems_owned(record: MrtRecord, pit: Option<&PeerIndexTable>) -> ExtractedElems {
    let mut elems = Vec::new();
    let missing_peer = extract_into(record, pit, &mut elems);
    ExtractedElems {
        elems,
        missing_peer,
    }
}

/// Deprecated alias for [`extract_into`].
#[deprecated(since = "0.1.0", note = "renamed to `extract_into`")]
pub fn extract_elems_into(
    record: MrtRecord,
    pit: Option<&PeerIndexTable>,
    elems: &mut Vec<BgpStreamElem>,
) -> bool {
    extract_into(record, pit, elems)
}

/// Decompose an MRT record into a caller-provided buffer, consuming
/// the record. Returns the missing-peer flag of [`ExtractedElems`].
///
/// Ownership is what keeps the merge hot path allocation-light: every
/// RIB entry's attributes and the last announcement's attributes are
/// *moved* into their elems (`AsPath`/`CommunitySet` are `Vec`-backed,
/// so a clone is one or more heap allocations each). The filtered hot
/// path extracts every record into one reusable scratch `Vec`
/// (appending; the caller clears between records), filters it in
/// place, and only then right-sizes an owned `Vec` for the survivors —
/// so records whose elems are all filtered away cost zero allocations
/// instead of one-or-two per record.
pub fn extract_into(
    record: MrtRecord,
    pit: Option<&PeerIndexTable>,
    elems: &mut Vec<BgpStreamElem>,
) -> bool {
    let time = record.timestamp as u64;
    let mut missing_peer = false;
    match record.body {
        MrtBody::Bgp4mp(Bgp4mp::Message {
            peer_asn,
            peer_ip,
            message,
            ..
        }) => {
            if let BgpMessage::Update(update) = message {
                elems.reserve(update.withdrawals.len() + update.announcements.len());
                for w in update.withdrawals {
                    elems.push(BgpStreamElem {
                        elem_type: ElemType::Withdrawal,
                        time,
                        peer_address: peer_ip,
                        peer_asn,
                        prefix: Some(w),
                        next_hop: None,
                        as_path: None,
                        communities: None,
                        old_state: None,
                        new_state: None,
                    });
                }
                if let Some(attrs) = update.attrs {
                    let mut announcements = update.announcements;
                    // All but the last announcement clone the shared
                    // attributes; the last takes ownership (the common
                    // single-announcement update never clones).
                    let last = announcements.pop();
                    for a in announcements {
                        elems.push(BgpStreamElem {
                            elem_type: ElemType::Announcement,
                            time,
                            peer_address: peer_ip,
                            peer_asn,
                            prefix: Some(a),
                            next_hop: attrs.next_hop,
                            as_path: Some(attrs.as_path.clone()),
                            communities: Some(attrs.communities.clone()),
                            old_state: None,
                            new_state: None,
                        });
                    }
                    if let Some(a) = last {
                        elems.push(BgpStreamElem {
                            elem_type: ElemType::Announcement,
                            time,
                            peer_address: peer_ip,
                            peer_asn,
                            prefix: Some(a),
                            next_hop: attrs.next_hop,
                            as_path: Some(attrs.as_path),
                            communities: Some(attrs.communities),
                            old_state: None,
                            new_state: None,
                        });
                    }
                }
            }
        }
        MrtBody::Bgp4mp(Bgp4mp::StateChange {
            peer_asn,
            peer_ip,
            old_state,
            new_state,
            ..
        }) => {
            elems.push(BgpStreamElem {
                elem_type: ElemType::PeerState,
                time,
                peer_address: peer_ip,
                peer_asn,
                prefix: None,
                next_hop: None,
                as_path: None,
                communities: None,
                old_state: Some(old_state),
                new_state: Some(new_state),
            });
        }
        MrtBody::TableDumpV2(TableDumpV2::RibRow(row)) => {
            elems.reserve(row.entries.len());
            for entry in row.entries {
                let peer = pit.and_then(|t| t.peers.get(entry.peer_index as usize));
                let Some(peer) = peer else {
                    missing_peer = true;
                    continue;
                };
                // Each entry owns its attributes: move, don't clone.
                elems.push(BgpStreamElem {
                    elem_type: ElemType::RibEntry,
                    time,
                    peer_address: peer.ip,
                    peer_asn: peer.asn,
                    prefix: Some(row.prefix),
                    next_hop: entry.attrs.next_hop,
                    as_path: Some(entry.attrs.as_path),
                    communities: Some(entry.attrs.communities),
                    old_state: None,
                    new_state: None,
                });
            }
        }
        MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(_)) | MrtBody::Unknown(_) => {}
    }
    missing_peer
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{BgpUpdate, PathAttributes};
    use mrt::{PeerEntry, RibEntry, RibRow};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn attrs() -> PathAttributes {
        PathAttributes::route(
            AsPath::from_sequence([65001, 3356, 137]),
            "192.0.2.1".parse().unwrap(),
        )
    }

    fn update_record() -> MrtRecord {
        MrtRecord::bgp4mp(
            77,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Update(BgpUpdate {
                    withdrawals: vec![p("198.51.100.0/24")],
                    attrs: Some(attrs()),
                    announcements: vec![p("203.0.113.0/24"), p("203.0.113.128/25")],
                }),
            },
        )
    }

    #[test]
    fn update_decomposes_into_withdrawal_plus_announcements() {
        let out = extract(&update_record(), None);
        assert!(!out.missing_peer);
        assert_eq!(out.elems.len(), 3);
        assert_eq!(out.elems[0].elem_type, ElemType::Withdrawal);
        assert_eq!(out.elems[0].prefix, Some(p("198.51.100.0/24")));
        assert!(out.elems[0].as_path.is_none());
        assert_eq!(out.elems[1].elem_type, ElemType::Announcement);
        assert_eq!(out.elems[1].origin_asn(), Some(Asn(137)));
        assert_eq!(out.elems[1].time, 77);
        // Announcements share one attribute set (one record, many elems).
        assert_eq!(out.elems[1].as_path, out.elems[2].as_path);
    }

    #[test]
    fn state_change_has_states_only() {
        let rec = MrtRecord::bgp4mp(
            9,
            Bgp4mp::StateChange {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                old_state: SessionState::Established,
                new_state: SessionState::Idle,
            },
        );
        let out = extract(&rec, None);
        assert_eq!(out.elems.len(), 1);
        let e = &out.elems[0];
        assert_eq!(e.elem_type, ElemType::PeerState);
        assert_eq!(e.old_state, Some(SessionState::Established));
        assert_eq!(e.new_state, Some(SessionState::Idle));
        assert!(e.prefix.is_none() && e.as_path.is_none());
    }

    fn pit() -> PeerIndexTable {
        PeerIndexTable {
            collector_bgp_id: 1,
            view_name: String::new(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    ip: "192.0.2.1".parse().unwrap(),
                    asn: Asn(65001),
                },
                PeerEntry {
                    bgp_id: 2,
                    ip: "192.0.2.2".parse().unwrap(),
                    asn: Asn(65002),
                },
            ],
        }
    }

    fn rib_record(peer_indexes: &[u16]) -> MrtRecord {
        MrtRecord::table_dump_v2(
            50,
            TableDumpV2::RibRow(RibRow {
                sequence: 0,
                prefix: p("203.0.113.0/24"),
                entries: peer_indexes
                    .iter()
                    .map(|&i| RibEntry {
                        peer_index: i,
                        originated_time: 10,
                        attrs: attrs(),
                    })
                    .collect(),
            }),
        )
    }

    #[test]
    fn rib_row_resolves_peers() {
        let out = extract(&rib_record(&[0, 1]), Some(&pit()));
        assert!(!out.missing_peer);
        assert_eq!(out.elems.len(), 2);
        assert_eq!(out.elems[0].peer_asn, Asn(65001));
        assert_eq!(out.elems[1].peer_asn, Asn(65002));
        assert!(out.elems.iter().all(|e| e.elem_type == ElemType::RibEntry));
    }

    #[test]
    fn rib_row_with_bad_peer_index_flags_missing() {
        let out = extract(&rib_record(&[0, 9]), Some(&pit()));
        assert!(out.missing_peer);
        assert_eq!(out.elems.len(), 1);
    }

    #[test]
    fn rib_row_without_pit_flags_missing() {
        let out = extract(&rib_record(&[0]), None);
        assert!(out.missing_peer);
        assert!(out.elems.is_empty());
    }

    #[test]
    fn peer_index_table_has_no_elems() {
        let rec = MrtRecord::table_dump_v2(1, TableDumpV2::PeerIndexTable(pit()));
        let out = extract(&rec, None);
        assert!(out.elems.is_empty());
        assert!(!out.missing_peer);
    }

    #[test]
    fn elem_type_codes() {
        assert_eq!(ElemType::RibEntry.code(), 'R');
        assert_eq!(ElemType::Announcement.code(), 'A');
        assert_eq!(ElemType::Withdrawal.code(), 'W');
        assert_eq!(ElemType::PeerState.code(), 'S');
    }
}
