//! JSON-line elem ingest — the ExaBGP-style input path (§7).
//!
//! The paper's future-work list includes "support for more data
//! formats (e.g., JSON exports from ExaBGP)". [`crate::ascii::elem_json`]
//! is the export half; this module is the ingest half: it parses one
//! JSON object per line back into a [`BgpStreamElem`] plus its source
//! annotations, so a stream of JSON lines (a pipe from an ExaBGP-like
//! process) can feed the same analysis code as MRT archives.
//!
//! The parser is a small, dependency-free recursive-descent JSON
//! reader specialized to flat objects of strings, integers, and
//! arrays thereof — exactly the elem schema. It rejects anything the
//! schema cannot represent (nested objects, floats, booleans) rather
//! than guessing.

use std::collections::BTreeMap;

use bgp_types::{AsPath, Asn, Community, CommunitySet, SessionState};

use crate::elem::{BgpStreamElem, ElemType};

/// Errors from [`parse_elem_json`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JsonError {
    /// Structurally invalid JSON.
    Syntax(&'static str),
    /// Valid JSON that does not fit the elem schema.
    Schema(&'static str),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(w) => write!(f, "JSON syntax: {w}"),
            JsonError::Schema(w) => write!(f, "elem schema: {w}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed elem line: the elem plus its provenance fields.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonElem {
    /// The elem.
    pub elem: BgpStreamElem,
    /// `project` field, if present.
    pub project: Option<String>,
    /// `collector` field, if present.
    pub collector: Option<String>,
}

/// One flat JSON value of the elem schema.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Value {
    Str(String),
    Int(u64),
    StrArray(Vec<String>),
    IntArray(Vec<u64>),
}

/// Parse one `elem_json` line back into an elem.
pub fn parse_elem_json(line: &str) -> Result<JsonElem, JsonError> {
    let map = parse_flat_object(line)?;
    let get_str = |key: &str| -> Option<&String> {
        match map.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    };
    let elem_type = match get_str("type").map(String::as_str) {
        Some("R") => ElemType::RibEntry,
        Some("A") => ElemType::Announcement,
        Some("W") => ElemType::Withdrawal,
        Some("S") => ElemType::PeerState,
        Some(_) => return Err(JsonError::Schema("unknown elem type code")),
        None => return Err(JsonError::Schema("missing type")),
    };
    let time = match map.get("time") {
        Some(Value::Int(t)) => *t,
        _ => return Err(JsonError::Schema("missing/non-integer time")),
    };
    let peer_asn = match map.get("peer_asn") {
        Some(Value::Int(a)) => {
            Asn(u32::try_from(*a).map_err(|_| JsonError::Schema("peer_asn out of range"))?)
        }
        _ => return Err(JsonError::Schema("missing/non-integer peer_asn")),
    };
    let peer_address = get_str("peer_address")
        .ok_or(JsonError::Schema("missing peer_address"))?
        .parse()
        .map_err(|_| JsonError::Schema("bad peer_address"))?;
    let prefix = match get_str("prefix") {
        Some(s) => Some(s.parse().map_err(|_| JsonError::Schema("bad prefix"))?),
        None => None,
    };
    let next_hop = match get_str("next_hop") {
        Some(s) => Some(s.parse().map_err(|_| JsonError::Schema("bad next_hop"))?),
        None => None,
    };
    let as_path = match map.get("as_path") {
        Some(Value::IntArray(hops)) => {
            let hops: Result<Vec<u32>, _> = hops.iter().map(|&h| u32::try_from(h)).collect();
            Some(AsPath::from_sequence(hops.map_err(|_| {
                JsonError::Schema("as_path hop out of range")
            })?))
        }
        Some(_) => return Err(JsonError::Schema("as_path must be an integer array")),
        None => None,
    };
    let communities = match map.get("communities") {
        Some(Value::StrArray(cs)) => {
            let mut set = CommunitySet::new();
            for c in cs {
                let (a, v) = c
                    .split_once(':')
                    .ok_or(JsonError::Schema("bad community format"))?;
                let a = a
                    .parse()
                    .map_err(|_| JsonError::Schema("bad community asn"))?;
                let v = v
                    .parse()
                    .map_err(|_| JsonError::Schema("bad community value"))?;
                set.insert(Community::new(a, v));
            }
            Some(set)
        }
        Some(_) => return Err(JsonError::Schema("communities must be a string array")),
        None => {
            // The exporter omits empty community sets; route-carrying
            // elems still have Some(empty) semantics downstream.
            matches!(elem_type, ElemType::RibEntry | ElemType::Announcement).then(CommunitySet::new)
        }
    };
    let parse_state = |key: &'static str| -> Result<Option<SessionState>, JsonError> {
        match get_str(key).map(String::as_str) {
            Some("IDLE") => Ok(Some(SessionState::Idle)),
            Some("CONNECT") => Ok(Some(SessionState::Connect)),
            Some("ACTIVE") => Ok(Some(SessionState::Active)),
            Some("OPENSENT") => Ok(Some(SessionState::OpenSent)),
            Some("OPENCONFIRM") => Ok(Some(SessionState::OpenConfirm)),
            Some("ESTABLISHED") => Ok(Some(SessionState::Established)),
            Some(_) => Err(JsonError::Schema("unknown FSM state")),
            None => Ok(None),
        }
    };
    let elem = BgpStreamElem {
        elem_type,
        time,
        peer_address,
        peer_asn,
        prefix,
        next_hop,
        as_path,
        communities,
        old_state: parse_state("old_state")?,
        new_state: parse_state("new_state")?,
    };
    // Schema cross-checks mirroring Table 1's conditional columns.
    match elem.elem_type {
        ElemType::RibEntry | ElemType::Announcement => {
            if elem.prefix.is_none() || elem.as_path.is_none() {
                return Err(JsonError::Schema("route elem missing prefix/as_path"));
            }
        }
        ElemType::Withdrawal => {
            if elem.prefix.is_none() {
                return Err(JsonError::Schema("withdrawal missing prefix"));
            }
        }
        ElemType::PeerState => {
            if elem.old_state.is_none() || elem.new_state.is_none() {
                return Err(JsonError::Schema("state elem missing states"));
            }
        }
    }
    Ok(JsonElem {
        elem,
        project: get_str("project").cloned(),
        collector: get_str("collector").cloned(),
    })
}

/// Parse a flat JSON object into a key→value map.
fn parse_flat_object(input: &str) -> Result<BTreeMap<String, Value>, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.consume(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.consume(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return Err(JsonError::Syntax("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::Syntax("trailing bytes after object"));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, JsonError> {
        let b = self
            .peek()
            .ok_or(JsonError::Syntax("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.next_byte()? != b {
            return Err(JsonError::Syntax("unexpected byte"));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(JsonError::Syntax("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| JsonError::Syntax("bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::Syntax("bad \\u escape"))?;
                        out.push(
                            char::from_u32(cp).ok_or(JsonError::Syntax("bad \\u code point"))?,
                        );
                        self.pos += 4;
                    }
                    _ => return Err(JsonError::Syntax("unknown escape")),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    if start + width > self.bytes.len() {
                        return Err(JsonError::Syntax("truncated UTF-8"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..start + width])
                            .map_err(|_| JsonError::Syntax("invalid UTF-8"))?,
                    );
                    self.pos = start + width;
                }
            }
        }
    }

    fn integer(&mut self) -> Result<u64, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(JsonError::Syntax("expected digit"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::Schema("floats not in elem schema"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::Syntax("non-utf8 in number"))?
            .parse()
            .map_err(|_| JsonError::Syntax("integer overflow"))
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => Ok(Value::Int(self.integer()?)),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    // Ambiguous empty array: represent as empty
                    // integer array (schema uses arrays for paths and
                    // communities; both reject mixed use downstream).
                    return Ok(Value::IntArray(Vec::new()));
                }
                let mut strs = Vec::new();
                let mut ints = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'"') => {
                            if !ints.is_empty() {
                                return Err(JsonError::Schema("mixed array"));
                            }
                            strs.push(self.string()?);
                        }
                        Some(b'0'..=b'9') => {
                            if !strs.is_empty() {
                                return Err(JsonError::Schema("mixed array"));
                            }
                            ints.push(self.integer()?);
                        }
                        _ => return Err(JsonError::Syntax("unsupported array element")),
                    }
                    self.skip_ws();
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => break,
                        _ => return Err(JsonError::Syntax("expected ',' or ']'")),
                    }
                }
                if strs.is_empty() {
                    Ok(Value::IntArray(ints))
                } else {
                    Ok(Value::StrArray(strs))
                }
            }
            _ => Err(JsonError::Syntax("unsupported value type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ascii::elem_json;
    use crate::record::BgpStreamRecord;

    fn announce_elem() -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 100,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("10.0.0.0/8".parse().unwrap()),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence([65001, 137])),
            communities: Some(CommunitySet::from_iter([Community::new(1, 2)])),
            old_state: None,
            new_state: None,
        }
    }

    fn record_for(elem: BgpStreamElem) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc01",
            broker::DumpType::Updates,
            elem.time,
            elem.time,
            crate::record::DumpPosition::Only,
            crate::record::RecordStatus::Valid,
            vec![elem],
        )
    }

    #[test]
    fn roundtrips_announcement() {
        let elem = announce_elem();
        let rec = record_for(elem.clone());
        let line = elem_json(&rec, &elem);
        let parsed = parse_elem_json(&line).unwrap();
        assert_eq!(parsed.elem, elem);
        assert_eq!(parsed.project.as_deref(), Some("ris"));
        assert_eq!(parsed.collector.as_deref(), Some("rrc01"));
    }

    #[test]
    fn roundtrips_withdrawal() {
        let elem = BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            next_hop: None,
            as_path: None,
            communities: None,
            ..announce_elem()
        };
        let rec = record_for(elem.clone());
        let parsed = parse_elem_json(&elem_json(&rec, &elem)).unwrap();
        assert_eq!(parsed.elem, elem);
    }

    #[test]
    fn roundtrips_state_message() {
        let elem = BgpStreamElem {
            elem_type: ElemType::PeerState,
            prefix: None,
            next_hop: None,
            as_path: None,
            communities: None,
            old_state: Some(SessionState::Established),
            new_state: Some(SessionState::Idle),
            ..announce_elem()
        };
        let rec = record_for(elem.clone());
        let parsed = parse_elem_json(&elem_json(&rec, &elem)).unwrap();
        assert_eq!(parsed.elem, elem);
    }

    #[test]
    fn announcement_without_communities_key_gets_empty_set() {
        // The exporter omits empty sets; ingest restores Some(empty).
        let line = "{\"type\":\"A\",\"time\":5,\"peer_asn\":1,\
                    \"peer_address\":\"10.0.0.1\",\"prefix\":\"10.0.0.0/8\",\
                    \"next_hop\":\"10.0.0.1\",\"as_path\":[1,2]}";
        let parsed = parse_elem_json(line).unwrap();
        assert_eq!(parsed.elem.communities, Some(CommunitySet::new()));
        assert!(parsed.project.is_none());
    }

    #[test]
    fn schema_violations_rejected() {
        // Route without prefix.
        let line = "{\"type\":\"A\",\"time\":5,\"peer_asn\":1,\
                    \"peer_address\":\"10.0.0.1\",\"next_hop\":\"10.0.0.1\",\
                    \"as_path\":[1]}";
        assert!(matches!(parse_elem_json(line), Err(JsonError::Schema(_))));
        // State message without states.
        let line = "{\"type\":\"S\",\"time\":5,\"peer_asn\":1,\
                    \"peer_address\":\"10.0.0.1\"}";
        assert!(matches!(parse_elem_json(line), Err(JsonError::Schema(_))));
        // Unknown type code.
        let line = "{\"type\":\"X\",\"time\":5,\"peer_asn\":1,\
                    \"peer_address\":\"10.0.0.1\"}";
        assert!(matches!(parse_elem_json(line), Err(JsonError::Schema(_))));
    }

    #[test]
    fn syntax_errors_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}trailing",
            "{\"a\":1.5}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1,\"x\"]}",
            "{\"a\":true}",
        ] {
            assert!(parse_elem_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escapes_in_strings() {
        let line = "{\"type\":\"S\",\"time\":1,\"peer_asn\":1,\
                    \"peer_address\":\"10.0.0.1\",\
                    \"old_state\":\"ESTABLISHED\",\"new_state\":\"IDLE\",\
                    \"collector\":\"rrc\\u0030\\n\"}";
        let parsed = parse_elem_json(line).unwrap();
        assert_eq!(parsed.collector.as_deref(), Some("rrc0\n"));
    }
}
