//! The `BGPStream record` structure (§3.3.3).
//!
//! A record wraps one de-serialized MRT record with an error flag and
//! annotations about the originating dump: project and collector
//! names, dump type, the dump's nominal time, and whether the record
//! begins/ends its dump file (so users can collate the records of a
//! single RIB dump).

use broker::{DumpType, SourceId};

use crate::elem::BgpStreamElem;

/// Validity status of a record (the paper's `status` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordStatus {
    /// Record parsed and is usable.
    Valid,
    /// The dump file could not be opened at all.
    CorruptedSource,
    /// The dump was readable up to this point and then a corrupted
    /// read occurred (truncation, bad framing, undecodable BGP body).
    CorruptedRecord,
    /// A structurally valid record of a type/subtype this build does
    /// not interpret.
    Unsupported,
}

impl RecordStatus {
    /// True when the record carries usable data.
    pub fn is_valid(self) -> bool {
        self == RecordStatus::Valid
    }
}

/// Position of a record within its dump file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DumpPosition {
    /// First record of the dump.
    Start,
    /// Neither first nor last.
    Middle,
    /// Last record of the dump.
    End,
    /// The dump's only record (both first and last).
    Only,
}

impl DumpPosition {
    /// Whether this record starts its dump file.
    pub fn is_start(self) -> bool {
        matches!(self, DumpPosition::Start | DumpPosition::Only)
    }

    /// Whether this record ends its dump file.
    pub fn is_end(self) -> bool {
        matches!(self, DumpPosition::End | DumpPosition::Only)
    }
}

/// One annotated record of the sorted stream.
///
/// Source identity (project, collector, dump type) is carried as an
/// interned [`SourceId`] — a `Copy` handle — so producing a record
/// never clones name strings. Use [`BgpStreamRecord::project`] /
/// [`BgpStreamRecord::collector`] / [`BgpStreamRecord::dump_type`]
/// for the resolved values.
#[derive(Clone, Debug)]
pub struct BgpStreamRecord {
    /// Interned source identity (project + collector + dump type).
    pub source: SourceId,
    /// Nominal time of the dump file this record came from.
    pub dump_time: u64,
    /// Record timestamp (from the MRT header).
    pub timestamp: u64,
    /// Position within the dump file.
    pub position: DumpPosition,
    /// Validity status.
    pub status: RecordStatus,
    /// The elems extracted from this record that passed the stream's
    /// elem filters (empty for state-only or non-matching records).
    pub(crate) elems_vec: Vec<BgpStreamElem>,
}

impl BgpStreamRecord {
    /// Construct a record directly — used by tools and tests that
    /// synthesise records without going through a dump file. Interns
    /// the source names (cheap after first sight).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        project: impl AsRef<str>,
        collector: impl AsRef<str>,
        dump_type: DumpType,
        dump_time: u64,
        timestamp: u64,
        position: DumpPosition,
        status: RecordStatus,
        elems: Vec<BgpStreamElem>,
    ) -> Self {
        BgpStreamRecord {
            source: SourceId::intern(project.as_ref(), collector.as_ref(), dump_type),
            dump_time,
            timestamp,
            position,
            status,
            elems_vec: elems,
        }
    }

    /// Collection project ("ris", "routeviews").
    pub fn project(&self) -> &'static str {
        self.source.project()
    }

    /// Collector name.
    pub fn collector(&self) -> &'static str {
        self.source.collector()
    }

    /// RIB or Updates dump.
    pub fn dump_type(&self) -> DumpType {
        self.source.dump_type()
    }

    /// The record's elems (already filtered by the stream's filters).
    pub fn elems(&self) -> &[BgpStreamElem] {
        &self.elems_vec
    }

    /// Iterate over elems, consuming style used in examples.
    pub fn into_elems(self) -> Vec<BgpStreamElem> {
        self.elems_vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_validity() {
        assert!(RecordStatus::Valid.is_valid());
        assert!(!RecordStatus::CorruptedRecord.is_valid());
        assert!(!RecordStatus::CorruptedSource.is_valid());
        assert!(!RecordStatus::Unsupported.is_valid());
    }

    #[test]
    fn position_flags() {
        assert!(DumpPosition::Start.is_start());
        assert!(!DumpPosition::Start.is_end());
        assert!(DumpPosition::End.is_end());
        assert!(DumpPosition::Only.is_start() && DumpPosition::Only.is_end());
        assert!(!DumpPosition::Middle.is_start() && !DumpPosition::Middle.is_end());
    }
}
