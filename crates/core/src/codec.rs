//! Shared binary-codec primitives: the wire vocabulary checkpoints,
//! queue payloads and RIB snapshots are built from.
//!
//! Grown out of the BGPCorsaro queue codec (§6.2.2) and the PR 9
//! checkpoint frames, these moved into the core library once the RIB
//! layer needed the same primitives below the plugin runtime:
//! [`put_prefix`]/[`get_prefix`], [`put_ip`]/[`get_ip`],
//! [`put_route`]/[`get_route`] for the values, canonical sort keys so
//! independently produced sections serialize byte-identically, and
//! [`seal_frame`]/[`open_frame`] for the checksum envelope that turns
//! a serialized state into a durable, torn-write-rejecting artifact
//! (plugin checkpoints and sealed RIB snapshots alike).
//! `corsaro::codec` re-exports everything here, so existing call
//! sites are unaffected.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bgp_types::{AsPath, Asn, Prefix};
use bytes::{Buf, BufMut, BytesMut};

/// Append a prefix in the queue wire form (`v4 flag, length, raw
/// bits`).
pub fn put_prefix(out: &mut BytesMut, prefix: &Prefix) {
    out.put_u8(prefix.is_ipv4() as u8);
    out.put_u8(prefix.len());
    out.put_u128(prefix.raw_bits());
}

/// Decode a [`put_prefix`] prefix, advancing `buf` past it.
pub fn get_prefix(buf: &mut &[u8]) -> Result<Prefix, String> {
    if buf.len() < 1 + 1 + 16 {
        return Err("truncated prefix".into());
    }
    let v4 = buf.get_u8() == 1;
    let len = buf.get_u8();
    let bits = buf.get_u128();
    Ok(if v4 {
        Prefix::v4(Ipv4Addr::from((bits >> 96) as u32), len)
    } else {
        Prefix::v6(Ipv6Addr::from(bits), len)
    })
}

/// Append an IP address (`v4 flag` + 16 bytes; v4 occupies the high
/// 32 bits like [`Prefix::raw_bits`] does).
pub fn put_ip(out: &mut BytesMut, ip: &IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.put_u8(1);
            out.put_u128((u32::from(*v4) as u128) << 96);
        }
        IpAddr::V6(v6) => {
            out.put_u8(0);
            out.put_u128(u128::from(*v6));
        }
    }
}

/// Decode a [`put_ip`] address, advancing `buf` past it.
pub fn get_ip(buf: &mut &[u8]) -> Result<IpAddr, String> {
    if buf.len() < 1 + 16 {
        return Err("truncated ip".into());
    }
    let v4 = buf.get_u8() == 1;
    let bits = buf.get_u128();
    Ok(if v4 {
        IpAddr::V4(Ipv4Addr::from((bits >> 96) as u32))
    } else {
        IpAddr::V6(Ipv6Addr::from(bits))
    })
}

/// Append an optional AS path in the queue wire form: hop count (or
/// `u16::MAX` for "withdrawn"/absent) then one `u32` per hop.
pub fn put_route(out: &mut BytesMut, path: &Option<AsPath>) {
    match path {
        None => out.put_u16(u16::MAX),
        Some(p) => {
            let hops: Vec<Asn> = p.asns().collect();
            out.put_u16(hops.len() as u16);
            for h in hops {
                out.put_u32(h.0);
            }
        }
    }
}

/// Decode a [`put_route`] optional path, advancing `buf` past it.
pub fn get_route(buf: &mut &[u8]) -> Result<Option<AsPath>, String> {
    if buf.len() < 2 {
        return Err("truncated path count".into());
    }
    let hop_count = buf.get_u16();
    if hop_count == u16::MAX {
        return Ok(None);
    }
    if buf.len() < hop_count as usize * 4 {
        return Err("truncated path".into());
    }
    let mut hops = Vec::with_capacity(hop_count as usize);
    for _ in 0..hop_count {
        hops.push(buf.get_u32());
    }
    Ok(Some(AsPath::from_sequence(hops)))
}

/// The canonical ordering key for prefix-keyed serialized sections
/// (v4 before v6, then length, then bits).
pub fn prefix_sort_key(p: &Prefix) -> (bool, u8, u128) {
    (!p.is_ipv4(), p.len(), p.raw_bits())
}

/// The canonical ordering key for IP-keyed serialized sections.
pub fn ip_sort_key(ip: &IpAddr) -> (bool, u128) {
    match ip {
        IpAddr::V4(v4) => (false, (u32::from(*v4) as u128) << 96),
        IpAddr::V6(v6) => (true, u128::from(*v6)),
    }
}

/// FNV-1a over `bytes`; the durable-frame checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap a serialized payload in its durable frame: length prefix,
/// payload, FNV-1a checksum. A write torn anywhere mid-flush — short
/// payload, clipped checksum, flipped bytes — fails [`open_frame`].
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(payload.len() + 12);
    out.put_u32(payload.len() as u32);
    out.put_slice(payload);
    out.put_u64(fnv1a(payload));
    out.to_vec()
}

/// Validate and unwrap a [`seal_frame`] envelope.
pub fn open_frame(frame: &[u8]) -> Result<&[u8], String> {
    if frame.len() < 12 {
        return Err("checkpoint frame truncated".into());
    }
    let mut buf = frame;
    let len = buf.get_u32() as usize;
    if buf.len() != len + 8 {
        return Err(format!(
            "checkpoint frame length mismatch: header says {len}, {} present",
            buf.len().saturating_sub(8)
        ));
    }
    let (payload, mut tail) = buf.split_at(len);
    let want = tail.get_u64();
    if fnv1a(payload) != want {
        return Err("checkpoint frame checksum mismatch (torn write)".into());
    }
    Ok(payload)
}
