//! AS-path regular expressions.
//!
//! libBGPStream's `aspath` filter accepts BGP-style path regexes
//! (`^174`, `_3356_`, `1299$`, …). We implement the same idea over
//! *tokenized* paths: a pattern is a sequence of elements matched
//! against the path's ASN tokens, with optional start/end anchors.
//!
//! Grammar (whitespace- or `_`-separated tokens):
//!
//! * `^`      — anchor at the first hop (must be the first token);
//! * `$`      — anchor at the origin (must be the last token);
//! * `1234`   — a literal ASN;
//! * `?`      — any single ASN;
//! * `*`      — any (possibly empty) run of ASNs.
//!
//! In classic BGP regexps `_` is the token separator, so `_3356_`
//! ("paths through AS3356") parses here to the unanchored single-token
//! pattern `3356`, which matches anywhere in the path — the same
//! semantics.
//!
//! Matching is the standard linear-time two-pointer algorithm for
//! glob-like patterns (a `*` needs only its last backtrack point), so
//! adversarial patterns cannot blow up filtering cost — a requirement
//! for a filter applied to every elem of a live stream.

use bgp_types::{AsPath, Asn};

/// One element of a compiled pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Elem {
    /// A literal ASN.
    Literal(u32),
    /// Any single ASN (`?`).
    AnyOne,
    /// Any run of ASNs (`*`).
    AnyRun,
}

/// Errors from [`AsPathRegex::parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PatternError {
    /// The pattern contains no tokens.
    Empty,
    /// `^` appeared anywhere but the start.
    MisplacedStartAnchor,
    /// `$` appeared anywhere but the end.
    MisplacedEndAnchor,
    /// A token was neither an ASN, `?`, nor `*`.
    BadToken(String),
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "empty AS-path pattern"),
            PatternError::MisplacedStartAnchor => write!(f, "'^' must start the pattern"),
            PatternError::MisplacedEndAnchor => write!(f, "'$' must end the pattern"),
            PatternError::BadToken(t) => write!(f, "bad AS-path pattern token {t:?}"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A compiled AS-path pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsPathRegex {
    anchored_start: bool,
    anchored_end: bool,
    elems: Vec<Elem>,
}

impl std::fmt::Display for AsPathRegex {
    /// The canonical pattern form: space-separated tokens with the
    /// anchors the pattern was compiled with. Parsing the displayed
    /// form yields an equal pattern (`_` separators and redundant
    /// adjacent `*`s are already normalized away at compile time).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.anchored_start {
            f.write_str("^")?;
        }
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match e {
                Elem::Literal(n) => write!(f, "{n}")?,
                Elem::AnyOne => f.write_str("?")?,
                Elem::AnyRun => f.write_str("*")?,
            }
        }
        if self.anchored_end {
            f.write_str("$")?;
        }
        Ok(())
    }
}

impl AsPathRegex {
    /// Compile a pattern string.
    pub fn parse(pattern: &str) -> Result<AsPathRegex, PatternError> {
        let mut s = pattern.trim();
        let mut anchored_start = false;
        let mut anchored_end = false;
        if let Some(rest) = s.strip_prefix('^') {
            anchored_start = true;
            s = rest;
        }
        if let Some(rest) = s.strip_suffix('$') {
            anchored_end = true;
            s = rest;
        }
        if s.contains('^') {
            return Err(PatternError::MisplacedStartAnchor);
        }
        if s.contains('$') {
            return Err(PatternError::MisplacedEndAnchor);
        }
        let mut elems = Vec::new();
        for tok in s
            .split(|c: char| c.is_whitespace() || c == '_')
            .filter(|t| !t.is_empty())
        {
            let elem = match tok {
                "?" => Elem::AnyOne,
                "*" => Elem::AnyRun,
                t => Elem::Literal(
                    t.parse::<u32>()
                        .map_err(|_| PatternError::BadToken(t.to_string()))?,
                ),
            };
            // Collapse adjacent runs: "* *" ≡ "*".
            if elem == Elem::AnyRun && elems.last() == Some(&Elem::AnyRun) {
                continue;
            }
            elems.push(elem);
        }
        if elems.is_empty() && !anchored_start && !anchored_end {
            return Err(PatternError::Empty);
        }
        Ok(AsPathRegex {
            anchored_start,
            anchored_end,
            elems,
        })
    }

    /// Whether the pattern matches a tokenized path.
    ///
    /// An unanchored pattern matches if it matches any substring of
    /// the token sequence (classic regex "search" semantics).
    pub fn matches_tokens(&self, tokens: &[u32]) -> bool {
        // Normalize to a fully-anchored glob match by padding with
        // implicit `*` on unanchored sides.
        let mut pat: Vec<Elem> = Vec::with_capacity(self.elems.len() + 2);
        if !self.anchored_start {
            pat.push(Elem::AnyRun);
        }
        pat.extend_from_slice(&self.elems);
        if !self.anchored_end && pat.last() != Some(&Elem::AnyRun) {
            pat.push(Elem::AnyRun);
        }
        glob_match(&pat, tokens)
    }

    /// Whether the pattern matches an [`AsPath`]. `AS_SET` segments
    /// contribute each member as a token alternative: a literal
    /// matches if *any* set member equals it (the conventional
    /// interpretation — a set hop "contains" all its ASes).
    pub fn matches_path(&self, path: &AsPath) -> bool {
        let has_set = path
            .segments()
            .iter()
            .any(|s| matches!(s, bgp_types::AsPathSegment::Set(_)));
        if !has_set {
            // Fast path: pure-sequence paths (the overwhelming
            // majority).
            let tokens: Vec<u32> = path.asns().map(|asn| asn.0).collect();
            return self.matches_tokens(&tokens);
        }
        // Set-aware matching: an AS_SET is one hop whose token can be
        // any member; sets are rare and small, so exact recursive
        // expansion over set hops is affordable.
        let mut hops: Vec<Vec<u32>> = Vec::new();
        for seg in path.segments() {
            match seg {
                bgp_types::AsPathSegment::Sequence(v) => {
                    hops.extend(v.iter().map(|a| vec![a.0]));
                }
                bgp_types::AsPathSegment::Set(v) => {
                    hops.push(v.iter().map(|a| a.0).collect());
                }
            }
        }
        let mut chosen: Vec<u32> = Vec::with_capacity(hops.len());
        self.try_expansion(&hops, 0, &mut chosen)
    }

    fn try_expansion(&self, hops: &[Vec<u32>], idx: usize, chosen: &mut Vec<u32>) -> bool {
        if idx == hops.len() {
            return self.matches_tokens(chosen);
        }
        for &alt in &hops[idx] {
            chosen.push(alt);
            if self.try_expansion(hops, idx + 1, chosen) {
                chosen.pop();
                return true;
            }
            chosen.pop();
        }
        false
    }

    /// Convenience: does any ASN literal of the pattern equal `asn`?
    /// (Used to pre-filter with cheaper membership tests.)
    pub fn mentions(&self, asn: Asn) -> bool {
        self.elems.contains(&Elem::Literal(asn.0))
    }
}

/// Linear-time glob match of `pat` (anchored both ends) on `toks`.
fn glob_match(pat: &[Elem], toks: &[u32]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pat idx after *, tok idx)
    while t < toks.len() {
        match pat.get(p) {
            Some(Elem::Literal(l)) if *l == toks[t] => {
                p += 1;
                t += 1;
            }
            Some(Elem::AnyOne) => {
                p += 1;
                t += 1;
            }
            Some(Elem::AnyRun) => {
                star = Some((p + 1, t));
                p += 1;
            }
            _ => match star {
                // Backtrack: let the last * swallow one more token.
                Some((sp, st)) => {
                    p = sp;
                    t = st + 1;
                    star = Some((sp, st + 1));
                }
                None => return false,
            },
        }
    }
    while pat.get(p) == Some(&Elem::AnyRun) {
        p += 1;
    }
    p == pat.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(s: &str) -> AsPathRegex {
        AsPathRegex::parse(s).unwrap()
    }

    #[test]
    fn literal_substring_search() {
        let r = re("3356");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(r.matches_tokens(&[3356]));
        assert!(!r.matches_tokens(&[174, 137]));
        assert!(!r.matches_tokens(&[]));
    }

    #[test]
    fn underscore_form() {
        // `_3356_` — classic "paths through AS3356".
        let r = re("_3356_");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(!r.matches_tokens(&[174, 33560, 137]));
    }

    #[test]
    fn start_anchor_is_first_hop() {
        let r = re("^174");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(!r.matches_tokens(&[3356, 174, 137]));
    }

    #[test]
    fn end_anchor_is_origin() {
        let r = re("137$");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(!r.matches_tokens(&[137, 3356]));
    }

    #[test]
    fn fully_anchored_exact_path() {
        let r = re("^174 3356 137$");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(!r.matches_tokens(&[174, 3356, 3356, 137]));
    }

    #[test]
    fn wildcards() {
        let r = re("^174 ? 137$");
        assert!(r.matches_tokens(&[174, 3356, 137]));
        assert!(!r.matches_tokens(&[174, 137]));
        let r = re("^174 * 137$");
        assert!(r.matches_tokens(&[174, 137]));
        assert!(r.matches_tokens(&[174, 1, 2, 3, 137]));
        assert!(!r.matches_tokens(&[1, 174, 137]));
    }

    #[test]
    fn consecutive_hops_pattern() {
        // Adjacency search: does the path contain the link 174-3356?
        let r = re("174 3356");
        assert!(r.matches_tokens(&[9, 174, 3356, 137]));
        assert!(!r.matches_tokens(&[174, 9, 3356]));
    }

    #[test]
    fn empty_tokens_with_star_only() {
        let r = re("*");
        assert!(r.matches_tokens(&[]));
        assert!(r.matches_tokens(&[1, 2]));
    }

    #[test]
    fn anchors_only_matches_everything_like_empty_bounds() {
        // "^$" is the empty path.
        let r = re("^$");
        assert!(r.matches_tokens(&[]));
        assert!(!r.matches_tokens(&[1]));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(AsPathRegex::parse(""), Err(PatternError::Empty));
        assert_eq!(AsPathRegex::parse("   "), Err(PatternError::Empty));
        assert!(matches!(
            AsPathRegex::parse("17x4"),
            Err(PatternError::BadToken(_))
        ));
        assert!(matches!(
            AsPathRegex::parse("174 ^ 137"),
            Err(PatternError::MisplacedStartAnchor)
        ));
        assert!(matches!(
            AsPathRegex::parse("174 $ 137"),
            Err(PatternError::MisplacedEndAnchor)
        ));
    }

    #[test]
    fn star_collapsing() {
        let a = re("174 * * 137");
        let b = re("174 * 137");
        assert_eq!(a, b);
    }

    #[test]
    fn linear_time_on_adversarial_input() {
        // Classic exponential-backtracking killer: many stars against
        // a long non-matching input. Must return quickly.
        let r = re("* 1 * 2 * 3 * 4 * 5 * 99");
        let toks: Vec<u32> = (0..10_000).map(|i| i % 6).collect();
        assert!(!r.matches_tokens(&toks));
    }

    #[test]
    fn mentions() {
        let r = re("^174 * 137$");
        assert!(r.mentions(Asn(174)));
        assert!(r.mentions(Asn(137)));
        assert!(!r.mentions(Asn(3356)));
    }
}
