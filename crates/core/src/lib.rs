//! libBGPStream — the paper's core library (§3.3), in Rust.
//!
//! Provides (i) transparent access to concurrent dumps from multiple
//! collectors, of different collector projects, and of both RIB and
//! Updates; (ii) live data processing; (iii) data extraction,
//! annotation and error checking; (iv) generation of a time-ordered
//! stream of BGP measurement data; (v) an API through which the user
//! specifies and receives a stream.
//!
//! The shape mirrors the C API: a *configuration phase* (builder:
//! projects, collectors, record types, time interval or live mode,
//! content filters) followed by a *reading phase* (`next_record()` in
//! a loop, then per-record elem iteration):
//!
//! ```no_run
//! use bgpstream::{BgpStream, Filters};
//! use broker::{DumpType, Index, LocalBroker};
//!
//! let index = Index::shared();
//! let mut stream = BgpStream::builder()
//!     .broker_client(LocalBroker::shared(index))
//!     .project("ris")
//!     .record_type(DumpType::Updates)
//!     .interval(0, Some(3600))
//!     .start();
//! while let Some(record) = stream.next_record() {
//!     for elem in record.elems() {
//!         println!("{}", elem.peer_asn);
//!     }
//! }
//! ```
//!
//! Modules:
//!
//! * [`record`] — `BGPStream record`: the de-serialized MRT record
//!   plus error flag and annotations (project, collector, dump type,
//!   dump time, position-in-dump);
//! * [`elem`] — `BGPStream elem` (Table 1) and extraction from
//!   records, including peer resolution through RIB `PEER_INDEX_TABLE`s;
//! * [`filter`] — elem-level filters (peer, prefix with four match
//!   modes, communities with wildcards, elem type, AS-path regex, IP
//!   version);
//! * [`aspath_re`] — BGP-style AS-path regular expressions backing the
//!   `aspath` filter;
//! * [`filter_lang`] — the `parse_filter_string` mini-language
//!   (`"collector rrc00 and prefix more 10.0.0.0/8 and comm *:666"`);
//! * [`codec`] — shared binary-codec primitives (values, canonical
//!   sort keys, durable checksum frames) reused by plugin checkpoints
//!   and RIB snapshots;
//! * [`sort`] — the §3.3.4 sorted-stream machinery: overlap-partition
//!   of dump-file sets and per-group multi-way merge;
//! * [`stream`] — the user-facing stream: broker-windowed iteration,
//!   historical and live modes (client-pull, blocking poll);
//! * [`ascii`] — `bgpdump`-style one-line rendering (BGPReader).

#![forbid(unsafe_code)]

pub mod ascii;
pub mod aspath_re;
pub mod codec;
pub mod elem;
pub mod filter;
pub mod filter_lang;
pub mod json_input;
pub mod record;
pub mod sort;
pub mod stream;

pub use aspath_re::AsPathRegex;
pub use broker::{BrokerClient, BrokerError, LeaseId};
pub use broker::{SourceId, SourceMeta};
pub use elem::{BgpStreamElem, ElemType};
pub use filter::{CommunityFilter, CompiledFilters, Filters, IpVersion};
pub use filter_lang::{parse_filter_string, FilterLangError, ParsedFilter};
pub use json_input::{parse_elem_json, JsonElem, JsonError};
pub use mrt::DecodeMode;
pub use record::{BgpStreamRecord, DumpPosition, RecordStatus};
pub use stream::{
    BatchStep, BgpStream, BgpStreamBuilder, Clock, ElemSource, StreamMode, StreamStartError,
    StreamStats,
};
