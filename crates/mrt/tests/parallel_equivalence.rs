//! The parallel-decode equivalence harness.
//!
//! `DecodeMode::Parallel(n)` must be *indistinguishable* from
//! sequential decode for every archive — valid, truncated mid-record,
//! or byte-mutated — and for every worker count: the same records, the
//! same single trailing error (if any), in the same positions. These
//! tests drive random archives and corruption schedules through both
//! paths and require byte-identical result sequences, plus a unit
//! suite pinning the chunk-boundary edge cases.

use bgp_types::{Asn, BgpMessage, SessionState};
use mrt::table_dump_v2::{PeerEntry, PeerIndexTable, RibEntry, RibRow, TableDumpV2};
use mrt::{
    Bgp4mp, ChunkCtx, ChunkedReader, MrtError, MrtHeader, MrtRecord, MrtSliceReader, MrtWriter,
    ParDecoder, Step,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- fixtures

fn keepalive(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    )
}

fn state_change(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::StateChange {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            old_state: SessionState::OpenConfirm,
            new_state: SessionState::Established,
        },
    )
}

fn pit(ts: u32, peers: u16) -> MrtRecord {
    MrtRecord::table_dump_v2(
        ts,
        TableDumpV2::PeerIndexTable(PeerIndexTable {
            collector_bgp_id: 0xC0_00_02_FF,
            view_name: String::new(),
            peers: (0..peers)
                .map(|i| PeerEntry {
                    bgp_id: 1000 + u32::from(i),
                    ip: format!("192.0.2.{}", i + 1).parse().unwrap(),
                    asn: Asn(65000 + u32::from(i)),
                })
                .collect(),
        }),
    )
}

fn rib_row(ts: u32, seq: u32, entries: u16) -> MrtRecord {
    MrtRecord::table_dump_v2(
        ts,
        TableDumpV2::RibRow(RibRow {
            sequence: seq,
            prefix: format!("10.{}.0.0/16", seq % 200).parse().unwrap(),
            entries: (0..entries)
                .map(|i| RibEntry {
                    peer_index: i,
                    originated_time: ts,
                    attrs: bgp_types::PathAttributes::route(
                        bgp_types::AsPath::from_sequence([65001, 3356, 137]),
                        "192.0.2.1".parse::<std::net::IpAddr>().unwrap(),
                    ),
                })
                .collect(),
        }),
    )
}

fn unknown(ts: u32, len: usize) -> MrtRecord {
    MrtRecord {
        timestamp: ts,
        body: mrt::MrtBody::Unknown(bytes::Bytes::from(vec![0xAB; len])),
    }
}

#[derive(Clone, Debug)]
enum Rec {
    Keepalive,
    StateChange,
    Pit(u16),
    Rib(u16),
    Unknown(usize),
}

fn build_archive(recs: &[Rec]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    let mut seq = 0u32;
    for (i, r) in recs.iter().enumerate() {
        let ts = i as u32 * 3;
        let rec = match r {
            Rec::Keepalive => keepalive(ts),
            Rec::StateChange => state_change(ts),
            Rec::Pit(peers) => pit(ts, *peers),
            Rec::Rib(entries) => {
                seq += 1;
                rib_row(ts, seq, *entries)
            }
            Rec::Unknown(len) => unknown(ts, *len),
        };
        w.write(&rec).unwrap();
    }
    buf
}

#[derive(Clone, Debug)]
enum Corruption {
    None,
    /// Cut the archive at this fraction (permille) of its length.
    Truncate(u32),
    /// XOR one byte at this fraction (permille) of the length.
    Mutate(u32, u8),
    /// Append raw garbage.
    GarbageTail(usize),
}

fn corrupt(mut bytes: Vec<u8>, c: &Corruption) -> Vec<u8> {
    match *c {
        Corruption::None => {}
        Corruption::Truncate(permille) => {
            let cut = (bytes.len() as u64 * u64::from(permille) / 1000) as usize;
            bytes.truncate(cut);
        }
        Corruption::Mutate(permille, xor) => {
            if !bytes.is_empty() {
                let at = ((bytes.len() - 1) as u64 * u64::from(permille) / 1000) as usize;
                bytes[at] ^= xor | 1; // never a no-op flip
            }
        }
        Corruption::GarbageTail(n) => bytes.extend(std::iter::repeat_n(0xEE, n)),
    }
    bytes
}

// ---------------------------------------------------------------- drivers

type Outcome = Vec<Result<MrtRecord, MrtError>>;

/// Gold reference: the slurping slice reader.
fn decode_slice(bytes: &[u8]) -> Outcome {
    let mut r = MrtSliceReader::new(bytes.to_vec());
    std::iter::from_fn(|| r.next()).collect()
}

/// The streaming sequential reader, with a tiny refill window so
/// records routinely straddle refills.
fn decode_chunked(bytes: &[u8], read_size: usize) -> Outcome {
    let mut r = ChunkedReader::from_bytes(bytes.to_vec()).with_read_size(read_size);
    std::iter::from_fn(|| r.next()).collect()
}

/// The parallel front-end with an explicit chunk byte target.
fn decode_parallel(bytes: &[u8], workers: usize, chunk_bytes: usize) -> Outcome {
    let src = ChunkedReader::from_bytes(bytes.to_vec()).with_read_size(64);
    let dec: ParDecoder<Result<MrtRecord, MrtError>> = ParDecoder::spawn_with_chunk_bytes(
        src,
        workers,
        chunk_bytes,
        |_| (),
        |_: &mut (), _: &ChunkCtx, h: &MrtHeader, b: &[u8]| match MrtRecord::decode(h, b) {
            Ok(r) => Step::Item(Ok(r)),
            Err(e) => Step::Terminal(Err(e)),
        },
        Err,
    );
    dec.collect_all()
}

fn assert_equivalent(bytes: &[u8]) {
    let gold = decode_slice(bytes);
    for read_size in [7, 64] {
        assert_eq!(
            decode_chunked(bytes, read_size),
            gold,
            "chunked reader (read_size {read_size}) diverged from slice reader"
        );
    }
    for workers in [1, 2, 4, 8] {
        for chunk_bytes in [1, 96, 1 << 16] {
            assert_eq!(
                decode_parallel(bytes, workers, chunk_bytes),
                gold,
                "parallel decode (workers {workers}, chunk_bytes {chunk_bytes}) \
                 diverged from sequential"
            );
        }
    }
}

// ---------------------------------------------------------------- proptest

fn rec_strategy() -> impl Strategy<Value = Rec> {
    prop_oneof![
        Just(Rec::Keepalive),
        Just(Rec::StateChange),
        (1u16..4).prop_map(Rec::Pit),
        (0u16..3).prop_map(Rec::Rib),
        (0usize..32).prop_map(Rec::Unknown),
    ]
}

fn corruption_strategy() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::None),
        (1u32..1000).prop_map(Corruption::Truncate),
        ((1u32..1000), any::<u8>()).prop_map(|(p, x)| Corruption::Mutate(p, x)),
        (1usize..24).prop_map(Corruption::GarbageTail),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_matches_sequential_for_any_archive_and_corruption(
        recs in proptest::collection::vec(rec_strategy(), 0..24),
        corruption in corruption_strategy(),
    ) {
        let bytes = corrupt(build_archive(&recs), &corruption);
        assert_equivalent(&bytes);
    }
}

// ------------------------------------------------------- chunk boundaries

/// A record straddling a chunk edge: chunk_bytes of 1 makes every
/// record its own chunk; 96 cuts mid-record-stream. All must agree.
#[test]
fn record_straddles_chunk_edge() {
    let bytes = build_archive(&[
        Rec::Keepalive,
        Rec::StateChange,
        Rec::Rib(2),
        Rec::Keepalive,
        Rec::Unknown(17),
    ]);
    assert_equivalent(&bytes);
}

/// A PIT as the very first record leaves the pre-PIT stage empty: no
/// zero-record chunk may be dispatched, and the sequence is unchanged.
#[test]
fn leading_pit_means_zero_record_prefix_chunk() {
    let bytes = build_archive(&[Rec::Pit(3), Rec::Rib(3), Rec::Rib(1), Rec::Keepalive]);
    assert_equivalent(&bytes);
    // And PIT-adjacent cuts: consecutive PITs, PIT at the tail.
    let bytes = build_archive(&[Rec::Pit(1), Rec::Pit(2), Rec::Keepalive, Rec::Pit(3)]);
    assert_equivalent(&bytes);
}

/// A final partial record (truncated header, truncated body) ends both
/// modes with the identical trailing error.
#[test]
fn final_partial_record_truncates_identically() {
    let whole = build_archive(&[Rec::Keepalive, Rec::StateChange, Rec::Keepalive]);
    for cut in [whole.len() - 1, whole.len() - 5, whole.len() - 13, 5, 1] {
        let bytes = &whole[..cut];
        let gold = decode_slice(bytes);
        assert!(
            matches!(gold.last(), Some(Err(_))),
            "cut {cut} must end in an error"
        );
        assert_equivalent(bytes);
    }
}

/// Empty input: no records, no errors, in every mode.
#[test]
fn empty_archive_yields_nothing() {
    assert_equivalent(&[]);
    assert!(decode_parallel(&[], 4, 1).is_empty());
}

/// An oversized length field poisons both paths at the same position.
#[test]
fn oversized_record_poisons_identically() {
    let mut bytes = build_archive(&[Rec::Keepalive]);
    // Hand-craft a header claiming a 2 MiB body.
    bytes.extend_from_slice(&7u32.to_be_bytes());
    bytes.extend_from_slice(&16u16.to_be_bytes());
    bytes.extend_from_slice(&4u16.to_be_bytes());
    bytes.extend_from_slice(&(2u32 << 20).to_be_bytes());
    let gold = decode_slice(&bytes);
    assert_eq!(gold.len(), 2);
    assert!(matches!(gold[1], Err(MrtError::OversizedRecord(_))));
    assert_equivalent(&bytes);
}

/// After the single trailing error, every driver keeps returning
/// nothing (the poisoning contract holds for the parallel path too).
#[test]
fn parallel_poisons_after_first_error() {
    let mut bytes = build_archive(&[Rec::Keepalive, Rec::Keepalive]);
    bytes.extend_from_slice(&[0xFF; 7]);
    let src = ChunkedReader::from_bytes(bytes).with_read_size(16);
    let mut dec = ParDecoder::decode_records(src, 4);
    assert!(dec.next().unwrap().is_ok());
    assert!(dec.next().unwrap().is_ok());
    assert!(dec.next().unwrap().is_err());
    for _ in 0..4 {
        assert!(dec.next().is_none(), "poisoned stream must stay ended");
    }
}

/// A panicking map must not deadlock the reorder stage: the consumer
/// re-raises after draining the pool.
#[test]
fn worker_panic_propagates_without_deadlock() {
    let bytes = build_archive(&[Rec::Keepalive, Rec::StateChange, Rec::Keepalive]);
    let result = std::panic::catch_unwind(|| {
        let src = ChunkedReader::from_bytes(bytes);
        let mut dec: ParDecoder<u32> = ParDecoder::spawn_with_chunk_bytes(
            src,
            2,
            1,
            |_| (),
            |_: &mut (), _: &ChunkCtx, h: &MrtHeader, _: &[u8]| {
                if h.timestamp >= 3 {
                    panic!("boom");
                }
                Step::Item(h.timestamp)
            },
            |_| 0,
        );
        while dec.next().is_some() {}
    });
    let err = result.expect_err("worker panic must reach the consumer");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("worker panicked"),
        "panic must identify the decode pool, got: {msg}"
    );
}
