//! loom-lite model tests: the chunk reorder stage of `mrt::par`.
//!
//! Run with `cargo test -p mrt --features loom-lite`.
//!
//! The in-order release invariant — no record is delivered before
//! every record of every earlier chunk — is easy to state and easy to
//! break with an off-by-one in the release condition. These tests let
//! the schedule-exploring checker drive producers and consumer through
//! adversarial interleavings, both against the real [`ParDecoder`]
//! pipeline and against a hand-rolled producer/consumer pair over
//! [`Reorder`] directly.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use bgp_types::{Asn, BgpMessage};
use bsync::model::{explore, Builder};
use mrt::{Bgp4mp, ChunkedReader, MrtRecord, MrtWriter, ParDecoder, Reorder, Step};

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

fn archive(n: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for ts in 0..n {
        w.write(&MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Keepalive,
            },
        ))
        .unwrap();
    }
    buf
}

/// Two producer threads complete chunks in whatever order the
/// scheduler picks; the consumer feeds a [`Reorder`] and must release
/// strictly `0, 1, 2, 3` on *every* interleaving — never a successor
/// before its predecessor.
#[test]
fn reorder_releases_strictly_in_order_under_races() {
    let report = explore(&budget(), || {
        let (tx, rx) = bsync::channel::unbounded::<(u64, u64)>();
        let tx2 = tx.clone();
        let even = bsync::thread::spawn_named("even", move || {
            for seq in [0u64, 2] {
                let _ = tx.send((seq, seq * 10));
            }
        });
        let odd = bsync::thread::spawn_named("odd", move || {
            for seq in [1u64, 3] {
                let _ = tx2.send((seq, seq * 10));
            }
        });
        let mut reorder = Reorder::new();
        let mut released = Vec::new();
        while released.len() < 4 {
            let (seq, v) = rx.recv().expect("producers alive until all sent");
            reorder.insert(seq, v);
            while let Some(v) = reorder.pop_ready() {
                released.push(v);
            }
        }
        even.join().expect("even producer");
        odd.join().expect("odd producer");
        assert_eq!(released, vec![0, 10, 20, 30], "released out of order");
        assert_eq!(reorder.buffered(), 0);
        assert_eq!(reorder.next_seq(), 4);
    })
    .expect("no interleaving may release out of order");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// The real pipeline: one-record chunks fan out to two workers, so
/// chunk completion order is fully schedule-dependent, yet the
/// consumer must observe timestamps `0..4` in order on every schedule.
#[test]
fn parallel_decode_releases_in_order_under_all_schedules() {
    let bytes = archive(4);
    let report = explore(&budget(), move || {
        let mut dec = ParDecoder::spawn_with_chunk_bytes(
            ChunkedReader::from_bytes(bytes.clone()),
            2,
            1, // every record becomes its own chunk
            |_| (),
            |_, _, header, _| Step::Item(header.timestamp),
            |_| u32::MAX,
        );
        let mut got = Vec::new();
        while let Some(ts) = dec.next() {
            got.push(ts);
        }
        assert_eq!(got, vec![0, 1, 2, 3], "parallel decode reordered records");
    })
    .expect("no interleaving may reorder or drop a record");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// A panicking map must end every schedule in the clean re-raised
/// panic — never a deadlock with the consumer blocked on a result that
/// will not come, and never silent success.
#[test]
fn worker_panic_is_reraised_not_deadlocked() {
    let bytes = archive(4);
    let failure = explore(&budget(), move || {
        let mut dec = ParDecoder::spawn_with_chunk_bytes(
            ChunkedReader::from_bytes(bytes.clone()),
            2,
            1,
            |_| (),
            |_, _, header, _| {
                if header.timestamp == 2 {
                    panic!("map blew up");
                }
                Step::Item(header.timestamp)
            },
            |_| u32::MAX,
        );
        while dec.next().is_some() {}
    })
    .expect_err("a panicking map must fail every schedule");
    assert!(
        failure.kind.contains("worker panicked"),
        "expected the re-raised worker panic, got: {}",
        failure.kind
    );
    assert!(
        !failure.kind.contains("deadlock"),
        "worker panic must not deadlock the consumer: {}",
        failure.kind
    );
}

/// Canary: a consumer with a deliberately broken release condition —
/// it ships each value as it arrives instead of consulting
/// [`Reorder::pop_ready`]. The checker must find a schedule where the
/// out-of-order producer wins the race, and the recorded schedule must
/// replay that exact failure.
#[test]
fn canary_eager_release_is_caught_and_replayed() {
    let racy = || {
        let (tx, rx) = bsync::channel::unbounded::<(u64, u64)>();
        let tx2 = tx.clone();
        let first = bsync::thread::spawn_named("first", move || {
            let _ = tx.send((0u64, 0));
        });
        let second = bsync::thread::spawn_named("second", move || {
            let _ = tx2.send((1u64, 10));
        });
        let mut reorder = Reorder::new();
        let mut released = Vec::new();
        for _ in 0..2 {
            let (seq, v) = rx.recv().expect("producers alive");
            // BUG: arrival order is not release order. The insert is
            // bookkeeping only; the value goes straight out.
            reorder.insert(seq, v);
            released.push(v);
        }
        first.join().expect("first producer");
        second.join().expect("second producer");
        assert_eq!(released, vec![0, 10], "released out of order");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the eager release");
    assert!(
        failure.kind.contains("released out of order"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the reorder");
    assert!(again.kind.contains("released out of order"));
}
