//! Streaming-decompression round trips for [`ChunkedReader`]:
//! gzip member concatenation, truncation mid-member, and garbage after
//! valid data must all surface as *typed* errors (`MrtError::Io` /
//! framing statuses) — never a panic — with the poisoning contract
//! (one `Some(Err)`, then `None`) intact.

use std::io::Write as _;

use bgp_types::{Asn, BgpMessage};
use flate_lite::{write::GzEncoder, Compression};
use mrt::{Bgp4mp, ChunkedReader, MrtError, MrtRecord, MrtWriter, ParDecoder};

fn keepalive(ts: u32) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Keepalive,
        },
    )
}

fn archive(stamps: &[u32]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for &ts in stamps {
        w.write(&keepalive(ts)).unwrap();
    }
    buf
}

fn gzip(data: &[u8], level: Compression) -> Vec<u8> {
    let mut enc = GzEncoder::new(Vec::new(), level);
    enc.write_all(data).unwrap();
    enc.finish().unwrap()
}

/// Drain a reader into (timestamps, optional trailing error),
/// asserting the poisoning contract: after one `Err`, only `None`.
fn drain(mut r: ChunkedReader) -> (Vec<u32>, Option<MrtError>) {
    let mut stamps = Vec::new();
    let mut error = None;
    while let Some(item) = r.next() {
        match item {
            Ok(rec) => stamps.push(rec.timestamp),
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    for _ in 0..3 {
        assert!(r.next().is_none(), "poisoned/ended reader must stay ended");
    }
    (stamps, error)
}

#[test]
fn gzip_roundtrip_matches_plain() {
    let plain = archive(&[1, 2, 3, 4, 5]);
    for level in [
        Compression::none(),
        Compression::fast(),
        Compression::best(),
    ] {
        let gz = gzip(&plain, level);
        let r = ChunkedReader::from_bytes(gz).with_read_size(11);
        assert!(r.is_gzip());
        let (stamps, err) = drain(r);
        assert_eq!(stamps, vec![1, 2, 3, 4, 5]);
        assert!(err.is_none(), "clean archive must not error: {err:?}");
    }
    let r = ChunkedReader::from_bytes(plain);
    assert!(!r.is_gzip());
    let (stamps, err) = drain(r);
    assert_eq!((stamps, err), (vec![1, 2, 3, 4, 5], None));
}

#[test]
fn concatenated_members_decode_as_one_stream() {
    // RouteViews-style: independently gzipped parts concatenated into
    // one file. RFC 1952 says a decoder should process all members.
    let mut gz = gzip(&archive(&[10, 20]), Compression::fast());
    gz.extend(gzip(&archive(&[30]), Compression::best()));
    gz.extend(gzip(&archive(&[40, 50]), Compression::none()));
    let (stamps, err) = drain(ChunkedReader::from_bytes(gz).with_read_size(7));
    assert_eq!(stamps, vec![10, 20, 30, 40, 50]);
    assert!(
        err.is_none(),
        "member concatenation must be seamless: {err:?}"
    );
}

#[test]
fn truncated_mid_member_yields_typed_io_error() {
    let gz = gzip(&archive(&[1, 2, 3, 4, 5, 6, 7, 8]), Compression::fast());
    // Cut at several depths: inside the header, inside the deflate
    // stream, inside the trailer. All must end in exactly one typed
    // error (or clean EOF if the cut lands on a record boundary of the
    // decompressed stream) — never a panic.
    for cut in [gz.len() - 1, gz.len() - 4, gz.len() / 2, 12, 5, 1] {
        let (stamps, err) = drain(ChunkedReader::from_bytes(gz[..cut].to_vec()).with_read_size(9));
        match err {
            Some(MrtError::Io(_)) | Some(MrtError::Truncated(_)) => {}
            Some(other) => panic!("cut {cut}: expected Io/Truncated, got {other:?}"),
            None => panic!("cut {cut}: truncation must surface an error (got {stamps:?})"),
        }
    }
}

#[test]
fn garbage_after_valid_member_yields_typed_io_error() {
    let mut gz = gzip(&archive(&[100, 200]), Compression::fast());
    gz.extend_from_slice(b"this is not a gzip member");
    let (stamps, err) = drain(ChunkedReader::from_bytes(gz).with_read_size(13));
    // Both records decode before the trailing garbage is reached.
    assert_eq!(stamps, vec![100, 200]);
    match err {
        Some(MrtError::Io(msg)) => {
            assert!(
                msg.contains("trailing garbage"),
                "error should identify the fault: {msg}"
            );
        }
        other => panic!("expected MrtError::Io for trailing garbage, got {other:?}"),
    }
}

#[test]
fn corrupted_compressed_payload_never_panics() {
    let gz = gzip(&archive(&[1, 2, 3, 4]), Compression::best());
    // Flip every byte position in turn; every variant must drain to a
    // typed outcome (possibly clean if the flip is immaterial).
    for at in 0..gz.len() {
        let mut bad = gz.clone();
        bad[at] ^= 0x55;
        if bad[..2] != [0x1f, 0x8b] {
            // Magic destroyed: sniffed as plain MRT and framed as
            // such; still must not panic.
            let _ = drain(ChunkedReader::from_bytes(bad));
            continue;
        }
        let _ = drain(ChunkedReader::from_bytes(bad).with_read_size(7));
    }
}

#[test]
fn open_sniffs_gzip_files_on_disk() {
    let dir = std::env::temp_dir().join(format!(
        "chunked-reader-open-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let plain_path = dir.join("plain.mrt");
    let gz_path = dir.join("dump.mrt.gz");
    let plain = archive(&[7, 8, 9]);
    std::fs::write(&plain_path, &plain).unwrap();
    std::fs::write(&gz_path, gzip(&plain, Compression::fast())).unwrap();

    let r = ChunkedReader::open(&plain_path).unwrap();
    assert!(!r.is_gzip());
    assert_eq!(drain(r).0, vec![7, 8, 9]);

    let mut r = ChunkedReader::open(&gz_path).unwrap();
    assert!(r.is_gzip());
    // peek_header decompresses just enough to probe, without
    // consuming: the subsequent drain still sees every record.
    let head = r.peek_header().unwrap().expect("first header");
    assert_eq!(head.timestamp, 7);
    assert_eq!(drain(r).0, vec![7, 8, 9]);

    assert!(ChunkedReader::open(&dir.join("missing")).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_decode_streams_through_gzip() {
    // End-to-end: open → inflate (streaming) → frame → parallel decode
    // → in-order merge, matching the sequential result.
    let stamps: Vec<u32> = (0..500).collect();
    let gz = gzip(&archive(&stamps), Compression::fast());
    let seq = drain(ChunkedReader::from_bytes(gz.clone()).with_read_size(31));
    assert_eq!(seq.0.len(), 500);
    let mut par = ParDecoder::decode_records(ChunkedReader::from_bytes(gz).with_read_size(31), 4);
    let mut got = Vec::new();
    while let Some(item) = par.next() {
        got.push(item.expect("clean archive").timestamp);
    }
    assert_eq!(got, seq.0);
}

#[test]
fn empty_and_tiny_inputs_are_clean_or_typed() {
    assert_eq!(drain(ChunkedReader::from_bytes(Vec::new())), (vec![], None));
    // A bare gzip magic with nothing behind it: typed error.
    let (stamps, err) = drain(ChunkedReader::from_bytes(vec![0x1f, 0x8b]));
    assert!(stamps.is_empty());
    assert!(matches!(err, Some(MrtError::Io(_))), "got {err:?}");
    // One stray byte: framed as a truncated MRT header.
    let (_, err) = drain(ChunkedReader::from_bytes(vec![0x00]));
    assert!(matches!(err, Some(MrtError::Truncated(_))), "got {err:?}");
}
