//! Property tests: MRT record and file round-trips.

use std::net::{IpAddr, Ipv4Addr};

use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, SessionState};
use mrt::{Bgp4mp, MrtReader, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRow};
use proptest::prelude::*;

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 8u8..=32).prop_map(|(addr, len)| Prefix::v4(Ipv4Addr::from(addr), len))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::collection::vec(1u32..1_000_000, 1..6),
        any::<u32>(),
    )
        .prop_map(|(path, nh)| {
            PathAttributes::route(AsPath::from_sequence(path), IpAddr::V4(Ipv4Addr::from(nh)))
        })
}

fn arb_record() -> impl Strategy<Value = MrtRecord> {
    prop_oneof![
        // BGP4MP update message
        (any::<u32>(), arb_prefix_v4(), arb_attrs(), 1u32..100_000).prop_map(
            |(ts, pfx, attrs, asn)| {
                MrtRecord::bgp4mp(
                    ts,
                    Bgp4mp::Message {
                        peer_asn: Asn(asn),
                        local_asn: Asn(6447),
                        peer_ip: "192.0.2.1".parse().unwrap(),
                        local_ip: "192.0.2.254".parse().unwrap(),
                        message: BgpMessage::Update(BgpUpdate::announce(vec![pfx], attrs)),
                    },
                )
            }
        ),
        // BGP4MP state change
        (any::<u32>(), 1u16..=6, 1u16..=6).prop_map(|(ts, old, new)| {
            MrtRecord::bgp4mp(
                ts,
                Bgp4mp::StateChange {
                    peer_asn: Asn(65001),
                    local_asn: Asn(12654),
                    peer_ip: "192.0.2.7".parse().unwrap(),
                    local_ip: "192.0.2.254".parse().unwrap(),
                    old_state: SessionState::from_code(old).unwrap(),
                    new_state: SessionState::from_code(new).unwrap(),
                },
            )
        }),
        // TABLE_DUMP_V2 RIB row
        (
            any::<u32>(),
            any::<u32>(),
            arb_prefix_v4(),
            proptest::collection::vec((any::<u16>(), any::<u32>(), arb_attrs()), 0..5)
        )
            .prop_map(|(ts, seq, prefix, entries)| {
                MrtRecord::table_dump_v2(
                    ts,
                    mrt::table_dump_v2::TableDumpV2::RibRow(RibRow {
                        sequence: seq,
                        prefix,
                        entries: entries
                            .into_iter()
                            .map(|(peer_index, originated_time, attrs)| RibEntry {
                                peer_index,
                                originated_time,
                                attrs,
                            })
                            .collect(),
                    }),
                )
            }),
        // Peer index table
        (
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), any::<u32>(), 1u32..1_000_000), 0..8)
        )
            .prop_map(|(ts, peers)| {
                MrtRecord::table_dump_v2(
                    ts,
                    mrt::table_dump_v2::TableDumpV2::PeerIndexTable(PeerIndexTable {
                        collector_bgp_id: 7,
                        view_name: String::new(),
                        peers: peers
                            .into_iter()
                            .map(|(bgp_id, ip, asn)| PeerEntry {
                                bgp_id,
                                ip: IpAddr::V4(Ipv4Addr::from(ip)),
                                asn: Asn(asn),
                            })
                            .collect(),
                    }),
                )
            }),
    ]
}

proptest! {
    #[test]
    fn record_roundtrip(rec in arb_record()) {
        let wire = rec.encode();
        let header = mrt::MrtHeader::decode(&wire).unwrap();
        let back = MrtRecord::decode(&header, &wire[mrt::MrtHeader::LEN..]).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn file_roundtrip(recs in proptest::collection::vec(arb_record(), 0..20)) {
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for r in &recs {
                w.write(r).unwrap();
            }
        }
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        prop_assert!(err.is_none());
        prop_assert_eq!(out, recs);
    }

    #[test]
    fn any_truncation_is_detected_not_misread(
        recs in proptest::collection::vec(arb_record(), 1..6),
        frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for r in &recs {
                w.write(r).unwrap();
            }
        }
        let cut = ((buf.len() as f64) * frac) as usize;
        let (out, err) = MrtReader::new(&buf[..cut]).read_all();
        // Either the cut landed on a record boundary (clean prefix) or
        // the reader reports corruption; it must never fabricate records.
        prop_assert!(out.len() <= recs.len());
        for (a, b) in out.iter().zip(recs.iter()) {
            prop_assert_eq!(a, b);
        }
        if out.len() < recs.len() {
            let clean_boundary = {
                // Compute cumulative encoded sizes to see if `cut` is a boundary.
                let mut sizes = vec![0usize];
                let mut acc = 0;
                for r in &recs {
                    acc += r.encode().len();
                    sizes.push(acc);
                }
                sizes.contains(&cut)
            };
            prop_assert!(err.is_some() || clean_boundary);
        }
    }
}

proptest! {
    /// Arbitrary garbage never panics the reader: every byte sequence
    /// either decodes or reports an error.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (_out, _err) = MrtReader::new(&bytes[..]).read_all();
    }

    /// Single-byte corruption anywhere in a valid file never panics
    /// and never yields more records than were written; records before
    /// the corrupted one are returned intact.
    #[test]
    fn single_byte_corruption_is_contained(
        recs in proptest::collection::vec(arb_record(), 1..6),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for r in &recs {
                w.write(r).unwrap();
            }
        }
        let pos = pos_seed % buf.len();
        buf[pos] ^= xor;
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        // Corrupting a length field may cause over-read (reported as
        // corruption), but never fabrication of extra valid records
        // beyond the encoded count.
        prop_assert!(out.len() <= recs.len());
        if out.len() == recs.len() && err.is_none() {
            // The flip landed somewhere immaterial only if decode is
            // not canonical; re-encoding must reproduce one of the two
            // buffers' record sets. At minimum the records must still
            // round-trip individually.
            for r in &out {
                let wire = r.encode();
                let header = mrt::MrtHeader::decode(&wire).unwrap();
                let back = MrtRecord::decode(&header, &wire[mrt::MrtHeader::LEN..]).unwrap();
                prop_assert_eq!(&back, r);
            }
        }
    }
}
