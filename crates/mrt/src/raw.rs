//! Borrowed, decode-free views of MRT record bodies.
//!
//! The filter-pushdown hot path wants to reject a record *before* any
//! owned [`MrtBody`](crate::MrtBody) structure (heap-backed AS paths,
//! community sets, NLRI vectors) is built. [`RawMrtView::parse`] reads
//! just enough out of a record's body slice to answer the questions a
//! record-level prefilter asks — which elem kinds the record can
//! decompose into, the VP identity, and the NLRI prefixes /
//! communities it carries — without allocating.
//!
//! Contract with the full decoder ([`crate::MrtRecord::decode`]):
//! `parse` is **conservative**. It
//! returns `Some` only when the framing it inspected is exactly what
//! the full decoder would accept; anything surprising (unknown
//! subtype, truncation, bad marker, bogus NLRI length) yields `None`
//! so the caller falls back to the full decode and its established
//! corrupted-read signalling. The prefilter scans go one step
//! further: a [`ScanVerdict::Reject`] certifies the whole body would
//! have decoded cleanly (every decoder content check is mirrored
//! in-pass, with [`ScanVerdict::Unsure`] the moment anything stops
//! parsing), so a prefilter can only ever *skip* a record it has
//! proven both boring and well-formed.

use bgp_types::message::{decode_nlri, HEADER_LEN, MAX_MESSAGE_LEN};
use bgp_types::{Asn, Community, Prefix, SessionState};
use bytes::Buf;

use crate::bgp4mp::{decode_session_header, SUBTYPE_MESSAGE_AS4, SUBTYPE_STATE_CHANGE_AS4};
use crate::record::{MrtHeader, MrtType};
use crate::table_dump_v2::{
    SUBTYPE_PEER_INDEX_TABLE, SUBTYPE_RIB_IPV4_UNICAST, SUBTYPE_RIB_IPV6_UNICAST,
};

// RFC 4271 wire constants re-stated locally: the raw scanner walks the
// same structures the codec does, but must not depend on the codec's
// private internals.
const MARKER: [u8; 16] = [0xFF; 16];
const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;
const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_COMMUNITIES: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;
const FLAG_EXT_LEN: u8 = 0x10;
const AFI_IPV4: u16 = 1;
const SEG_SET: u8 = 1;
const SEG_SEQUENCE: u8 = 2;

/// Outcome of a single-pass prefilter scan
/// ([`RawUpdate::prefilter_scan`] / [`RawRibRow::prefilter_scan`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanVerdict {
    /// Some elem provably satisfies the caller's predicates; decode.
    Accept,
    /// No elem can satisfy them **and** the whole body would decode
    /// cleanly: skipping the decode is safe and invisible.
    Reject,
    /// Could not be proven either way (a structure stopped parsing):
    /// the full decode must run and own the error signalling.
    Unsure,
}

/// A decode-free classification of one MRT record body.
pub enum RawMrtView<'a> {
    /// `BGP4MP_MESSAGE_AS4` wrapping a BGP UPDATE.
    Update(RawUpdate<'a>),
    /// `BGP4MP_MESSAGE_AS4` wrapping a well-formed non-UPDATE message
    /// (OPEN / NOTIFICATION / KEEPALIVE) — decomposes into no elems.
    NonUpdateMessage,
    /// `BGP4MP_STATE_CHANGE_AS4` with valid FSM codes.
    StateChange {
        /// The VP whose session moved.
        peer_asn: Asn,
    },
    /// A `TABLE_DUMP_V2` RIB row.
    RibRow(RawRibRow<'a>),
    /// The `TABLE_DUMP_V2` peer index table. Callers must always run
    /// the full decode on these: later RIB rows need the table.
    PeerIndexTable,
    /// An MRT type this build does not interpret — never any elems.
    Unknown,
}

impl<'a> RawMrtView<'a> {
    /// Classify a framed record without decoding it. `None` means the
    /// body did not look exactly like something the full decoder
    /// accepts — the caller must fall back to
    /// [`crate::MrtRecord::decode`] (and its error signalling).
    pub fn parse(header: &MrtHeader, body: &'a [u8]) -> Option<RawMrtView<'a>> {
        match header.mrt_type {
            MrtType::Bgp4mp => Self::parse_bgp4mp(header.subtype, body),
            MrtType::TableDumpV2 => Self::parse_table_dump_v2(header.subtype, body),
            MrtType::Other(_) => Some(RawMrtView::Unknown),
        }
    }

    fn parse_bgp4mp(subtype: u16, body: &'a [u8]) -> Option<RawMrtView<'a>> {
        let mut b = body;
        match subtype {
            SUBTYPE_STATE_CHANGE_AS4 => {
                let (peer_asn, ..) = decode_session_header(&mut b).ok()?;
                if b.len() < 4 {
                    return None;
                }
                SessionState::from_code(b.get_u16())?;
                SessionState::from_code(b.get_u16())?;
                Some(RawMrtView::StateChange { peer_asn })
            }
            SUBTYPE_MESSAGE_AS4 => {
                let (peer_asn, ..) = decode_session_header(&mut b).ok()?;
                if b.len() < HEADER_LEN || b[..16] != MARKER {
                    return None;
                }
                let total = u16::from_be_bytes([b[16], b[17]]) as usize;
                if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
                    return None;
                }
                let msg_type = b[18];
                let body_len = total - HEADER_LEN;
                if b.len() - HEADER_LEN < body_len {
                    return None;
                }
                let msg = &b[HEADER_LEN..HEADER_LEN + body_len];
                match msg_type {
                    TYPE_UPDATE => {
                        let (withdrawals, attrs, announcements) = split_update(msg)?;
                        Some(RawMrtView::Update(RawUpdate {
                            peer_asn,
                            withdrawals,
                            attrs,
                            announcements,
                        }))
                    }
                    // Non-UPDATE messages carry no elems, but only
                    // count as "boring" when the full decode would
                    // have succeeded on them too.
                    TYPE_OPEN if msg.len() >= 10 => Some(RawMrtView::NonUpdateMessage),
                    TYPE_NOTIFICATION if msg.len() >= 2 => Some(RawMrtView::NonUpdateMessage),
                    TYPE_KEEPALIVE => Some(RawMrtView::NonUpdateMessage),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Would [`crate::MrtRecord::decode`] accept this body?
    ///
    /// `parse` validates *framing*; the full decoder additionally
    /// validates *content* it materialises (ORIGIN codes, AS_PATH
    /// segment types, fixed attribute lengths, every NLRI entry…).
    /// A prefilter may only skip the decode of a record it can prove
    /// would have decoded cleanly — otherwise the decode-then-filter
    /// path's corruption signalling (poisoned dump, `CorruptedRecord`
    /// placeholder) would silently disappear under filters. This walk
    /// mirrors the decoder's error checks, still without allocating;
    /// the mutation tests below enforce the mirror.
    pub fn decodes_cleanly(&self) -> bool {
        match self {
            // Validated during `parse`, or (Unknown) never fails.
            RawMrtView::NonUpdateMessage
            | RawMrtView::StateChange { .. }
            | RawMrtView::PeerIndexTable
            | RawMrtView::Unknown => true,
            RawMrtView::Update(u) => u.decodes_cleanly(),
            RawMrtView::RibRow(r) => r.decodes_cleanly(),
        }
    }

    fn parse_table_dump_v2(subtype: u16, body: &'a [u8]) -> Option<RawMrtView<'a>> {
        match subtype {
            SUBTYPE_PEER_INDEX_TABLE => Some(RawMrtView::PeerIndexTable),
            SUBTYPE_RIB_IPV4_UNICAST | SUBTYPE_RIB_IPV6_UNICAST => {
                let v4 = subtype == SUBTYPE_RIB_IPV4_UNICAST;
                let mut b = body;
                if b.len() < 4 {
                    return None;
                }
                let _sequence = b.get_u32();
                let prefix = decode_nlri(&mut b, v4).ok()?;
                if b.len() < 2 {
                    return None;
                }
                let entry_count = b.get_u16() as usize;
                Some(RawMrtView::RibRow(RawRibRow {
                    prefix,
                    entry_count,
                    entries: b,
                }))
            }
            _ => None,
        }
    }
}

/// Section offsets of one BGP UPDATE inside a `BGP4MP_MESSAGE_AS4`
/// body: the base withdrawn-routes NLRI, the bare path-attribute
/// block, and the base announcement NLRI. IPv6 NLRI (MP_REACH /
/// MP_UNREACH) is reached by walking the attribute block on demand.
pub struct RawUpdate<'a> {
    /// The VP the update was received from.
    pub peer_asn: Asn,
    withdrawals: &'a [u8],
    attrs: &'a [u8],
    announcements: &'a [u8],
}

impl RawUpdate<'_> {
    /// Whether the update carries any path attributes. Announcements
    /// only decompose into elems when they do (a bare NLRI without
    /// attributes yields nothing, matching the decoder).
    pub fn has_attrs(&self) -> bool {
        !self.attrs.is_empty()
    }

    /// Whether the full decoder would accept this update body (see
    /// [`RawMrtView::decodes_cleanly`]).
    pub fn decodes_cleanly(&self) -> bool {
        self.prefilter_scan(None, None, None) == ScanVerdict::Reject
    }

    /// The pushdown decision in **one validating pass** over the body.
    ///
    /// * `wd_accepts` — `Some(pred)` when a withdrawal of a prefix
    ///   satisfying `pred` would pass the caller's filters; `None`
    ///   when no withdrawal can pass (elem-type gating folded in by
    ///   the caller), which lets the scan validate the NLRI bytes
    ///   without materialising `Prefix` values.
    /// * `ann_accepts` — same, for announcements' per-prefix
    ///   constraints.
    /// * `comm_gate` — `Some(pred)` when announcements additionally
    ///   require a community matching `pred` (withdrawals are exempt,
    ///   mirroring the filter semantics); `None` when unconstrained.
    ///
    /// Returns [`ScanVerdict::Accept`] as soon as an elem provably
    /// passes (remaining bytes left to the decoder),
    /// [`ScanVerdict::Unsure`] the moment anything fails to parse, and
    /// [`ScanVerdict::Reject`] only after the *entire* body — base
    /// NLRI, every attribute, MP NLRI — has passed the same content
    /// checks the decoder applies. A `Reject` therefore guarantees
    /// [`crate::MrtRecord::decode`] would have succeeded: skipping it
    /// cannot hide a corrupted read.
    pub fn prefilter_scan(
        &self,
        mut wd_accepts: Option<&mut dyn FnMut(&Prefix) -> bool>,
        mut ann_accepts: Option<&mut dyn FnMut(&Prefix) -> bool>,
        mut comm_gate: Option<&mut dyn FnMut(Community) -> bool>,
    ) -> ScanVerdict {
        // No community constraint = the gate is already satisfied.
        let mut comm_ok = comm_gate.is_none();
        // An interesting announcement seen before the community gate
        // resolved (attribute order is not fixed on the wire).
        let mut ann_pending = false;
        let mut accepted = false;
        if !self.has_attrs() {
            // Without attributes announcements yield no elems: drop
            // to validate-only NLRI scanning for them.
            ann_accepts = None;
        }

        // Base withdrawn NLRI. A hit is a definite accept: withdrawals
        // are exempt from the community gate.
        let mut wd = self.withdrawals;
        match scan_nlri_block(&mut wd, true, &mut wd_accepts) {
            Err(()) => return ScanVerdict::Unsure,
            Ok(true) => return ScanVerdict::Accept,
            Ok(false) => {}
        }

        // One validating walk over the attribute block, doing triple
        // duty: content validation (decoder mirror), the community
        // gate, and the MP-attribute NLRI predicates.
        let walk = walk_attrs(self.attrs, |ty, mut data| {
            if accepted {
                return Some(());
            }
            match ty {
                ATTR_COMMUNITIES => {
                    if !simple_attr_content_ok(ty, data) {
                        return None;
                    }
                    if let Some(pred) = comm_gate.as_deref_mut() {
                        while !data.is_empty() {
                            if pred(Community::from_u32(data.get_u32())) {
                                comm_ok = true;
                                break;
                            }
                        }
                    }
                }
                ATTR_MP_REACH => {
                    let v4 = parse_mp_header(true, &mut data)?;
                    while !data.is_empty() {
                        if let Some(pred) = ann_accepts.as_deref_mut() {
                            let Ok(p) = decode_nlri(&mut data, v4) else {
                                return None;
                            };
                            if pred(&p) {
                                if comm_ok {
                                    accepted = true;
                                    return Some(());
                                }
                                ann_pending = true;
                            }
                        } else if !skip_nlri(&mut data, v4) {
                            return None;
                        }
                    }
                }
                ATTR_MP_UNREACH => {
                    let v4 = parse_mp_header(false, &mut data)?;
                    let mut block = data;
                    match scan_nlri_block(&mut block, v4, &mut wd_accepts) {
                        Err(()) => return None,
                        Ok(true) => {
                            accepted = true;
                            return Some(());
                        }
                        Ok(false) => {}
                    }
                }
                // Everything else (incl. unknown types, skipped by the
                // decoder) reduces to the shared content check.
                _ if !simple_attr_content_ok(ty, data) => return None,
                _ => {}
            }
            Some(())
        });
        if walk.is_none() {
            return ScanVerdict::Unsure;
        }
        if accepted {
            return ScanVerdict::Accept;
        }

        // Base announcement NLRI: validated by the decoder regardless
        // of attribute presence, elems only when attributes exist
        // (`ann_accepts` was dropped above otherwise).
        let mut ann = self.announcements;
        while !ann.is_empty() {
            if let Some(pred) = ann_accepts.as_deref_mut() {
                let Ok(p) = decode_nlri(&mut ann, true) else {
                    return ScanVerdict::Unsure;
                };
                if pred(&p) {
                    if comm_ok {
                        return ScanVerdict::Accept;
                    }
                    ann_pending = true;
                }
            } else if !skip_nlri(&mut ann, true) {
                return ScanVerdict::Unsure;
            }
        }
        if ann_pending && comm_ok {
            ScanVerdict::Accept
        } else {
            ScanVerdict::Reject
        }
    }
}

/// The fixed head of one `TABLE_DUMP_V2` RIB row plus its undecoded
/// entry block.
pub struct RawRibRow<'a> {
    /// The prefix every entry of the row routes to.
    pub prefix: Prefix,
    entry_count: usize,
    entries: &'a [u8],
}

impl RawRibRow<'_> {
    /// Declared number of VP entries.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Whether the full decoder would accept this row (see
    /// [`RawMrtView::decodes_cleanly`]): every declared entry frames
    /// and its attribute block passes the decoder's content checks.
    pub fn decodes_cleanly(&self) -> bool {
        self.prefilter_scan(|_, _| false) == ScanVerdict::Reject
    }

    /// The pushdown decision in **one validating pass** over the
    /// entries: `entry_accepts(peer_index, raw attr block)` returns
    /// true when that entry proves the record interesting (the scan
    /// stops — the decoder validates the rest). Same `Reject`
    /// guarantee as [`RawUpdate::prefilter_scan`]: rejection implies
    /// every entry framed and its attributes passed the decoder's
    /// content checks.
    pub fn prefilter_scan(&self, mut entry_accepts: impl FnMut(u16, &[u8]) -> bool) -> ScanVerdict {
        let mut b = self.entries;
        for _ in 0..self.entry_count {
            if b.len() < 8 {
                return ScanVerdict::Unsure;
            }
            let peer_index = b.get_u16();
            let _originated_time = b.get_u32();
            let attr_len = b.get_u16() as usize;
            if b.len() < attr_len {
                return ScanVerdict::Unsure;
            }
            let attrs = &b[..attr_len];
            b.advance(attr_len);
            if entry_accepts(peer_index, attrs) {
                return ScanVerdict::Accept;
            }
            if !attrs_decode_cleanly(attrs) {
                return ScanVerdict::Unsure;
            }
        }
        ScanVerdict::Reject
    }
}

/// Scan a bare path-attribute block for a community satisfying `pred`.
/// Shared by UPDATE attribute blocks and RIB-entry attribute blocks.
pub fn any_community_in_attrs(
    attrs: &[u8],
    mut pred: impl FnMut(Community) -> bool,
) -> Option<bool> {
    let mut hit = false;
    walk_attrs(attrs, |ty, mut data| {
        if hit || ty != ATTR_COMMUNITIES {
            return Some(());
        }
        if !data.len().is_multiple_of(4) {
            return None;
        }
        while !data.is_empty() {
            if pred(Community::from_u32(data.get_u32())) {
                hit = true;
                return Some(());
            }
        }
        Some(())
    })?;
    Some(hit)
}

/// Mirror of the decoder's per-attribute *content* checks
/// (`bgp_types::message::decode_attrs`) for the attribute types whose
/// value carries no nested NLRI, allocation-free. The single source of
/// truth for these checks — both [`attrs_decode_cleanly`] and the
/// update [`RawUpdate::prefilter_scan`] route through it. Unknown
/// attribute types are skipped by the decoder and always pass.
fn simple_attr_content_ok(ty: u8, data: &[u8]) -> bool {
    match ty {
        ATTR_ORIGIN => data.len() == 1 && data[0] <= 2,
        ATTR_AS_PATH => as_path_decodes_cleanly(data),
        ATTR_NEXT_HOP | ATTR_MED | ATTR_LOCAL_PREF => data.len() == 4,
        ATTR_COMMUNITIES => data.len().is_multiple_of(4),
        _ => true,
    }
}

/// Validate an `MP_REACH`/`MP_UNREACH` attribute header (`reach`
/// selects which) and advance `data` to its NLRI block; returns
/// whether the NLRI is IPv4. `None` mirrors the decoder's truncation
/// errors. The single source of truth for the MP header layout.
fn parse_mp_header(reach: bool, data: &mut &[u8]) -> Option<bool> {
    if reach {
        if data.len() < 5 {
            return None;
        }
        let afi = data.get_u16();
        let _safi = data.get_u8();
        let nh_len = data.get_u8() as usize;
        if data.len() < nh_len + 1 {
            return None;
        }
        data.advance(nh_len);
        let _reserved = data.get_u8();
        Some(afi == AFI_IPV4)
    } else {
        if data.len() < 3 {
            return None;
        }
        let afi = data.get_u16();
        let _safi = data.get_u8();
        Some(afi == AFI_IPV4)
    }
}

/// Whole-block form of the decoder mirror: true iff
/// `bgp_types::message::decode_attrs` would return `Ok` for this bare
/// attribute block. Used for RIB-entry attribute blocks, whose NLRI
/// carries no filterable information.
fn attrs_decode_cleanly(attrs: &[u8]) -> bool {
    walk_attrs(attrs, |ty, mut data| match ty {
        ATTR_MP_REACH | ATTR_MP_UNREACH => {
            let v4 = parse_mp_header(ty == ATTR_MP_REACH, &mut data)?;
            if nlri_block_decodes_cleanly(data, v4) {
                Some(())
            } else {
                None
            }
        }
        _ => {
            if simple_attr_content_ok(ty, data) {
                Some(())
            } else {
                None
            }
        }
    })
    .is_some()
}

fn nlri_block_decodes_cleanly(mut block: &[u8], v4: bool) -> bool {
    while !block.is_empty() {
        if decode_nlri(&mut block, v4).is_err() {
            return false;
        }
    }
    true
}

/// Validate-and-advance one NLRI entry *without* materialising the
/// `Prefix` (the validate-only fast path of the prefilter scans).
/// Mirrors [`decode_nlri`]'s error conditions exactly.
fn skip_nlri(buf: &mut &[u8], v4: bool) -> bool {
    let Some(&len) = buf.first() else {
        return false;
    };
    let max = if v4 { 32 } else { 128 };
    if len > max {
        return false;
    }
    let nbytes = 1 + (len as usize).div_ceil(8);
    if buf.len() < nbytes {
        return false;
    }
    *buf = &buf[nbytes..];
    true
}

/// Scan one NLRI block: with a predicate, decode each prefix and stop
/// at the first hit (`Ok(true)`); without one, validate-and-skip.
/// `Err(())` = malformed NLRI (decoder would reject).
fn scan_nlri_block(
    block: &mut &[u8],
    v4: bool,
    pred: &mut Option<&mut dyn FnMut(&Prefix) -> bool>,
) -> Result<bool, ()> {
    while !block.is_empty() {
        if let Some(p) = pred.as_deref_mut() {
            let prefix = decode_nlri(block, v4).map_err(|_| ())?;
            if p(&prefix) {
                return Ok(true);
            }
        } else if !skip_nlri(block, v4) {
            return Err(());
        }
    }
    Ok(false)
}

fn as_path_decodes_cleanly(mut seg: &[u8]) -> bool {
    while !seg.is_empty() {
        if seg.len() < 2 {
            return false;
        }
        let ty = seg.get_u8();
        if ty != SEG_SET && ty != SEG_SEQUENCE {
            return false;
        }
        let count = seg.get_u8() as usize;
        if seg.len() < count * 4 {
            return false;
        }
        seg.advance(count * 4);
    }
    true
}

/// Walk attribute headers, handing `(type, value bytes)` to `f`;
/// `None` on truncation (from the walk or propagated from `f`).
fn walk_attrs(mut a: &[u8], mut f: impl FnMut(u8, &[u8]) -> Option<()>) -> Option<()> {
    while !a.is_empty() {
        if a.len() < 2 {
            return None;
        }
        let flags = a.get_u8();
        let ty = a.get_u8();
        let len = if flags & FLAG_EXT_LEN != 0 {
            if a.len() < 2 {
                return None;
            }
            a.get_u16() as usize
        } else {
            if a.is_empty() {
                return None;
            }
            a.get_u8() as usize
        };
        if a.len() < len {
            return None;
        }
        f(ty, &a[..len])?;
        a.advance(len);
    }
    Some(())
}

/// Split a BGP UPDATE body into its three sections.
fn split_update(msg: &[u8]) -> Option<(&[u8], &[u8], &[u8])> {
    if msg.len() < 2 {
        return None;
    }
    let wd_len = u16::from_be_bytes([msg[0], msg[1]]) as usize;
    let rest = &msg[2..];
    if rest.len() < wd_len {
        return None;
    }
    let withdrawals = &rest[..wd_len];
    let rest = &rest[wd_len..];
    if rest.len() < 2 {
        return None;
    }
    let attr_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
    let rest = &rest[2..];
    if rest.len() < attr_len {
        return None;
    }
    Some((withdrawals, &rest[..attr_len], &rest[attr_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp4mp::Bgp4mp;
    use crate::record::{MrtBody, MrtRecord};
    use crate::table_dump_v2::{PeerEntry, PeerIndexTable, RibEntry, RibRow, TableDumpV2};
    use bgp_types::{AsPath, BgpMessage, BgpUpdate, PathAttributes};
    use bytes::Bytes;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn frame(rec: &MrtRecord) -> (MrtHeader, Vec<u8>) {
        let wire = rec.encode();
        let header = MrtHeader::decode(&wire).unwrap();
        (header, wire[MrtHeader::LEN..].to_vec())
    }

    fn update_record(comms: &[(u16, u16)]) -> MrtRecord {
        let mut attrs = PathAttributes::route(
            AsPath::from_sequence([65001, 3356, 137]),
            "192.0.2.1".parse().unwrap(),
        );
        for &(a, v) in comms {
            attrs.communities.insert(Community::new(a, v));
        }
        MrtRecord::bgp4mp(
            7,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Update(BgpUpdate {
                    withdrawals: vec![p("198.51.100.0/24"), p("2001:db8:dead::/48")],
                    attrs: Some(attrs),
                    announcements: vec![p("203.0.113.0/24"), p("2001:db8:beef::/48")],
                }),
            },
        )
    }

    #[test]
    fn update_view_sees_all_nlri_and_communities() {
        let (header, body) = frame(&update_record(&[(3356, 666)]));
        let Some(RawMrtView::Update(u)) = RawMrtView::parse(&header, &body) else {
            panic!("expected update view");
        };
        assert_eq!(u.peer_asn, Asn(65001));
        assert!(u.has_attrs());
        // Base v4 + MP_UNREACH v6 withdrawals both reach the scan's
        // withdrawal predicate (never-hit pred collects them all).
        let mut wd = Vec::new();
        let mut collect_wd = |q: &Prefix| {
            wd.push(*q);
            false
        };
        assert_eq!(
            u.prefilter_scan(Some(&mut collect_wd), None, None),
            ScanVerdict::Reject
        );
        assert_eq!(wd, vec![p("198.51.100.0/24"), p("2001:db8:dead::/48")]);
        let mut hit_v6_wd = |q: &Prefix| *q == p("2001:db8:dead::/48");
        assert_eq!(
            u.prefilter_scan(Some(&mut hit_v6_wd), None, None),
            ScanVerdict::Accept
        );
        // Base v4 + MP_REACH v6 announcements both reach the
        // announcement predicate.
        let mut ann = Vec::new();
        let mut collect_ann = |q: &Prefix| {
            ann.push(*q);
            false
        };
        assert_eq!(
            u.prefilter_scan(None, Some(&mut collect_ann), None),
            ScanVerdict::Reject
        );
        ann.sort();
        let mut want = vec![p("203.0.113.0/24"), p("2001:db8:beef::/48")];
        want.sort();
        assert_eq!(ann, want);
        // Communities gate announcements straight off the raw bytes:
        // a matching community accepts, a non-matching one rejects.
        let mut any_ann = |_: &Prefix| true;
        let mut want_666 = |c: Community| c.value == 666;
        assert_eq!(
            u.prefilter_scan(None, Some(&mut any_ann), Some(&mut want_666)),
            ScanVerdict::Accept
        );
        let mut any_ann = |_: &Prefix| true;
        let mut want_667 = |c: Community| c.value == 667;
        assert_eq!(
            u.prefilter_scan(None, Some(&mut any_ann), Some(&mut want_667)),
            ScanVerdict::Reject
        );
    }

    #[test]
    fn non_update_messages_classify_as_elemless() {
        let rec = MrtRecord::bgp4mp(
            1,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Keepalive,
            },
        );
        let (header, body) = frame(&rec);
        assert!(matches!(
            RawMrtView::parse(&header, &body),
            Some(RawMrtView::NonUpdateMessage)
        ));
    }

    #[test]
    fn state_change_view_carries_peer() {
        let rec = MrtRecord::bgp4mp(
            1,
            Bgp4mp::StateChange {
                peer_asn: Asn(64999),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                old_state: SessionState::Established,
                new_state: SessionState::Idle,
            },
        );
        let (header, mut body) = frame(&rec);
        assert!(matches!(
            RawMrtView::parse(&header, &body),
            Some(RawMrtView::StateChange { peer_asn }) if peer_asn == Asn(64999)
        ));
        // Corrupt FSM code: the view refuses, mirroring the decoder.
        let n = body.len();
        body[n - 1] = 99;
        assert!(RawMrtView::parse(&header, &body).is_none());
    }

    fn rib_record() -> MrtRecord {
        let mut attrs = PathAttributes::route(
            AsPath::from_sequence([65002, 137]),
            "192.0.2.2".parse().unwrap(),
        );
        attrs.communities.insert(Community::new(174, 666));
        MrtRecord::table_dump_v2(
            9,
            TableDumpV2::RibRow(RibRow {
                sequence: 3,
                prefix: p("193.204.0.0/15"),
                entries: vec![
                    RibEntry {
                        peer_index: 0,
                        originated_time: 1,
                        attrs: PathAttributes::route(
                            AsPath::from_sequence([65001, 137]),
                            "192.0.2.1".parse().unwrap(),
                        ),
                    },
                    RibEntry {
                        peer_index: 1,
                        originated_time: 2,
                        attrs,
                    },
                ],
            }),
        )
    }

    #[test]
    fn rib_row_view_walks_entries() {
        let (header, body) = frame(&rib_record());
        let Some(RawMrtView::RibRow(r)) = RawMrtView::parse(&header, &body) else {
            panic!("expected rib row view");
        };
        assert_eq!(r.prefix, p("193.204.0.0/15"));
        assert_eq!(r.entry_count(), 2);
        let mut indexes = Vec::new();
        assert_eq!(
            r.prefilter_scan(|i, _| {
                indexes.push(i);
                false
            }),
            ScanVerdict::Reject
        );
        assert_eq!(indexes, vec![0, 1]);
        // Community scan inside an entry's raw attr block.
        assert_eq!(
            r.prefilter_scan(|_, attrs| {
                any_community_in_attrs(attrs, |c| c.value == 666) == Some(true)
            }),
            ScanVerdict::Accept
        );
    }

    #[test]
    fn pit_and_unknown_classify_without_decode() {
        let pit = MrtRecord::table_dump_v2(
            0,
            TableDumpV2::PeerIndexTable(PeerIndexTable {
                collector_bgp_id: 1,
                view_name: String::new(),
                peers: vec![PeerEntry {
                    bgp_id: 1,
                    ip: "192.0.2.1".parse().unwrap(),
                    asn: Asn(65001),
                }],
            }),
        );
        let (header, body) = frame(&pit);
        assert!(matches!(
            RawMrtView::parse(&header, &body),
            Some(RawMrtView::PeerIndexTable)
        ));
        let unk = MrtRecord {
            timestamp: 5,
            body: MrtBody::Unknown(Bytes::from_static(b"opaque")),
        };
        let (header, body) = frame(&unk);
        assert!(matches!(
            RawMrtView::parse(&header, &body),
            Some(RawMrtView::Unknown)
        ));
    }

    #[test]
    fn decodes_cleanly_never_outruns_the_decoder() {
        // The implication the lazy-decode path relies on: whenever the
        // raw view classifies a body AND declares it clean, the full
        // decoder must succeed on it. Exhaustively mutate every body
        // byte of representative records (several XOR masks each) and
        // check the implication; the reverse direction (decoder ok,
        // view conservative) is allowed and not asserted.
        let mut samples = vec![update_record(&[(3356, 666)]), rib_record()];
        samples.push(MrtRecord::bgp4mp(
            2,
            Bgp4mp::StateChange {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                old_state: SessionState::OpenConfirm,
                new_state: SessionState::Established,
            },
        ));
        for rec in samples {
            let (header, body) = frame(&rec);
            for i in 0..body.len() {
                for mask in [0x01u8, 0x80, 0xFF] {
                    let mut mutated = body.clone();
                    mutated[i] ^= mask;
                    let Some(view) = RawMrtView::parse(&header, &mutated) else {
                        continue;
                    };
                    if view.decodes_cleanly() {
                        assert!(
                            MrtRecord::decode(&header, &mutated).is_ok(),
                            "raw view declared byte {i} (^{mask:#04x}) clean but the decoder rejects it"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_bodies_never_panic_and_stay_conservative() {
        for rec in [update_record(&[(3356, 666)]), rib_record()] {
            let (header, body) = frame(&rec);
            for cut in 0..body.len() {
                // A shortened body must either fail to classify (full
                // decode takes over) or classify with visitors that
                // themselves fail conservatively — never panic.
                if let Some(view) = RawMrtView::parse(&header, &body[..cut]) {
                    match view {
                        RawMrtView::Update(u) => {
                            let mut wd = |_: &Prefix| false;
                            let mut ann = |_: &Prefix| false;
                            let mut comm = |_: Community| false;
                            let _ =
                                u.prefilter_scan(Some(&mut wd), Some(&mut ann), Some(&mut comm));
                        }
                        RawMrtView::RibRow(r) => {
                            let _ = r.prefilter_scan(|_, _| false);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
