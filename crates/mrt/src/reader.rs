//! Pull parser for MRT dump files with corruption signalling.
//!
//! The paper (§3.3.3) extends libBGPdump to "signal a corrupted read"
//! so libBGPStream can mark records not-valid instead of silently
//! skipping them. [`MrtReader`] does the same: every `next()` yields
//! `Some(Ok(record))`, `Some(Err(error))` (corrupted read — the stream
//! is not advanced further), or `None` (clean end of file).

use std::io::Read;

use bgp_types::message::CodecError;

use crate::record::{MrtHeader, MrtRecord};

/// Errors surfaced while reading MRT data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrtError {
    /// The input ended inside a structure.
    Truncated(&'static str),
    /// A structurally valid but semantically bad field.
    Invalid(&'static str),
    /// A record type/subtype this implementation does not handle.
    Unsupported(&'static str),
    /// The embedded BGP message failed to decode.
    Bgp(CodecError),
    /// An I/O error from the underlying reader.
    Io(String),
    /// A record body larger than the sanity cap (corrupt length field).
    OversizedRecord(u32),
}

impl std::fmt::Display for MrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrtError::Truncated(w) => write!(f, "truncated {w}"),
            MrtError::Invalid(w) => write!(f, "invalid {w}"),
            MrtError::Unsupported(w) => write!(f, "unsupported {w}"),
            MrtError::Bgp(e) => write!(f, "embedded BGP message: {e}"),
            MrtError::Io(e) => write!(f, "I/O: {e}"),
            MrtError::OversizedRecord(n) => write!(f, "record body of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for MrtError {}

/// Sanity cap on record bodies; real RIB rows stay well under this and
/// a larger value almost certainly indicates a corrupt length field.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// A streaming MRT record reader.
///
/// ```
/// use mrt::{MrtReader, MrtRecord, MrtWriter, Bgp4mp};
/// use bgp_types::{Asn, BgpMessage};
///
/// let mut buf = Vec::new();
/// {
///     let mut w = MrtWriter::new(&mut buf);
///     w.write(&MrtRecord::bgp4mp(10, Bgp4mp::Message {
///         peer_asn: Asn(65001), local_asn: Asn(6447),
///         peer_ip: "192.0.2.1".parse().unwrap(),
///         local_ip: "192.0.2.254".parse().unwrap(),
///         message: BgpMessage::Keepalive,
///     })).unwrap();
/// }
/// let mut r = MrtReader::new(&buf[..]);
/// let rec = r.next().unwrap().unwrap();
/// assert_eq!(rec.timestamp, 10);
/// assert!(r.next().is_none());
/// ```
pub struct MrtReader<R> {
    inner: R,
    /// Set after a fatal error; all further reads yield `None`.
    poisoned: bool,
    /// Records successfully produced so far.
    count: u64,
}

impl<R: Read> MrtReader<R> {
    /// Wrap a byte source.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            poisoned: false,
            count: 0,
        }
    }

    /// Number of records read so far.
    pub fn records_read(&self) -> u64 {
        self.count
    }

    /// Read the next record.
    ///
    /// Returns `None` at a clean end of input, `Some(Err(_))` exactly
    /// once on a corrupted read (the reader is then poisoned), and
    /// `Some(Ok(_))` otherwise.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<MrtRecord, MrtError>> {
        if self.poisoned {
            return None;
        }
        let mut header_buf = [0u8; MrtHeader::LEN];
        match read_exact_or_eof(&mut self.inner, &mut header_buf) {
            Ok(0) => return None, // clean EOF at record boundary
            Ok(n) if n < MrtHeader::LEN => {
                self.poisoned = true;
                return Some(Err(MrtError::Truncated("MRT header")));
            }
            Ok(_) => {}
            Err(e) => {
                self.poisoned = true;
                return Some(Err(MrtError::Io(e.to_string())));
            }
        }
        let header = match MrtHeader::decode(&header_buf) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = true;
                return Some(Err(e));
            }
        };
        if header.length > MAX_RECORD_LEN {
            self.poisoned = true;
            return Some(Err(MrtError::OversizedRecord(header.length)));
        }
        let mut body = vec![0u8; header.length as usize];
        match read_exact_or_eof(&mut self.inner, &mut body) {
            Ok(n) if n < body.len() => {
                self.poisoned = true;
                return Some(Err(MrtError::Truncated("MRT body")));
            }
            Ok(_) => {}
            Err(e) => {
                self.poisoned = true;
                return Some(Err(MrtError::Io(e.to_string())));
            }
        }
        match MrtRecord::decode(&header, &body) {
            Ok(rec) => {
                self.count += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }

    /// Drain the remaining records, collecting successes; a corrupted
    /// read is returned as the error alongside everything read before
    /// it. Convenience for tests and small files.
    pub fn read_all(mut self) -> (Vec<MrtRecord>, Option<MrtError>) {
        let mut out = Vec::new();
        while let Some(item) = self.next() {
            match item {
                Ok(r) => out.push(r),
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }
}

/// An MRT record reader over an in-memory buffer.
///
/// Same contract as [`MrtReader`] (clean EOF vs poisoning corrupted
/// read), but record bodies are sliced out of the buffer instead of
/// being copied into a per-record `Vec` — the sorted-stream merge
/// path slurps each dump file once and then parses allocation-free up
/// to the decoded structures themselves. [`MrtSliceReader::next_raw`]
/// exposes the framing step on its own, so filter pushdown can
/// inspect a record (via [`crate::raw::RawMrtView`]) and skip the full
/// decode entirely.
pub struct MrtSliceReader {
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
    count: u64,
}

/// One framed-but-undecoded record handed out by
/// [`MrtSliceReader::next_raw`]: the decoded 12-byte header plus the
/// body bytes, borrowed straight from the reader's buffer.
#[derive(Debug)]
pub struct RawRecord<'a> {
    /// The record's common header.
    pub header: MrtHeader,
    /// The undecoded body (exactly `header.length` bytes).
    pub body: &'a [u8],
}

impl MrtSliceReader {
    /// Wrap a fully loaded dump file.
    pub fn new(buf: Vec<u8>) -> Self {
        MrtSliceReader {
            buf,
            pos: 0,
            poisoned: false,
            count: 0,
        }
    }

    /// Number of records read so far.
    pub fn records_read(&self) -> u64 {
        self.count
    }

    /// Frame the next record: decode the header, bounds-check the
    /// body, advance the cursor past it. Framing errors poison the
    /// reader (same semantics as a corrupted read in `next`).
    fn frame_next(&mut self) -> Option<Result<(MrtHeader, std::ops::Range<usize>), MrtError>> {
        if self.poisoned {
            return None;
        }
        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            return None; // clean EOF at record boundary
        }
        if remaining < MrtHeader::LEN {
            self.poisoned = true;
            return Some(Err(MrtError::Truncated("MRT header")));
        }
        let header = match MrtHeader::decode(&self.buf[self.pos..self.pos + MrtHeader::LEN]) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = true;
                return Some(Err(e));
            }
        };
        if header.length > MAX_RECORD_LEN {
            self.poisoned = true;
            return Some(Err(MrtError::OversizedRecord(header.length)));
        }
        let body_start = self.pos + MrtHeader::LEN;
        let body_end = body_start + header.length as usize;
        if body_end > self.buf.len() {
            self.poisoned = true;
            return Some(Err(MrtError::Truncated("MRT body")));
        }
        self.pos = body_end;
        Some(Ok((header, body_start..body_end)))
    }

    /// Frame the next record without decoding its body.
    ///
    /// Framing errors (truncated/oversized/garbled header, body past
    /// the end of the buffer) poison the reader exactly as
    /// [`MrtSliceReader::next`] does; whether and how to decode the
    /// returned body — and how to signal *decode* errors — is the
    /// caller's business. This is the filter-pushdown entry point: a
    /// caller can classify the body with [`crate::raw::RawMrtView`]
    /// and never build the owned record at all.
    pub fn next_raw(&mut self) -> Option<Result<RawRecord<'_>, MrtError>> {
        match self.frame_next()? {
            Ok((header, range)) => {
                self.count += 1;
                Some(Ok(RawRecord {
                    header,
                    body: &self.buf[range],
                }))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Read the next record (same semantics as [`MrtReader::next`]).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<MrtRecord, MrtError>> {
        let (header, range) = match self.frame_next()? {
            Ok(framed) => framed,
            Err(e) => return Some(Err(e)),
        };
        match MrtRecord::decode(&header, &self.buf[range]) {
            Ok(rec) => {
                self.count += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

/// A streaming MRT record reader with transparent gzip decompression
/// and a **bounded** window — the no-slurp replacement for feeding
/// whole files into [`MrtSliceReader`].
///
/// On open, the first two bytes of the source are sniffed: a gzip
/// magic routes the stream through `flate-lite`'s streaming
/// [`MultiGzDecoder`](flate_lite::read::MultiGzDecoder) (concatenated
/// members decode back-to-back, exactly how collectors publish
/// rotated archives), anything else is read as plain MRT. Either way
/// the decompressed stream is framed incrementally: the window holds
/// only the records currently being framed (compacted as the cursor
/// advances), so peak memory is `O(read_size + largest record)`
/// regardless of dump size.
///
/// The record contract is identical to [`MrtSliceReader`]: `next_raw`
/// frames without decoding, `next` decodes, clean EOF at a record
/// boundary yields `None`, and any framing/IO/decompression fault
/// yields `Some(Err(_))` exactly once before poisoning the reader.
/// Compression faults (truncated member, trailing garbage, CRC
/// mismatch) surface as [`MrtError::Io`].
pub struct ChunkedReader {
    src: Box<dyn Read + Send>,
    /// Window storage. `start..filled` is live (decompressed but
    /// unframed); `filled..len` is initialized spare space refills
    /// read into. The length only ever grows, so the zeroing a
    /// `resize` implies is paid once per high-water mark — not once
    /// per refill, which would dwarf the framing work itself when
    /// many small dumps are open at once (the k-way merge).
    window: Vec<u8>,
    start: usize,
    filled: usize,
    read_size: usize,
    /// Next refill size: starts small and doubles up to `read_size`,
    /// so a dump smaller than one full window never pays for one.
    next_read: usize,
    eof: bool,
    poisoned: bool,
    count: u64,
    gzip: bool,
}

/// Upper bound on how many bytes a refill asks the (decompressed)
/// source for.
const DEFAULT_READ_SIZE: usize = 64 * 1024;
/// First-refill size (doubles per growth up to [`DEFAULT_READ_SIZE`]).
const INITIAL_READ_SIZE: usize = 8 * 1024;
/// Consumed-prefix size that triggers a window compaction.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Serves buffered sniff bytes before delegating to the inner reader.
struct Prefixed<R: Read> {
    prefix: Vec<u8>,
    pos: usize,
    inner: R,
}

impl<R: Read> Read for Prefixed<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (self.prefix.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

impl ChunkedReader {
    /// Open a dump file, sniffing for gzip compression.
    pub fn open(path: &std::path::Path) -> std::io::Result<ChunkedReader> {
        Self::from_reader(std::fs::File::open(path)?)
    }

    /// Wrap any byte source, sniffing for gzip compression.
    pub fn from_reader<R: Read + Send + 'static>(mut inner: R) -> std::io::Result<ChunkedReader> {
        // Sniff with a full first-chunk read, not a 2-byte one: for
        // the common small plain dump this is the only read syscall
        // the whole file needs, and the chunk becomes the window
        // directly instead of living behind a prefix shim.
        let mut first = vec![0u8; INITIAL_READ_SIZE];
        let mut n = 0;
        let mut eof = false;
        while n < GZIP_MAGIC.len() {
            match inner.read(&mut first[n..]) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(m) => n += m,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        first.truncate(n);
        let gzip = n >= 2 && first[..2] == GZIP_MAGIC;
        if gzip {
            let prefixed = Prefixed {
                prefix: first,
                pos: 0,
                inner,
            };
            let src: Box<dyn Read + Send> =
                Box::new(flate_lite::read::MultiGzDecoder::new(prefixed));
            Ok(Self::from_source(src, true))
        } else {
            let mut r = Self::from_source(Box::new(inner), false);
            r.filled = first.len();
            r.window = first;
            r.eof = eof;
            Ok(r)
        }
    }

    /// Wrap an in-memory buffer (compressed or plain), infallibly.
    pub fn from_bytes(buf: Vec<u8>) -> ChunkedReader {
        let gzip = buf.len() >= 2 && buf[..2] == GZIP_MAGIC;
        if gzip {
            let cursor = std::io::Cursor::new(buf);
            let src: Box<dyn Read + Send> = Box::new(flate_lite::read::MultiGzDecoder::new(cursor));
            Self::from_source(src, true)
        } else {
            // Plain bytes need no refills at all: adopt the buffer as
            // the (fully-filled, already-ended) window.
            let mut r = Self::from_source(Box::new(std::io::empty()), false);
            r.filled = buf.len();
            r.window = buf;
            r.eof = true;
            r
        }
    }

    fn from_source(src: Box<dyn Read + Send>, gzip: bool) -> ChunkedReader {
        ChunkedReader {
            src,
            window: Vec::new(),
            start: 0,
            filled: 0,
            read_size: DEFAULT_READ_SIZE,
            next_read: INITIAL_READ_SIZE,
            eof: false,
            poisoned: false,
            count: 0,
            gzip,
        }
    }

    /// Shrink the per-refill read size (tests use this to force records
    /// to straddle refill boundaries).
    pub fn with_read_size(mut self, read_size: usize) -> ChunkedReader {
        self.read_size = read_size.max(1);
        self.next_read = self.read_size;
        self
    }

    /// Whether the source was recognized as gzip-compressed.
    pub fn is_gzip(&self) -> bool {
        self.gzip
    }

    /// Number of records read so far.
    pub fn records_read(&self) -> u64 {
        self.count
    }

    fn available(&self) -> usize {
        self.filled - self.start
    }

    /// Pull from the source until `need` unconsumed bytes are windowed
    /// or the source ends. IO/decompression faults are returned as
    /// [`MrtError::Io`].
    fn fill_to(&mut self, need: usize) -> Result<(), MrtError> {
        while self.available() < need && !self.eof {
            if self.start >= COMPACT_THRESHOLD || self.start == self.filled {
                // Slide the live bytes down; storage (and its
                // initialization) is kept.
                self.window.copy_within(self.start..self.filled, 0);
                self.filled -= self.start;
                self.start = 0;
            }
            let spare = self.window.len() - self.filled;
            let len = if spare == 0 {
                self.window.resize(self.filled + self.next_read, 0);
                let len = self.next_read;
                self.next_read = (self.next_read * 2).min(self.read_size);
                len
            } else {
                spare.min(self.read_size)
            };
            match self
                .src
                .read(&mut self.window[self.filled..self.filled + len])
            {
                Ok(0) => self.eof = true,
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(MrtError::Io(e.to_string())),
            }
        }
        Ok(())
    }

    /// Frame the next record against the streaming window; same
    /// semantics as [`MrtSliceReader`]'s framing.
    fn frame_next(&mut self) -> Option<Result<(MrtHeader, std::ops::Range<usize>), MrtError>> {
        if self.poisoned {
            return None;
        }
        let fail = |this: &mut Self, e: MrtError| {
            this.poisoned = true;
            Some(Err(e))
        };
        if let Err(e) = self.fill_to(MrtHeader::LEN) {
            return fail(self, e);
        }
        if self.available() == 0 {
            return None; // clean EOF at record boundary
        }
        if self.available() < MrtHeader::LEN {
            return fail(self, MrtError::Truncated("MRT header"));
        }
        let header = match MrtHeader::decode(&self.window[self.start..self.start + MrtHeader::LEN])
        {
            Ok(h) => h,
            Err(e) => return fail(self, e),
        };
        if header.length > MAX_RECORD_LEN {
            return fail(self, MrtError::OversizedRecord(header.length));
        }
        let total = MrtHeader::LEN + header.length as usize;
        if let Err(e) = self.fill_to(total) {
            return fail(self, e);
        }
        if self.available() < total {
            return fail(self, MrtError::Truncated("MRT body"));
        }
        let body_start = self.start + MrtHeader::LEN;
        let body_end = self.start + total;
        self.start = body_end;
        Some(Ok((header, body_start..body_end)))
    }

    /// Frame the next record without decoding its body (see
    /// [`MrtSliceReader::next_raw`] — identical contract).
    pub fn next_raw(&mut self) -> Option<Result<RawRecord<'_>, MrtError>> {
        match self.frame_next()? {
            Ok((header, range)) => {
                self.count += 1;
                Some(Ok(RawRecord {
                    header,
                    body: &self.window[range],
                }))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Read the next record (same semantics as [`MrtReader::next`]).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<MrtRecord, MrtError>> {
        let (header, range) = match self.frame_next()? {
            Ok(framed) => framed,
            Err(e) => return Some(Err(e)),
        };
        match MrtRecord::decode(&header, &self.window[range]) {
            Ok(rec) => {
                self.count += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }

    /// Decode the first record header without consuming it — the
    /// gzip-aware probe behind `looks_like_mrt`-style sniffing. Does
    /// not poison the reader; an empty source is `Ok(None)`.
    pub fn peek_header(&mut self) -> Result<Option<MrtHeader>, MrtError> {
        self.fill_to(MrtHeader::LEN)?;
        if self.available() == 0 {
            return Ok(None);
        }
        if self.available() < MrtHeader::LEN {
            return Err(MrtError::Truncated("MRT header"));
        }
        MrtHeader::decode(&self.window[self.start..self.start + MrtHeader::LEN]).map(Some)
    }
}

/// Like `read_exact`, but reports how many bytes were read when the
/// input ends early instead of erroring.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp4mp::Bgp4mp;
    use crate::writer::MrtWriter;
    use bgp_types::{Asn, BgpMessage, SessionState};

    fn keepalive_record(ts: u32) -> MrtRecord {
        MrtRecord::bgp4mp(
            ts,
            Bgp4mp::Message {
                peer_asn: Asn(65001),
                local_asn: Asn(6447),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                message: BgpMessage::Keepalive,
            },
        )
    }

    fn encode_all(records: &[MrtRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        for r in records {
            w.write(r).unwrap();
        }
        buf
    }

    #[test]
    fn reads_sequence_then_clean_eof() {
        let recs = vec![
            keepalive_record(1),
            keepalive_record(2),
            keepalive_record(3),
        ];
        let buf = encode_all(&recs);
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        assert!(err.is_none());
        assert_eq!(out, recs);
    }

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next().is_none());
        assert_eq!(r.records_read(), 0);
    }

    #[test]
    fn truncated_header_is_corrupt() {
        let buf = encode_all(&[keepalive_record(1)]);
        let cut = &buf[..MrtHeader::LEN - 3];
        let (out, err) = MrtReader::new(cut).read_all();
        assert!(out.is_empty());
        assert_eq!(err, Some(MrtError::Truncated("MRT header")));
    }

    #[test]
    fn truncated_body_is_corrupt_after_good_records() {
        let buf = encode_all(&[keepalive_record(1), keepalive_record(2)]);
        let cut = &buf[..buf.len() - 4];
        let (out, err) = MrtReader::new(cut).read_all();
        assert_eq!(out.len(), 1);
        assert_eq!(err, Some(MrtError::Truncated("MRT body")));
    }

    #[test]
    fn poisoned_reader_stops() {
        let buf = encode_all(&[keepalive_record(1)]);
        let cut = &buf[..5];
        let mut r = MrtReader::new(cut);
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none());
    }

    #[test]
    fn oversized_length_field_rejected() {
        let mut buf = encode_all(&[keepalive_record(1)]);
        // Overwrite the body length field (bytes 8..12) with 8 MiB.
        buf[8..12].copy_from_slice(&(8u32 << 20).to_be_bytes());
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        assert!(out.is_empty());
        assert!(matches!(err, Some(MrtError::OversizedRecord(_))));
    }

    #[test]
    fn slice_reader_matches_stream_reader() {
        let recs = vec![
            keepalive_record(1),
            keepalive_record(2),
            keepalive_record(3),
        ];
        let buf = encode_all(&recs);
        let mut r = MrtSliceReader::new(buf.clone());
        let mut out = Vec::new();
        while let Some(item) = r.next() {
            out.push(item.unwrap());
        }
        assert_eq!(out, recs);
        assert_eq!(r.records_read(), 3);
        assert!(r.next().is_none());
    }

    #[test]
    fn slice_reader_next_raw_frames_without_decoding() {
        let recs = vec![keepalive_record(4), keepalive_record(9)];
        let buf = encode_all(&recs);
        let mut r = MrtSliceReader::new(buf.clone());
        // Raw framing sees the same records the decoding path does.
        let raw = r.next_raw().unwrap().unwrap();
        assert_eq!(raw.header.timestamp, 4);
        let decoded = MrtRecord::decode(&raw.header, raw.body).unwrap();
        assert_eq!(decoded, recs[0]);
        // Interleaving raw and decoded reads keeps the cursor in sync.
        assert_eq!(r.next().unwrap().unwrap(), recs[1]);
        assert!(r.next_raw().is_none());
        assert_eq!(r.records_read(), 2);

        // Framing errors poison next_raw exactly like next.
        let mut cut = encode_all(&recs);
        cut.truncate(cut.len() - 4);
        let mut r = MrtSliceReader::new(cut);
        assert!(r.next_raw().unwrap().is_ok());
        assert_eq!(
            r.next_raw().unwrap().unwrap_err(),
            MrtError::Truncated("MRT body")
        );
        assert!(r.next_raw().is_none());
        assert!(r.next().is_none());
    }

    #[test]
    fn slice_reader_signals_truncation_and_poisons() {
        let buf = encode_all(&[keepalive_record(1), keepalive_record(2)]);
        let cut = buf[..buf.len() - 4].to_vec();
        let mut r = MrtSliceReader::new(cut);
        assert!(r.next().unwrap().is_ok());
        assert_eq!(
            r.next().unwrap().unwrap_err(),
            MrtError::Truncated("MRT body")
        );
        assert!(r.next().is_none());
        // Oversized length field.
        let mut buf = encode_all(&[keepalive_record(1)]);
        buf[8..12].copy_from_slice(&(8u32 << 20).to_be_bytes());
        let mut r = MrtSliceReader::new(buf);
        assert!(matches!(
            r.next().unwrap().unwrap_err(),
            MrtError::OversizedRecord(_)
        ));
    }

    #[test]
    fn state_change_records_flow_through() {
        let rec = MrtRecord::bgp4mp(
            9,
            Bgp4mp::StateChange {
                peer_asn: Asn(65001),
                local_asn: Asn(12654),
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.254".parse().unwrap(),
                old_state: SessionState::Established,
                new_state: SessionState::Idle,
            },
        );
        let buf = encode_all(std::slice::from_ref(&rec));
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        assert!(err.is_none());
        assert_eq!(out, vec![rec]);
    }
}
