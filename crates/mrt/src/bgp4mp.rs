//! `BGP4MP` record bodies (RFC 6396 §4.4).
//!
//! Updates dumps consist of `BGP4MP_MESSAGE_AS4` records (each wrapping
//! one raw BGP message received from a VP) interleaved with
//! `BGP4MP_STATE_CHANGE_AS4` records when the collector's session FSM
//! with a VP moves. We emit/consume the `_AS4` (4-byte ASN) flavours
//! exclusively, as modern collectors do.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};

use bgp_types::{Asn, BgpMessage, SessionState};

use crate::reader::MrtError;

/// Subtype codes.
pub const SUBTYPE_STATE_CHANGE: u16 = 0;
/// 2-byte ASN message subtype (accepted on decode, never emitted).
pub const SUBTYPE_MESSAGE: u16 = 1;
/// 4-byte ASN message subtype.
pub const SUBTYPE_MESSAGE_AS4: u16 = 4;
/// 4-byte ASN state-change subtype.
pub const SUBTYPE_STATE_CHANGE_AS4: u16 = 5;

const AFI_IPV4: u16 = 1;
const AFI_IPV6: u16 = 2;

/// A decoded `BGP4MP` body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bgp4mp {
    /// A BGP message received from `peer_asn` (`BGP4MP_MESSAGE_AS4`).
    Message {
        /// The VP's AS number.
        peer_asn: Asn,
        /// The collector's AS number.
        local_asn: Asn,
        /// The VP's address (the session endpoint).
        peer_ip: IpAddr,
        /// The collector's address.
        local_ip: IpAddr,
        /// The embedded BGP message.
        message: BgpMessage,
    },
    /// A session FSM transition (`BGP4MP_STATE_CHANGE_AS4`).
    StateChange {
        /// The VP's AS number.
        peer_asn: Asn,
        /// The collector's AS number.
        local_asn: Asn,
        /// The VP's address.
        peer_ip: IpAddr,
        /// The collector's address.
        local_ip: IpAddr,
        /// State before the transition.
        old_state: SessionState,
        /// State after the transition.
        new_state: SessionState,
    },
}

impl Bgp4mp {
    /// The VP address of this body.
    pub fn peer_ip(&self) -> IpAddr {
        match self {
            Bgp4mp::Message { peer_ip, .. } | Bgp4mp::StateChange { peer_ip, .. } => *peer_ip,
        }
    }

    /// The VP ASN of this body.
    pub fn peer_asn(&self) -> Asn {
        match self {
            Bgp4mp::Message { peer_asn, .. } | Bgp4mp::StateChange { peer_asn, .. } => *peer_asn,
        }
    }

    /// Encode into `out`; returns the subtype code for the header.
    pub fn encode(&self, out: &mut BytesMut) -> u16 {
        match self {
            Bgp4mp::Message {
                peer_asn,
                local_asn,
                peer_ip,
                local_ip,
                message,
            } => {
                encode_session_header(*peer_asn, *local_asn, *peer_ip, *local_ip, out);
                out.put_slice(&message.encode());
                SUBTYPE_MESSAGE_AS4
            }
            Bgp4mp::StateChange {
                peer_asn,
                local_asn,
                peer_ip,
                local_ip,
                old_state,
                new_state,
            } => {
                encode_session_header(*peer_asn, *local_asn, *peer_ip, *local_ip, out);
                out.put_u16(old_state.code());
                out.put_u16(new_state.code());
                SUBTYPE_STATE_CHANGE_AS4
            }
        }
    }

    /// Decode a body given its header subtype.
    pub fn decode(subtype: u16, mut body: &[u8]) -> Result<Bgp4mp, MrtError> {
        match subtype {
            SUBTYPE_MESSAGE_AS4 | SUBTYPE_STATE_CHANGE_AS4 => {}
            SUBTYPE_MESSAGE | SUBTYPE_STATE_CHANGE => {
                return Err(MrtError::Unsupported("2-byte ASN BGP4MP subtypes"))
            }
            _ => return Err(MrtError::Unsupported("unknown BGP4MP subtype")),
        }
        let (peer_asn, local_asn, peer_ip, local_ip) = decode_session_header(&mut body)?;
        match subtype {
            SUBTYPE_MESSAGE_AS4 => {
                let message = BgpMessage::decode(body).map_err(MrtError::Bgp)?;
                Ok(Bgp4mp::Message {
                    peer_asn,
                    local_asn,
                    peer_ip,
                    local_ip,
                    message,
                })
            }
            _ => {
                if body.len() < 4 {
                    return Err(MrtError::Truncated("BGP4MP state change"));
                }
                let old = body.get_u16();
                let new = body.get_u16();
                Ok(Bgp4mp::StateChange {
                    peer_asn,
                    local_asn,
                    peer_ip,
                    local_ip,
                    old_state: SessionState::from_code(old)
                        .ok_or(MrtError::Invalid("old FSM state"))?,
                    new_state: SessionState::from_code(new)
                        .ok_or(MrtError::Invalid("new FSM state"))?,
                })
            }
        }
    }
}

fn encode_session_header(
    peer_asn: Asn,
    local_asn: Asn,
    peer_ip: IpAddr,
    local_ip: IpAddr,
    out: &mut BytesMut,
) {
    out.put_u32(peer_asn.0);
    out.put_u32(local_asn.0);
    out.put_u16(0); // interface index
    match (peer_ip, local_ip) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            out.put_u16(AFI_IPV4);
            out.put_slice(&p.octets());
            out.put_slice(&l.octets());
        }
        (p, l) => {
            out.put_u16(AFI_IPV6);
            out.put_slice(&to_v6(p).octets());
            out.put_slice(&to_v6(l).octets());
        }
    }
}

fn to_v6(ip: IpAddr) -> Ipv6Addr {
    match ip {
        IpAddr::V4(v4) => v4.to_ipv6_mapped(),
        IpAddr::V6(v6) => v6,
    }
}

pub(crate) fn decode_session_header(
    body: &mut &[u8],
) -> Result<(Asn, Asn, IpAddr, IpAddr), MrtError> {
    if body.len() < 12 {
        return Err(MrtError::Truncated("BGP4MP session header"));
    }
    let peer_asn = Asn(body.get_u32());
    let local_asn = Asn(body.get_u32());
    let _ifindex = body.get_u16();
    let afi = body.get_u16();
    let (peer_ip, local_ip) = match afi {
        AFI_IPV4 => {
            if body.len() < 8 {
                return Err(MrtError::Truncated("BGP4MP IPv4 addresses"));
            }
            let mut p = [0u8; 4];
            p.copy_from_slice(&body[..4]);
            body.advance(4);
            let mut l = [0u8; 4];
            l.copy_from_slice(&body[..4]);
            body.advance(4);
            (IpAddr::V4(Ipv4Addr::from(p)), IpAddr::V4(Ipv4Addr::from(l)))
        }
        AFI_IPV6 => {
            if body.len() < 32 {
                return Err(MrtError::Truncated("BGP4MP IPv6 addresses"));
            }
            let mut p = [0u8; 16];
            p.copy_from_slice(&body[..16]);
            body.advance(16);
            let mut l = [0u8; 16];
            l.copy_from_slice(&body[..16]);
            body.advance(16);
            (IpAddr::V6(Ipv6Addr::from(p)), IpAddr::V6(Ipv6Addr::from(l)))
        }
        _ => return Err(MrtError::Invalid("BGP4MP AFI")),
    };
    Ok((peer_asn, local_asn, peer_ip, local_ip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, BgpUpdate, PathAttributes, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roundtrip(b: &Bgp4mp) -> Bgp4mp {
        let mut buf = BytesMut::new();
        let subtype = b.encode(&mut buf);
        Bgp4mp::decode(subtype, &buf).unwrap()
    }

    #[test]
    fn message_roundtrip_v4_session() {
        let update = BgpUpdate::announce(
            vec![p("203.0.113.0/24")],
            PathAttributes::route(
                AsPath::from_sequence([65001, 137]),
                "192.0.2.1".parse().unwrap(),
            ),
        );
        let b = Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(6447),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Update(update),
        };
        assert_eq!(roundtrip(&b), b);
    }

    #[test]
    fn message_roundtrip_v6_session() {
        let b = Bgp4mp::Message {
            peer_asn: Asn(400_812),
            local_asn: Asn(12654),
            peer_ip: "2001:db8::1".parse().unwrap(),
            local_ip: "2001:db8::ff".parse().unwrap(),
            message: BgpMessage::Keepalive,
        };
        assert_eq!(roundtrip(&b), b);
    }

    #[test]
    fn state_change_roundtrip() {
        let b = Bgp4mp::StateChange {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.9".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            old_state: SessionState::OpenConfirm,
            new_state: SessionState::Established,
        };
        assert_eq!(roundtrip(&b), b);
    }

    #[test]
    fn rejects_two_byte_subtypes() {
        assert!(matches!(
            Bgp4mp::decode(SUBTYPE_MESSAGE, &[0u8; 20]),
            Err(MrtError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_bad_state_code() {
        let b = Bgp4mp::StateChange {
            peer_asn: Asn(1),
            local_asn: Asn(2),
            peer_ip: "10.0.0.1".parse().unwrap(),
            local_ip: "10.0.0.2".parse().unwrap(),
            old_state: SessionState::Idle,
            new_state: SessionState::Established,
        };
        let mut buf = BytesMut::new();
        let subtype = b.encode(&mut buf);
        let n = buf.len();
        buf[n - 1] = 99; // corrupt the new_state code
        assert!(matches!(
            Bgp4mp::decode(subtype, &buf),
            Err(MrtError::Invalid(_))
        ));
    }

    #[test]
    fn truncated_session_header() {
        assert!(matches!(
            Bgp4mp::decode(SUBTYPE_MESSAGE_AS4, &[0u8; 6]),
            Err(MrtError::Truncated(_))
        ));
    }
}
