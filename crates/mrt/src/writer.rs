//! MRT record writer — the encoder side the collector simulator uses
//! to emit RIB and Updates dump files.

use std::io::Write;

use crate::record::MrtRecord;

/// Serializes records onto any [`Write`] sink.
pub struct MrtWriter<W> {
    inner: W,
    records: u64,
    bytes: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wrap a sink.
    pub fn new(inner: W) -> Self {
        MrtWriter {
            inner,
            records: 0,
            bytes: 0,
        }
    }

    /// Append one record.
    pub fn write(&mut self, record: &MrtRecord) -> std::io::Result<()> {
        let wire = record.encode();
        self.inner.write_all(&wire)?;
        self.records += 1;
        self.bytes += wire.len() as u64;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp4mp::Bgp4mp;
    use crate::reader::MrtReader;
    use bgp_types::{Asn, BgpMessage};

    #[test]
    fn counters_track_output() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let rec = MrtRecord::bgp4mp(
            1,
            Bgp4mp::Message {
                peer_asn: Asn(1),
                local_asn: Asn(2),
                peer_ip: "10.0.0.1".parse().unwrap(),
                local_ip: "10.0.0.2".parse().unwrap(),
                message: BgpMessage::Keepalive,
            },
        );
        w.write(&rec).unwrap();
        w.write(&rec).unwrap();
        assert_eq!(w.records_written(), 2);
        assert_eq!(w.bytes_written() as usize, buf.len());
        let (out, err) = MrtReader::new(&buf[..]).read_all();
        assert!(err.is_none());
        assert_eq!(out.len(), 2);
    }
}
