//! Parallel record-boundary decode: frame sequentially, decode on a
//! [`ShardPool`], reassemble in order.
//!
//! Framing an MRT stream is cheap — twelve header bytes give the next
//! record boundary — but *decoding* a record (attribute parsing, NLRI
//! walks, allocation) dominates the historical read path. This module
//! splits a dump into multi-record chunks at record boundaries using
//! [`ChunkedReader`]'s streaming framing, fans the chunks out to a
//! [`ShardPool`] over `bsync` channels, and releases per-record results
//! strictly in original order through a [`Reorder`] buffer, so
//! downstream consumers observe a byte-identical sequence to the
//! sequential path — including corrupted-record signals in their
//! original positions.
//!
//! ```text
//!   ChunkedReader ──frame──▶ chunks (seq 0,1,2,…)
//!        │                     │ round-robin, bounded queues
//!        │               ┌─────┴─────┐
//!        │           worker 0 … worker n-1   map(record) per record
//!        │               └─────┬─────┘
//!        ▼                     ▼ (seq, items)
//!   consumer ◀─── Reorder: release only seq == next ───┘
//! ```
//!
//! Two pieces of *sequential* state thread through the otherwise
//! embarrassingly-parallel map:
//!
//! * **`PEER_INDEX_TABLE`**: RIB rows resolve their peers through the
//!   PIT that precedes them. The framer detects PIT records from the
//!   header alone, cuts a chunk boundary there, decodes the table
//!   inline (it is one record per RIB dump), and stamps every
//!   subsequent chunk's [`ChunkCtx`] with the new table — so a worker
//!   always sees exactly the table the sequential reader would have
//!   installed.
//! * **Terminal errors**: the sequential readers poison after a
//!   corrupted read. A worker signals this by returning
//!   [`Step::Terminal`]; the reorder stage truncates the stream at the
//!   first terminal item, discarding results from any chunks that were
//!   speculatively decoded past it.
//!
//! Worker panics cannot deadlock the in-order release: the handler
//! catches them and ships a marker, and the consumer drains the pool
//! via its join path before re-raising.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bsync::channel;
use bsync::pool::ShardPool;

use crate::reader::{ChunkedReader, MrtError};
use crate::record::{MrtBody, MrtHeader, MrtRecord, MrtType};
use crate::table_dump_v2::{PeerIndexTable, TableDumpV2, SUBTYPE_PEER_INDEX_TABLE};

/// How a dump should be decoded.
///
/// `Sequential` is the right default for many small files (live
/// windows, update dumps); `Parallel(n)` pays one pool spawn per dump
/// and wins on decode-dominated workloads — large RIB dumps, historical
/// backfills. Both modes produce byte-identical record sequences.
///
/// ```
/// use mrt::{Bgp4mp, ChunkedReader, DecodeMode, MrtRecord, MrtWriter, ParDecoder};
/// use bgp_types::{Asn, BgpMessage};
///
/// let mut archive = Vec::new();
/// let mut w = MrtWriter::new(&mut archive);
/// for ts in 0..100 {
///     w.write(&MrtRecord::bgp4mp(ts, Bgp4mp::Message {
///         peer_asn: Asn(65001), local_asn: Asn(6447),
///         peer_ip: "192.0.2.1".parse().unwrap(),
///         local_ip: "192.0.2.254".parse().unwrap(),
///         message: BgpMessage::Keepalive,
///     })).unwrap();
/// }
///
/// let mode = DecodeMode::Parallel(4);
/// let mut records = Vec::new();
/// match mode {
///     DecodeMode::Sequential => {
///         let mut r = ChunkedReader::from_bytes(archive.clone());
///         while let Some(item) = r.next() { records.push(item.unwrap()); }
///     }
///     DecodeMode::Parallel(n) => {
///         let source = ChunkedReader::from_bytes(archive.clone());
///         let mut p = ParDecoder::decode_records(source, n);
///         while let Some(item) = p.next() { records.push(item.unwrap()); }
///     }
/// }
/// assert_eq!(records.len(), 100);
/// assert_eq!(records[7].timestamp, 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecodeMode {
    /// Decode records one at a time on the calling thread.
    #[default]
    Sequential,
    /// Frame on the calling thread, decode chunks on `n` pool workers
    /// (clamped to at least 1), reassemble in order.
    Parallel(usize),
}

impl DecodeMode {
    /// Worker count this mode decodes with (1 for `Sequential`).
    pub fn workers(self) -> usize {
        match self {
            DecodeMode::Sequential => 1,
            DecodeMode::Parallel(n) => n.max(1),
        }
    }

    /// Whether this mode routes through the parallel front-end.
    pub fn is_parallel(self) -> bool {
        matches!(self, DecodeMode::Parallel(_))
    }
}

/// Sequential context a chunk's records decode under: the
/// `PEER_INDEX_TABLE` in effect at each record, as installed by the
/// framer (see module docs).
#[derive(Clone)]
pub struct ChunkCtx {
    /// The peer table RIB rows in this chunk resolve against.
    pub pit: Option<Arc<PeerIndexTable>>,
}

/// One per-record map result.
pub enum Step<T> {
    /// A normal record result; the stream continues.
    Item(T),
    /// A result after which the stream must end (decode failure —
    /// mirrors the sequential readers poisoning). The item is
    /// delivered, everything after it is discarded.
    Terminal(T),
}

/// In-order release buffer keyed by chunk sequence number.
///
/// Workers complete chunks in racy order; `insert` accepts any
/// sequence, `pop_ready` releases values only in exact `0,1,2,…`
/// order. This is the piece the loom-lite model test drives (see
/// `crates/mrt/tests/loom_reorder.rs`).
pub struct Reorder<V> {
    next_seq: u64,
    pending: BTreeMap<u64, V>,
}

impl<V> Reorder<V> {
    /// An empty buffer expecting sequence 0 first.
    pub fn new() -> Reorder<V> {
        Reorder {
            next_seq: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Buffer a completed chunk. Sequence numbers must be unique.
    pub fn insert(&mut self, seq: u64, value: V) {
        debug_assert!(seq >= self.next_seq, "chunk {seq} released twice");
        let prev = self.pending.insert(seq, value);
        debug_assert!(prev.is_none(), "chunk {seq} completed twice");
    }

    /// Release the next in-order chunk, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<V> {
        let value = self.pending.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(value)
    }

    /// The sequence number the next release is waiting for.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Completed-but-unreleased chunks currently buffered.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<V> Default for Reorder<V> {
    fn default() -> Self {
        Reorder::new()
    }
}

/// One framed chunk in flight to a worker: concatenated body bytes
/// plus per-record headers/offsets, and the decode context.
struct ParChunk {
    seq: u64,
    ctx: ChunkCtx,
    data: Vec<u8>,
    /// `(header, body_start, body_end)` offsets into `data`.
    frames: Vec<(MrtHeader, u32, u32)>,
}

enum ChunkOut<T> {
    Done {
        items: Vec<T>,
        terminal: bool,
    },
    /// The map panicked mid-chunk; the consumer re-raises after
    /// draining the pool.
    Panicked,
}

/// Records per chunk are bounded by bytes, not count; this is the
/// byte target (a chunk always holds at least one record).
const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;
/// Per-worker bounded queue depth (framer backpressure).
const WORKER_QUEUE_CAP: usize = 2;

/// The parallel decode front-end. See the module docs for the
/// pipeline shape; see [`ParDecoder::spawn`] for the generic per-record
/// map and [`ParDecoder::decode_records`] for the plain
/// record-decoding instantiation.
pub struct ParDecoder<T: Send + 'static> {
    source: ChunkedReader,
    pool: Option<ShardPool<ParChunk>>,
    res_rx: channel::Receiver<(u64, ChunkOut<T>)>,
    reorder: Reorder<ChunkOut<T>>,
    out: VecDeque<T>,
    on_frame_error: Box<dyn FnMut(MrtError) -> T + Send>,
    workers: usize,
    chunk_bytes: usize,
    max_inflight: u64,
    next_send_seq: u64,
    received: u64,
    frame_done: bool,
    pending_frame_error: Option<MrtError>,
    terminal_seen: bool,
    cur_pit: Option<Arc<PeerIndexTable>>,
    stage_data: Vec<u8>,
    stage_frames: Vec<(MrtHeader, u32, u32)>,
}

impl<T: Send + 'static> ParDecoder<T> {
    /// Spawn `workers` decode threads over `source`.
    ///
    /// `init(w)` builds worker-private scratch state; `map(&mut state,
    /// &ctx, &header, body)` runs once per record on some worker and
    /// returns the record's result ([`Step::Terminal`] ends the whole
    /// stream at that record). `on_frame_error` converts a framing
    /// fault (truncated tail, oversized length, IO/decompression
    /// error) into the stream's final item, exactly where the
    /// sequential reader would have yielded its `Some(Err(_))`.
    pub fn spawn<S, I, F, E>(
        source: ChunkedReader,
        workers: usize,
        init: I,
        map: F,
        on_frame_error: E,
    ) -> ParDecoder<T>
    where
        S: Send + 'static,
        I: FnMut(usize) -> S,
        F: Fn(&mut S, &ChunkCtx, &MrtHeader, &[u8]) -> Step<T> + Send + Sync + 'static,
        E: FnMut(MrtError) -> T + Send + 'static,
    {
        Self::spawn_with_chunk_bytes(
            source,
            workers,
            DEFAULT_CHUNK_BYTES,
            init,
            map,
            on_frame_error,
        )
    }

    /// [`ParDecoder::spawn`] with an explicit chunk byte target —
    /// tests shrink it to force records onto chunk edges.
    pub fn spawn_with_chunk_bytes<S, I, F, E>(
        source: ChunkedReader,
        workers: usize,
        chunk_bytes: usize,
        init: I,
        map: F,
        on_frame_error: E,
    ) -> ParDecoder<T>
    where
        S: Send + 'static,
        I: FnMut(usize) -> S,
        F: Fn(&mut S, &ChunkCtx, &MrtHeader, &[u8]) -> Step<T> + Send + Sync + 'static,
        E: FnMut(MrtError) -> T + Send + 'static,
    {
        let workers = workers.max(1);
        let (res_tx, res_rx) = channel::unbounded::<(u64, ChunkOut<T>)>();
        let pool = ShardPool::spawn(
            workers,
            WORKER_QUEUE_CAP,
            init,
            move |_w, state: &mut S, chunk: ParChunk| {
                // Catch map panics so the marker (not silence) reaches
                // the consumer: a vanished result would leave the
                // reorder stage waiting on this seq forever. State may
                // be inconsistent after a caught panic, but the
                // consumer re-raises on the marker before any later
                // output from this worker can be released.
                // xcheck:allow(catch-unwind) — see above
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut items = Vec::with_capacity(chunk.frames.len());
                    let mut terminal = false;
                    for &(ref header, start, end) in &chunk.frames {
                        let body = &chunk.data[start as usize..end as usize];
                        match map(state, &chunk.ctx, header, body) {
                            Step::Item(t) => items.push(t),
                            Step::Terminal(t) => {
                                items.push(t);
                                terminal = true;
                                break;
                            }
                        }
                    }
                    (items, terminal)
                }));
                let out = match result {
                    Ok((items, terminal)) => ChunkOut::Done { items, terminal },
                    Err(_) => ChunkOut::Panicked,
                };
                let _ = res_tx.send((chunk.seq, out));
            },
        );
        ParDecoder {
            source,
            pool: Some(pool),
            res_rx,
            reorder: Reorder::new(),
            out: VecDeque::new(),
            on_frame_error: Box::new(on_frame_error),
            workers,
            chunk_bytes: chunk_bytes.max(1),
            max_inflight: (workers as u64 * 2).max(2),
            next_send_seq: 0,
            received: 0,
            frame_done: false,
            pending_frame_error: None,
            terminal_seen: false,
            cur_pit: None,
            stage_data: Vec::new(),
            stage_frames: Vec::new(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn in_flight(&self) -> u64 {
        self.next_send_seq - self.received
    }

    /// Ship the staged chunk (no-op when nothing is staged — chunks
    /// are never empty).
    fn flush_stage(&mut self) {
        if self.stage_frames.is_empty() {
            return;
        }
        let chunk = ParChunk {
            seq: self.next_send_seq,
            ctx: ChunkCtx {
                pit: self.cur_pit.clone(),
            },
            data: std::mem::take(&mut self.stage_data),
            frames: std::mem::take(&mut self.stage_frames),
        };
        let worker = (chunk.seq % self.workers as u64) as usize;
        self.next_send_seq += 1;
        let sent = match &self.pool {
            Some(pool) => pool.send(worker, chunk),
            None => false,
        };
        if !sent {
            self.worker_panicked();
        }
    }

    fn stage_push(&mut self, header: MrtHeader, body: &[u8]) {
        let start = self.stage_data.len() as u32;
        self.stage_data.extend_from_slice(body);
        let end = self.stage_data.len() as u32;
        self.stage_frames.push((header, start, end));
    }

    /// Frame and dispatch chunks until the in-flight cap is reached or
    /// the source ends. PIT records force a chunk cut and are decoded
    /// inline so later chunks carry the right context.
    fn pump(&mut self) {
        while !self.frame_done && self.in_flight() < self.max_inflight {
            match self.source.next_raw() {
                None => {
                    self.frame_done = true;
                }
                Some(Err(e)) => {
                    self.pending_frame_error = Some(e);
                    self.frame_done = true;
                }
                Some(Ok(raw)) => {
                    let header = raw.header;
                    let is_pit = header.mrt_type == MrtType::TableDumpV2
                        && header.subtype == SUBTYPE_PEER_INDEX_TABLE;
                    if is_pit {
                        let body = raw.body.to_vec();
                        // Close the chunk running up to the PIT …
                        self.flush_stage();
                        match MrtRecord::decode(&header, &body) {
                            Ok(MrtRecord {
                                body: MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(pit)),
                                ..
                            }) => {
                                // … install the new table, then ship the
                                // PIT record as its own chunk carrying it
                                // (the sequential path also extracts the
                                // PIT record *after* installing it).
                                self.cur_pit = Some(Arc::new(pit));
                                self.stage_push(header, &body);
                                self.flush_stage();
                            }
                            _ => {
                                // Undecodable PIT: ship it anyway — the
                                // worker's map fails identically and emits
                                // the terminal item — and stop framing,
                                // like the sequential reader stops after a
                                // corrupted read.
                                self.stage_push(header, &body);
                                self.flush_stage();
                                self.frame_done = true;
                            }
                        }
                    } else {
                        // Inlined stage_push: `raw.body` still borrows
                        // `self.source`, so only touch disjoint fields.
                        let start = self.stage_data.len() as u32;
                        self.stage_data.extend_from_slice(raw.body);
                        let end = self.stage_data.len() as u32;
                        self.stage_frames.push((header, start, end));
                        if self.stage_data.len() >= self.chunk_bytes {
                            self.flush_stage();
                        }
                    }
                }
            }
        }
        if self.frame_done {
            self.flush_stage();
        }
    }

    /// Release every chunk that is next in order into the output queue.
    fn drain_ready(&mut self) {
        while let Some(chunk) = self.reorder.pop_ready() {
            match chunk {
                ChunkOut::Done { items, terminal } => {
                    self.out.extend(items);
                    if terminal {
                        // Sequential poisoning: nothing past the first
                        // terminal record is ever delivered, even though
                        // later chunks may already have decoded.
                        self.terminal_seen = true;
                        self.shutdown();
                        return;
                    }
                }
                ChunkOut::Panicked => self.worker_panicked(),
            }
        }
    }

    /// Drop the pool: queues disconnect, workers drain and exit.
    fn shutdown(&mut self) {
        self.pool = None;
    }

    fn worker_panicked(&mut self) -> ! {
        // Join the pool first so worker threads are drained (and a
        // genuinely dead thread surfaces its own panic message),
        // then re-raise.
        self.pool = None;
        panic!("mrt::par decode worker panicked");
    }

    /// The next in-order record result, or `None` at end of stream.
    ///
    /// After a [`Step::Terminal`] item or the `on_frame_error` item has
    /// been returned, every subsequent call returns `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<T> {
        loop {
            if let Some(t) = self.out.pop_front() {
                return Some(t);
            }
            if self.terminal_seen {
                return None;
            }
            self.pump();
            self.drain_ready();
            if !self.out.is_empty() || self.terminal_seen {
                continue;
            }
            if self.in_flight() == 0 {
                // Everything dispatched has been received and released.
                if self.frame_done {
                    if let Some(e) = self.pending_frame_error.take() {
                        self.terminal_seen = true;
                        self.shutdown();
                        return Some((self.on_frame_error)(e));
                    }
                    self.shutdown();
                    return None;
                }
                continue; // pump() is guaranteed to make progress
            }
            match self.res_rx.recv() {
                Ok((_seq, ChunkOut::Panicked)) => self.worker_panicked(),
                Ok((seq, chunk)) => {
                    self.received += 1;
                    self.reorder.insert(seq, chunk);
                }
                // Workers only vanish without a result on catastrophic
                // failure; treat it as the panic path (which drains).
                Err(_) => self.worker_panicked(),
            }
        }
    }

    /// Drain the remaining stream into a `Vec` (tests/benches).
    pub fn collect_all(mut self) -> Vec<T> {
        let mut v = Vec::new();
        while let Some(t) = self.next() {
            v.push(t);
        }
        v
    }
}

impl ParDecoder<Result<MrtRecord, MrtError>> {
    /// The plain instantiation: fully decode every record, mirroring
    /// [`ChunkedReader::next`]'s `Ok`/one-`Err`-then-end sequence.
    pub fn decode_records(
        source: ChunkedReader,
        workers: usize,
    ) -> ParDecoder<Result<MrtRecord, MrtError>> {
        ParDecoder::spawn(
            source,
            workers,
            |_| (),
            |_state, _ctx, header, body| match MrtRecord::decode(header, body) {
                Ok(rec) => Step::Item(Ok(rec)),
                Err(e) => Step::Terminal(Err(e)),
            },
            Err,
        )
    }
}
