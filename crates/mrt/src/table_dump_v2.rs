//! `TABLE_DUMP_V2` record bodies (RFC 6396 §4.3) — RIB dumps.
//!
//! A RIB dump file starts with one `PEER_INDEX_TABLE` record naming
//! every VP of the collector, followed by one `RIB_IPV4_UNICAST` /
//! `RIB_IPV6_UNICAST` record *per prefix*, each holding one entry per
//! VP that has a route to the prefix. This layout is why "an update
//! message is stored in a single MRT record, while RIB dumps require
//! multiple records" (§3.3.3) and why a single record can "group
//! elements of the same type but related to different VPs".

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};

use bgp_types::message::{decode_attrs, decode_nlri, encode_attrs, encode_nlri};
use bgp_types::{Asn, PathAttributes, Prefix};

use crate::reader::MrtError;

/// Subtype codes.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// IPv4 unicast RIB rows.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// IPv6 unicast RIB rows.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

const PEER_FLAG_V6: u8 = 0x01;
const PEER_FLAG_AS4: u8 = 0x02;

/// One VP in the peer index table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeerEntry {
    /// The VP's BGP identifier.
    pub bgp_id: u32,
    /// The VP's address.
    pub ip: IpAddr,
    /// The VP's AS number.
    pub asn: Asn,
}

/// The `PEER_INDEX_TABLE` record heading every RIB dump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_bgp_id: u32,
    /// The collector's configured view name (often empty).
    pub view_name: String,
    /// All VPs; RIB entries refer to them by index.
    pub peers: Vec<PeerEntry>,
}

impl PeerIndexTable {
    /// Index of the peer with the given address, if present.
    pub fn index_of(&self, ip: IpAddr) -> Option<u16> {
        self.peers.iter().position(|p| p.ip == ip).map(|i| i as u16)
    }
}

/// One VP's route to the prefix of a RIB row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibEntry {
    /// Index into the dump's [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was received by the collector.
    pub originated_time: u32,
    /// The route's path attributes.
    pub attrs: PathAttributes,
}

/// A `RIB_IPVx_UNICAST` record: all VP routes for one prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibRow {
    /// Monotonic sequence number within the dump.
    pub sequence: u32,
    /// The prefix the entries route to.
    pub prefix: Prefix,
    /// One entry per VP with a route.
    pub entries: Vec<RibEntry>,
}

/// A decoded `TABLE_DUMP_V2` body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TableDumpV2 {
    /// The dump-heading peer table.
    PeerIndexTable(PeerIndexTable),
    /// A per-prefix row.
    RibRow(RibRow),
}

impl TableDumpV2 {
    /// Encode into `out`; returns the subtype for the header.
    pub fn encode(&self, out: &mut BytesMut) -> u16 {
        match self {
            TableDumpV2::PeerIndexTable(t) => {
                out.put_u32(t.collector_bgp_id);
                let name = t.view_name.as_bytes();
                out.put_u16(name.len() as u16);
                out.put_slice(name);
                out.put_u16(t.peers.len() as u16);
                for p in &t.peers {
                    let mut flags = PEER_FLAG_AS4;
                    if matches!(p.ip, IpAddr::V6(_)) {
                        flags |= PEER_FLAG_V6;
                    }
                    out.put_u8(flags);
                    out.put_u32(p.bgp_id);
                    match p.ip {
                        IpAddr::V4(a) => out.put_slice(&a.octets()),
                        IpAddr::V6(a) => out.put_slice(&a.octets()),
                    }
                    out.put_u32(p.asn.0);
                }
                SUBTYPE_PEER_INDEX_TABLE
            }
            TableDumpV2::RibRow(r) => {
                out.put_u32(r.sequence);
                encode_nlri(&r.prefix, out);
                out.put_u16(r.entries.len() as u16);
                let v4 = r.prefix.is_ipv4();
                for e in &r.entries {
                    out.put_u16(e.peer_index);
                    out.put_u32(e.originated_time);
                    let mut attrs = BytesMut::new();
                    // IPv6 rows carry their next hop in an MP_REACH
                    // attribute with no NLRI.
                    encode_attrs(Some(&e.attrs), &[], &[], !v4, &mut attrs);
                    out.put_u16(attrs.len() as u16);
                    out.put_slice(&attrs);
                }
                if v4 {
                    SUBTYPE_RIB_IPV4_UNICAST
                } else {
                    SUBTYPE_RIB_IPV6_UNICAST
                }
            }
        }
    }

    /// Decode a body given its header subtype.
    pub fn decode(subtype: u16, mut body: &[u8]) -> Result<TableDumpV2, MrtError> {
        match subtype {
            SUBTYPE_PEER_INDEX_TABLE => {
                if body.len() < 8 {
                    return Err(MrtError::Truncated("peer index table header"));
                }
                let collector_bgp_id = body.get_u32();
                let name_len = body.get_u16() as usize;
                if body.len() < name_len + 2 {
                    return Err(MrtError::Truncated("peer index view name"));
                }
                let view_name = String::from_utf8_lossy(&body[..name_len]).into_owned();
                body.advance(name_len);
                let count = body.get_u16() as usize;
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    if body.is_empty() {
                        return Err(MrtError::Truncated("peer entry flags"));
                    }
                    let flags = body.get_u8();
                    let addr_len = if flags & PEER_FLAG_V6 != 0 { 16 } else { 4 };
                    let asn_len = if flags & PEER_FLAG_AS4 != 0 { 4 } else { 2 };
                    if body.len() < 4 + addr_len + asn_len {
                        return Err(MrtError::Truncated("peer entry body"));
                    }
                    let bgp_id = body.get_u32();
                    let ip = if addr_len == 16 {
                        let mut a = [0u8; 16];
                        a.copy_from_slice(&body[..16]);
                        body.advance(16);
                        IpAddr::V6(Ipv6Addr::from(a))
                    } else {
                        let mut a = [0u8; 4];
                        a.copy_from_slice(&body[..4]);
                        body.advance(4);
                        IpAddr::V4(Ipv4Addr::from(a))
                    };
                    let asn = if asn_len == 4 {
                        Asn(body.get_u32())
                    } else {
                        Asn(body.get_u16() as u32)
                    };
                    peers.push(PeerEntry { bgp_id, ip, asn });
                }
                Ok(TableDumpV2::PeerIndexTable(PeerIndexTable {
                    collector_bgp_id,
                    view_name,
                    peers,
                }))
            }
            SUBTYPE_RIB_IPV4_UNICAST | SUBTYPE_RIB_IPV6_UNICAST => {
                let v4 = subtype == SUBTYPE_RIB_IPV4_UNICAST;
                if body.len() < 4 {
                    return Err(MrtError::Truncated("RIB row header"));
                }
                let sequence = body.get_u32();
                let prefix = decode_nlri(&mut body, v4).map_err(MrtError::Bgp)?;
                if body.len() < 2 {
                    return Err(MrtError::Truncated("RIB entry count"));
                }
                let count = body.get_u16() as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    if body.len() < 8 {
                        return Err(MrtError::Truncated("RIB entry header"));
                    }
                    let peer_index = body.get_u16();
                    let originated_time = body.get_u32();
                    let attr_len = body.get_u16() as usize;
                    if body.len() < attr_len {
                        return Err(MrtError::Truncated("RIB entry attributes"));
                    }
                    let decoded = decode_attrs(&body[..attr_len]).map_err(MrtError::Bgp)?;
                    body.advance(attr_len);
                    entries.push(RibEntry {
                        peer_index,
                        originated_time,
                        attrs: decoded.attrs,
                    });
                }
                Ok(TableDumpV2::RibRow(RibRow {
                    sequence,
                    prefix,
                    entries,
                }))
            }
            _ => Err(MrtError::Unsupported("unknown TABLE_DUMP_V2 subtype")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Community};

    fn roundtrip(t: &TableDumpV2) -> TableDumpV2 {
        let mut buf = BytesMut::new();
        let subtype = t.encode(&mut buf);
        TableDumpV2::decode(subtype, &buf).unwrap()
    }

    fn sample_peers() -> PeerIndexTable {
        PeerIndexTable {
            collector_bgp_id: 0x0a00_0001,
            view_name: String::new(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    ip: "192.0.2.1".parse().unwrap(),
                    asn: Asn(65001),
                },
                PeerEntry {
                    bgp_id: 2,
                    ip: "2001:db8::2".parse().unwrap(),
                    asn: Asn(400_123),
                },
            ],
        }
    }

    #[test]
    fn peer_index_roundtrip() {
        let t = TableDumpV2::PeerIndexTable(sample_peers());
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn peer_index_with_view_name() {
        let mut pit = sample_peers();
        pit.view_name = "rib-view".into();
        let t = TableDumpV2::PeerIndexTable(pit);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn index_of_finds_peer() {
        let pit = sample_peers();
        assert_eq!(pit.index_of("192.0.2.1".parse().unwrap()), Some(0));
        assert_eq!(pit.index_of("2001:db8::2".parse().unwrap()), Some(1));
        assert_eq!(pit.index_of("10.9.9.9".parse().unwrap()), None);
    }

    fn attrs_v4() -> PathAttributes {
        let mut a = PathAttributes::route(
            AsPath::from_sequence([65001, 3356, 137]),
            "192.0.2.1".parse().unwrap(),
        );
        a.communities.insert(Community::new(3356, 2001));
        a
    }

    #[test]
    fn rib_row_v4_roundtrip() {
        let t = TableDumpV2::RibRow(RibRow {
            sequence: 7,
            prefix: "193.204.0.0/15".parse().unwrap(),
            entries: vec![
                RibEntry {
                    peer_index: 0,
                    originated_time: 1_000,
                    attrs: attrs_v4(),
                },
                RibEntry {
                    peer_index: 1,
                    originated_time: 2_000,
                    attrs: attrs_v4(),
                },
            ],
        });
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn rib_row_v6_roundtrip_keeps_next_hop() {
        let attrs = PathAttributes::route(
            AsPath::from_sequence([65001, 6939]),
            "2001:db8::1".parse().unwrap(),
        );
        let t = TableDumpV2::RibRow(RibRow {
            sequence: 0,
            prefix: "2001:db8:100::/40".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 1,
                originated_time: 5,
                attrs,
            }],
        });
        match roundtrip(&t) {
            TableDumpV2::RibRow(r) => {
                assert_eq!(
                    r.entries[0].attrs.next_hop,
                    Some("2001:db8::1".parse().unwrap())
                );
                assert_eq!(TableDumpV2::RibRow(r), t);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rib_row_empty_entries() {
        let t = TableDumpV2::RibRow(RibRow {
            sequence: 1,
            prefix: "10.0.0.0/8".parse().unwrap(),
            entries: vec![],
        });
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn decode_rejects_unknown_subtype() {
        assert!(matches!(
            TableDumpV2::decode(99, &[]),
            Err(MrtError::Unsupported(_))
        ));
    }

    #[test]
    fn decode_rejects_truncated_rib() {
        let t = TableDumpV2::RibRow(RibRow {
            sequence: 7,
            prefix: "10.0.0.0/8".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 1,
                attrs: attrs_v4(),
            }],
        });
        let mut buf = BytesMut::new();
        let subtype = t.encode(&mut buf);
        for cut in [2, 6, 9, buf.len() - 1] {
            assert!(
                TableDumpV2::decode(subtype, &buf[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
