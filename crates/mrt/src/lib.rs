//! MRT — the Multi-Threaded Routing Toolkit routing information export
//! format (RFC 6396).
//!
//! RouteViews and RIPE RIS publish their RIB and Updates dumps as files
//! of MRT records; libBGPStream consumes them. This crate implements
//! both directions:
//!
//! * [`record::MrtRecord`] — one record (12-byte header + typed body);
//! * [`bgp4mp`] — `BGP4MP` bodies: `MESSAGE_AS4` (an embedded raw BGP
//!   message) and `STATE_CHANGE_AS4` (peer FSM transitions);
//! * [`table_dump_v2`] — `TABLE_DUMP_V2` bodies: the `PEER_INDEX_TABLE`
//!   that heads every RIB dump and the per-prefix `RIB_IPV4_UNICAST` /
//!   `RIB_IPV6_UNICAST` rows;
//! * [`reader::MrtReader`] — a pull parser over any [`std::io::Read`]
//!   that distinguishes clean end-of-file from *corrupted reads*. The
//!   paper extends libBGPdump to "signal a corrupted read" so that
//!   libBGPStream can mark records not-valid; [`MrtError`] is that
//!   signal here;
//! * [`raw::RawMrtView`] — borrowed, decode-free record views for
//!   filter pushdown: classify a record and scan its peer, NLRI and
//!   community bytes without building any owned structure;
//! * [`reader::ChunkedReader`] — the streaming front-end: frames
//!   records out of a bounded window refilled from any byte source,
//!   sniffing and decompressing gzip on the fly, so dump files are
//!   never slurped whole into memory;
//! * [`par`] — parallel record decode: sequential framing feeds
//!   record-boundary chunks to a worker pool and a reorder buffer
//!   releases results strictly in input order, so
//!   [`par::ParDecoder`] is byte-for-byte equivalent to the
//!   sequential readers (select it with [`par::DecodeMode`]);
//! * [`writer::MrtWriter`] — the encoder used by the collector
//!   simulator to produce archives.
//!
//! Deviation from RFC 6396 noted in DESIGN.md: RIB rows encode their
//! IPv6 next hop with a full MP_REACH attribute (AFI/SAFI + next hop,
//! zero NLRI) rather than the truncated next-hop-only form; both forms
//! are accepted by real-world parsers and ours round-trips.

#![forbid(unsafe_code)]

pub mod bgp4mp;
pub mod par;
pub mod raw;
pub mod reader;
pub mod record;
pub mod table_dump_v2;
pub mod writer;

pub use bgp4mp::Bgp4mp;
pub use par::{ChunkCtx, DecodeMode, ParDecoder, Reorder, Step};
pub use raw::RawMrtView;
pub use reader::{ChunkedReader, MrtError, MrtReader, MrtSliceReader, RawRecord};
pub use record::{MrtBody, MrtHeader, MrtRecord, MrtType};
pub use table_dump_v2::{PeerEntry, PeerIndexTable, RibEntry, RibRow};
pub use writer::MrtWriter;
