//! MRT record framing: the common 12-byte header and the typed body.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bgp4mp::Bgp4mp;
use crate::reader::MrtError;
use crate::table_dump_v2::TableDumpV2;

/// MRT record types used by collector dumps (RFC 6396 §4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MrtType {
    /// RIB dumps.
    TableDumpV2,
    /// Update / state-change dumps.
    Bgp4mp,
    /// Anything else (preserved, not interpreted).
    Other(u16),
}

impl MrtType {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            MrtType::TableDumpV2 => 13,
            MrtType::Bgp4mp => 16,
            MrtType::Other(c) => c,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u16) -> Self {
        match c {
            13 => MrtType::TableDumpV2,
            16 => MrtType::Bgp4mp,
            other => MrtType::Other(other),
        }
    }
}

/// The 12-byte MRT common header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MrtHeader {
    /// Seconds since the epoch (virtual time in simulations).
    pub timestamp: u32,
    /// Record type.
    pub mrt_type: MrtType,
    /// Record subtype (interpretation depends on type).
    pub subtype: u16,
    /// Body length in bytes.
    pub length: u32,
}

impl MrtHeader {
    /// Size of the encoded header.
    pub const LEN: usize = 12;

    /// Encode into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u32(self.timestamp);
        out.put_u16(self.mrt_type.code());
        out.put_u16(self.subtype);
        out.put_u32(self.length);
    }

    /// Decode from exactly [`Self::LEN`] bytes.
    pub fn decode(mut buf: &[u8]) -> Result<MrtHeader, MrtError> {
        if buf.len() < Self::LEN {
            return Err(MrtError::Truncated("MRT header"));
        }
        Ok(MrtHeader {
            timestamp: buf.get_u32(),
            mrt_type: MrtType::from_code(buf.get_u16()),
            subtype: buf.get_u16(),
            length: buf.get_u32(),
        })
    }
}

/// A decoded MRT record body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrtBody {
    /// `TABLE_DUMP_V2` (RIB dumps).
    TableDumpV2(TableDumpV2),
    /// `BGP4MP` (updates and state changes).
    Bgp4mp(Bgp4mp),
    /// Unknown type/subtype: raw body bytes, preserved for round-trip.
    Unknown(Bytes),
}

/// One complete MRT record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MrtRecord {
    /// Record timestamp (seconds).
    pub timestamp: u32,
    /// Typed body.
    pub body: MrtBody,
}

impl MrtRecord {
    /// Build a BGP4MP record.
    pub fn bgp4mp(timestamp: u32, body: Bgp4mp) -> Self {
        MrtRecord {
            timestamp,
            body: MrtBody::Bgp4mp(body),
        }
    }

    /// Build a TABLE_DUMP_V2 record.
    pub fn table_dump_v2(timestamp: u32, body: TableDumpV2) -> Self {
        MrtRecord {
            timestamp,
            body: MrtBody::TableDumpV2(body),
        }
    }

    /// Encode the full record (header + body).
    pub fn encode(&self) -> Bytes {
        let (ty, subtype, body) = match &self.body {
            MrtBody::TableDumpV2(b) => {
                let mut buf = BytesMut::new();
                let subtype = b.encode(&mut buf);
                (MrtType::TableDumpV2, subtype, buf.freeze())
            }
            MrtBody::Bgp4mp(b) => {
                let mut buf = BytesMut::new();
                let subtype = b.encode(&mut buf);
                (MrtType::Bgp4mp, subtype, buf.freeze())
            }
            MrtBody::Unknown(raw) => (MrtType::Other(u16::MAX), 0, raw.clone()),
        };
        let header = MrtHeader {
            timestamp: self.timestamp,
            mrt_type: ty,
            subtype,
            length: body.len() as u32,
        };
        let mut out = BytesMut::with_capacity(MrtHeader::LEN + body.len());
        header.encode(&mut out);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode a record from a header and its body bytes.
    pub fn decode(header: &MrtHeader, body: &[u8]) -> Result<MrtRecord, MrtError> {
        if body.len() != header.length as usize {
            return Err(MrtError::Truncated("MRT body"));
        }
        let decoded = match header.mrt_type {
            MrtType::TableDumpV2 => {
                MrtBody::TableDumpV2(TableDumpV2::decode(header.subtype, body)?)
            }
            MrtType::Bgp4mp => MrtBody::Bgp4mp(Bgp4mp::decode(header.subtype, body)?),
            MrtType::Other(_) => MrtBody::Unknown(Bytes::copy_from_slice(body)),
        };
        Ok(MrtRecord {
            timestamp: header.timestamp,
            body: decoded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [MrtType::TableDumpV2, MrtType::Bgp4mp, MrtType::Other(99)] {
            assert_eq!(MrtType::from_code(t.code()), t);
        }
        assert_eq!(MrtType::from_code(13), MrtType::TableDumpV2);
        assert_eq!(MrtType::from_code(16), MrtType::Bgp4mp);
    }

    #[test]
    fn header_roundtrip() {
        let h = MrtHeader {
            timestamp: 1_438_415_400,
            mrt_type: MrtType::Bgp4mp,
            subtype: 4,
            length: 77,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), MrtHeader::LEN);
        assert_eq!(MrtHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn header_truncated() {
        assert!(matches!(
            MrtHeader::decode(&[0u8; 5]),
            Err(MrtError::Truncated(_))
        ));
    }

    #[test]
    fn unknown_body_preserved() {
        let rec = MrtRecord {
            timestamp: 42,
            body: MrtBody::Unknown(Bytes::from_static(b"opaque")),
        };
        let wire = rec.encode();
        let header = MrtHeader::decode(&wire).unwrap();
        let back = MrtRecord::decode(&header, &wire[MrtHeader::LEN..]).unwrap();
        assert_eq!(back, rec);
    }
}
