//! Stateless classification/tagging plugins (§6.1).
//!
//! The paper's BGPCorsaro pipeline distinguishes *stateless* plugins —
//! "performing classification and tagging of BGP records; plugins
//! following in the pipeline can use such tags to inform their
//! processing" — from stateful aggregators. This module implements
//! that tag flow:
//!
//! * [`TagSet`] — the tags attached to one record as it moves down the
//!   pipeline;
//! * [`Tagger`] — the stateless classifier interface;
//! * [`ClassifierTagger`] — protocol-level tags (dump type, address
//!   family, black-holing communities, private ASNs, session state);
//! * [`GeoTagger`] — origin-AS → country tags from a configurable map;
//! * [`TaggedPlugin`] / [`run_tagged_pipeline`] — the tag-aware
//!   pipeline runner;
//! * [`TagGate`] — adapts any plain [`Plugin`] into a tagged pipeline,
//!   forwarding only records bearing a required tag;
//! * [`TagCounter`] — a stateful downstream plugin producing per-bin
//!   tag-frequency series.

use std::collections::{BTreeMap, BTreeSet};

use bgp_types::{Asn, BLACKHOLE_VALUE};
use bgpstream::{BgpStream, BgpStreamRecord, ElemType};
use broker::DumpType;

use crate::pipeline::Plugin;

/// The tags attached to one record. Tags are short strings; well-known
/// ones are defined as constants here, plugins may add their own.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TagSet {
    tags: BTreeSet<String>,
}

/// Record came from a RIB dump.
pub const TAG_RIB: &str = "rib";
/// Record came from an Updates dump.
pub const TAG_UPDATES: &str = "updates";
/// Record carries at least one announcement elem.
pub const TAG_ANNOUNCE: &str = "announce";
/// Record carries at least one withdrawal elem.
pub const TAG_WITHDRAW: &str = "withdraw";
/// Record carries a session state-change elem.
pub const TAG_STATE: &str = "state-change";
/// At least one elem carries a `*:666` black-holing community.
pub const TAG_BLACKHOLE: &str = "blackhole";
/// At least one AS path contains a private-use ASN.
pub const TAG_PRIVATE_ASN: &str = "private-asn";
/// At least one elem has an IPv4 prefix.
pub const TAG_V4: &str = "v4";
/// At least one elem has an IPv6 prefix.
pub const TAG_V6: &str = "v6";
/// The record is marked not-valid.
pub const TAG_NOT_VALID: &str = "not-valid";

impl TagSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a tag; returns whether it was new.
    pub fn add(&mut self, tag: impl Into<String>) -> bool {
        self.tags.insert(tag.into())
    }

    /// Whether a tag is present.
    pub fn has(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether no tags are set.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterate tags in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().map(String::as_str)
    }

    /// Tags with the given prefix (e.g. `geo:`), values only.
    pub fn values_of(&self, prefix: &str) -> Vec<&str> {
        self.tags
            .iter()
            .filter_map(|t| t.strip_prefix(prefix))
            .collect()
    }
}

/// A stateless classifier: inspects a record, adds tags.
pub trait Tagger {
    /// Short name for logs.
    fn name(&self) -> &'static str;

    /// Add tags for `record` to `tags`.
    fn tag(&mut self, record: &BgpStreamRecord, tags: &mut TagSet);
}

/// Protocol-level classification: dump type, elem types, address
/// family, black-holing communities, private ASNs, validity.
#[derive(Default)]
pub struct ClassifierTagger;

impl Tagger for ClassifierTagger {
    fn name(&self) -> &'static str {
        "classifier"
    }

    fn tag(&mut self, record: &BgpStreamRecord, tags: &mut TagSet) {
        match record.dump_type() {
            DumpType::Rib => tags.add(TAG_RIB),
            DumpType::Updates => tags.add(TAG_UPDATES),
        };
        if !record.status.is_valid() {
            tags.add(TAG_NOT_VALID);
        }
        for elem in record.elems() {
            match elem.elem_type {
                ElemType::Announcement => {
                    tags.add(TAG_ANNOUNCE);
                }
                ElemType::Withdrawal => {
                    tags.add(TAG_WITHDRAW);
                }
                ElemType::PeerState => {
                    tags.add(TAG_STATE);
                }
                ElemType::RibEntry => {}
            }
            if let Some(p) = &elem.prefix {
                tags.add(if p.is_ipv4() { TAG_V4 } else { TAG_V6 });
            }
            if let Some(cs) = &elem.communities {
                if cs.iter().any(|c| c.value == BLACKHOLE_VALUE) {
                    tags.add(TAG_BLACKHOLE);
                }
            }
            if let Some(path) = &elem.as_path {
                if path.asns().any(|a| a.is_private()) {
                    tags.add(TAG_PRIVATE_ASN);
                }
            }
        }
    }
}

/// Tags records with the origin AS's country (`geo:XX`), from a
/// configurable origin→country map (ground truth in the simulator,
/// a geolocation database in a real deployment).
pub struct GeoTagger {
    origins: BTreeMap<Asn, [u8; 2]>,
}

impl GeoTagger {
    /// Build from `(origin ASN, country)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (Asn, [u8; 2])>) -> Self {
        GeoTagger {
            origins: pairs.into_iter().collect(),
        }
    }

    /// Number of mapped origins.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }
}

impl Tagger for GeoTagger {
    fn name(&self) -> &'static str {
        "geo"
    }

    fn tag(&mut self, record: &BgpStreamRecord, tags: &mut TagSet) {
        for elem in record.elems() {
            if let Some(cc) = elem.origin_asn().and_then(|o| self.origins.get(&o)) {
                tags.add(format!("geo:{}", String::from_utf8_lossy(cc)));
            }
        }
    }
}

/// A plugin that sees the tags added by upstream taggers.
pub trait TaggedPlugin {
    /// Short name for logs.
    fn name(&self) -> &'static str;

    /// One record plus its tags.
    fn process_record(&mut self, record: &BgpStreamRecord, tags: &TagSet);

    /// The bin `[bin_start, bin_end)` closed.
    fn end_bin(&mut self, bin_start: u64, bin_end: u64);
}

/// Adapt a plain [`Plugin`] into a tagged pipeline: the inner plugin
/// receives only records bearing `required` (pass `None` to forward
/// everything).
pub struct TagGate<P> {
    required: Option<String>,
    inner: P,
    forwarded: u64,
    dropped: u64,
}

impl<P: Plugin> TagGate<P> {
    /// Gate `inner` on the presence of `required`.
    pub fn new(required: Option<&str>, inner: P) -> Self {
        TagGate {
            required: required.map(str::to_string),
            inner,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// `(forwarded, dropped)` record counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.forwarded, self.dropped)
    }

    /// The wrapped plugin.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped plugin, mutable.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: Plugin> TaggedPlugin for TagGate<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn process_record(&mut self, record: &BgpStreamRecord, tags: &TagSet) {
        let pass = self.required.as_deref().is_none_or(|t| tags.has(t));
        if pass {
            self.forwarded += 1;
            self.inner.process_record(record);
        } else {
            self.dropped += 1;
        }
    }

    fn end_bin(&mut self, s: u64, e: u64) {
        self.inner.end_bin(s, e);
    }
}

/// Per-bin tag frequencies: one `(bin_start, tag → records)` row per
/// closed bin.
#[derive(Default)]
pub struct TagCounter {
    current: BTreeMap<String, u64>,
    rows: Vec<(u64, BTreeMap<String, u64>)>,
}

impl TagCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closed rows so far.
    pub fn rows(&self) -> &[(u64, BTreeMap<String, u64>)] {
        &self.rows
    }
}

impl TaggedPlugin for TagCounter {
    fn name(&self) -> &'static str {
        "tag-counter"
    }

    fn process_record(&mut self, _record: &BgpStreamRecord, tags: &TagSet) {
        for t in tags.iter() {
            *self.current.entry(t.to_string()).or_insert(0) += 1;
        }
    }

    fn end_bin(&mut self, bin_start: u64, _bin_end: u64) {
        self.rows
            .push((bin_start, std::mem::take(&mut self.current)));
    }
}

/// Drive a tagged pipeline: every record is first passed through all
/// `taggers` (accumulating one [`TagSet`]), then to all `plugins`.
/// Binning matches [`crate::pipeline::run_pipeline`]: bins aligned to
/// `bin_size`, empty bins closed in order.
pub fn run_tagged_pipeline(
    stream: &mut BgpStream,
    bin_size: u64,
    taggers: &mut [&mut dyn Tagger],
    plugins: &mut [&mut dyn TaggedPlugin],
) -> u64 {
    let bin_size = bin_size.max(1);
    let mut current_bin: Option<u64> = None;
    let mut records = 0u64;
    while let Some(rec) = stream.next_record() {
        let bin = rec.timestamp - rec.timestamp % bin_size;
        match current_bin {
            None => current_bin = Some(bin),
            Some(cur) if bin > cur => {
                let mut b = cur;
                while b < bin {
                    for p in plugins.iter_mut() {
                        p.end_bin(b, b + bin_size);
                    }
                    b += bin_size;
                }
                current_bin = Some(bin);
            }
            _ => {}
        }
        let mut tags = TagSet::new();
        for t in taggers.iter_mut() {
            t.tag(&rec, &mut tags);
        }
        for p in plugins.iter_mut() {
            p.process_record(&rec, &tags);
        }
        records += 1;
    }
    if let Some(cur) = current_bin {
        for p in plugins.iter_mut() {
            p.end_bin(cur, cur + bin_size);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Community, CommunitySet};
    use bgpstream::record::{DumpPosition, RecordStatus};
    use bgpstream::BgpStreamElem;

    fn elem(prefix: &str, path: &[u32], comms: &[(u16, u16)]) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 0,
            peer_address: "192.0.2.1".parse().unwrap(),
            peer_asn: Asn(path[0]),
            prefix: Some(prefix.parse().unwrap()),
            next_hop: Some("192.0.2.1".parse().unwrap()),
            as_path: Some(AsPath::from_sequence(path.iter().copied())),
            communities: Some(CommunitySet::from_iter(
                comms.iter().map(|&(a, v)| Community::new(a, v)),
            )),
            old_state: None,
            new_state: None,
        }
    }

    fn record(ty: DumpType, elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc00",
            ty,
            0,
            0,
            DumpPosition::Middle,
            RecordStatus::Valid,
            elems,
        )
    }

    #[test]
    fn classifier_tags_protocol_features() {
        let rec = record(
            DumpType::Updates,
            vec![elem("10.0.0.0/8", &[65001, 3356, 137], &[(3356, 666)])],
        );
        let mut tags = TagSet::new();
        ClassifierTagger.tag(&rec, &mut tags);
        assert!(tags.has(TAG_UPDATES));
        assert!(tags.has(TAG_ANNOUNCE));
        assert!(tags.has(TAG_BLACKHOLE));
        assert!(tags.has(TAG_V4));
        assert!(tags.has(TAG_PRIVATE_ASN), "65001 is private");
        assert!(!tags.has(TAG_RIB));
        assert!(!tags.has(TAG_V6));
        assert!(!tags.has(TAG_STATE));
    }

    #[test]
    fn classifier_tags_v6_and_rib() {
        let rec = record(
            DumpType::Rib,
            vec![{
                let mut e = elem("10.0.0.0/8", &[9, 137], &[]);
                e.elem_type = ElemType::RibEntry;
                e.prefix = Some("2001:db8::/32".parse().unwrap());
                e
            }],
        );
        let mut tags = TagSet::new();
        ClassifierTagger.tag(&rec, &mut tags);
        assert!(tags.has(TAG_RIB));
        assert!(tags.has(TAG_V6));
        assert!(!tags.has(TAG_ANNOUNCE));
        assert!(!tags.has(TAG_PRIVATE_ASN));
    }

    #[test]
    fn geo_tagger_maps_origins() {
        let mut g = GeoTagger::new([(Asn(137), *b"IT"), (Asn(9), *b"AU")]);
        let rec = record(
            DumpType::Updates,
            vec![elem("10.0.0.0/8", &[1, 3356, 137], &[])],
        );
        let mut tags = TagSet::new();
        g.tag(&rec, &mut tags);
        assert!(tags.has("geo:IT"));
        assert_eq!(tags.values_of("geo:"), vec!["IT"]);
    }

    /// Minimal inner plugin counting records it received.
    struct Count(u64);
    impl Plugin for Count {
        fn name(&self) -> &'static str {
            "count"
        }
        fn process_record(&mut self, _r: &BgpStreamRecord) {
            self.0 += 1;
        }
        fn end_bin(&mut self, _s: u64, _e: u64) {}
    }

    #[test]
    fn tag_gate_filters_on_required_tag() {
        let mut gate = TagGate::new(Some(TAG_BLACKHOLE), Count(0));
        let bh = record(
            DumpType::Updates,
            vec![elem("10.0.0.0/8", &[1, 2], &[(3356, 666)])],
        );
        let plain = record(DumpType::Updates, vec![elem("10.0.0.0/8", &[1, 2], &[])]);
        let mut tags = TagSet::new();
        ClassifierTagger.tag(&bh, &mut tags);
        gate.process_record(&bh, &tags);
        let mut tags = TagSet::new();
        ClassifierTagger.tag(&plain, &mut tags);
        gate.process_record(&plain, &tags);
        assert_eq!(gate.stats(), (1, 1));
        assert_eq!(gate.inner().0, 1);
    }

    #[test]
    fn tag_gate_without_requirement_forwards_all() {
        let mut gate = TagGate::new(None, Count(0));
        let rec = record(DumpType::Updates, vec![]);
        gate.process_record(&rec, &TagSet::new());
        assert_eq!(gate.stats(), (1, 0));
    }

    #[test]
    fn tag_counter_rows_per_bin() {
        let mut c = TagCounter::new();
        let mut tags = TagSet::new();
        tags.add(TAG_UPDATES);
        tags.add(TAG_ANNOUNCE);
        let rec = record(DumpType::Updates, vec![]);
        c.process_record(&rec, &tags);
        c.process_record(&rec, &tags);
        c.end_bin(0, 60);
        c.process_record(&rec, &tags);
        c.end_bin(60, 120);
        assert_eq!(c.rows().len(), 2);
        assert_eq!(c.rows()[0].1[TAG_UPDATES], 2);
        assert_eq!(c.rows()[1].1[TAG_ANNOUNCE], 1);
    }

    #[test]
    fn tagset_basics() {
        let mut t = TagSet::new();
        assert!(t.is_empty());
        assert!(t.add("a"));
        assert!(!t.add("a"));
        assert_eq!(t.len(), 1);
        assert!(t.has("a") && !t.has("b"));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["a"]);
    }
}
