//! The plugin trait and the time-bin-driving runner.

use bgpstream::{BgpStream, BgpStreamRecord};

/// How a plugin's input may be distributed across the workers of the
/// sharded runtime (`crate::runtime`), declared per plugin via
/// [`Plugin::partitioning`].
///
/// The sequential runners ([`run_pipeline`] and friends) ignore this
/// hook entirely; it only matters when the plugin is driven by a
/// [`crate::runtime::ShardedRuntime`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Partitioning {
    /// The plugin runs as a single instance pinned to one worker and
    /// sees the full record stream there. The only always-safe mode,
    /// hence the default: sharding is opt-in per plugin.
    #[default]
    Pinned,
    /// Table-state plugins whose state is keyed by prefix (e.g.
    /// [`crate::PfxMonitor`]): elems are hash-partitioned by prefix,
    /// every shard instance sees every record envelope but only its
    /// own prefixes' elems.
    ByPrefix,
    /// Per-VP plugins whose state is keyed by the vantage point (e.g.
    /// [`crate::RtPlugin`], whose tables, FSMs and accuracy checks are
    /// all per-VP): elems are hash-partitioned by peer address.
    ByPeer,
}

/// A BGPCorsaro plugin. Stateless plugins only implement
/// `process_record`; stateful plugins aggregate and act on `end_bin`.
pub trait Plugin {
    /// Short plugin name (for logs/output).
    fn name(&self) -> &'static str;

    /// Called for every record of the sorted stream.
    fn process_record(&mut self, record: &BgpStreamRecord);

    /// Called when the bin `[bin_start, bin_end)` closes.
    fn end_bin(&mut self, bin_start: u64, bin_end: u64);

    /// How the sharded runtime may distribute this plugin's input
    /// (defaults to [`Partitioning::Pinned`]; sequential runners never
    /// call this).
    fn partitioning(&self) -> Partitioning {
        Partitioning::Pinned
    }

    /// Serialize this plugin's full state — tables *and* the current
    /// bin's partial aggregates — deterministically: two instances
    /// that processed the same records must produce byte-identical
    /// checkpoints (the supervised runtime checksums and compares
    /// them, and replay-after-restore relies on it). Plugins that
    /// carry no state between records may keep the default empty
    /// checkpoint.
    fn checkpoint(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Rebuild the state captured by [`Plugin::checkpoint`] into
    /// `self`, which must be a freshly constructed instance with the
    /// same configuration (same ranges/collector/shard assignment) as
    /// the checkpointed one. After a successful restore the plugin
    /// must behave byte-identically to one that never died. The
    /// default accepts only the default empty checkpoint.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "plugin {} does not support non-empty checkpoints",
                self.name()
            ))
        }
    }
}

/// Drive `plugins` over `stream` with `bin_size`-second bins aligned
/// to multiples of `bin_size`. Returns the number of records
/// processed. Bins with no records still close in order (one `end_bin`
/// per elapsed bin) so time series stay dense.
///
/// ```
/// use bgpstream::BgpStream;
/// use broker::{Index, LocalBroker};
/// use corsaro::{run_pipeline, ElemCounter};
///
/// let mut stream = BgpStream::builder()
///     .broker_client(LocalBroker::shared(Index::shared()))
///     .interval(0, Some(3600))
///     .start();
/// let mut stats = ElemCounter::new();
/// let records = run_pipeline(&mut stream, 300, &mut [&mut stats]);
/// assert_eq!(records, 0); // the index above is empty
/// ```
///
/// For multi-core execution of the same plugin set, see
/// [`crate::runtime::ShardedRuntime`].
pub fn run_pipeline(stream: &mut BgpStream, bin_size: u64, plugins: &mut [&mut dyn Plugin]) -> u64 {
    run_pipeline_until(stream, bin_size, u64::MAX, plugins)
}

/// [`run_pipeline`] with a stop condition for *live* deployments: the
/// runner returns once a record timestamped at or after `stop`
/// arrives (that record is not processed). A live stream never ends
/// on its own, so Figure 7-style per-collector BGPCorsaro instances
/// use this to wind down at a horizon (or run with `stop = u64::MAX`
/// forever, as the paper's 24/7 deployment does).
pub fn run_pipeline_until(
    stream: &mut BgpStream,
    bin_size: u64,
    stop: u64,
    plugins: &mut [&mut dyn Plugin],
) -> u64 {
    let bin_size = bin_size.max(1);
    let mut current_bin: Option<u64> = None;
    let mut records = 0u64;
    while let Some(rec) = stream.next_record() {
        if rec.timestamp >= stop {
            break;
        }
        let bin = rec.timestamp - rec.timestamp % bin_size;
        match current_bin {
            None => current_bin = Some(bin),
            Some(cur) if bin > cur => {
                let mut b = cur;
                while b < bin {
                    for p in plugins.iter_mut() {
                        p.end_bin(b, b + bin_size);
                    }
                    b += bin_size;
                }
                current_bin = Some(bin);
            }
            _ => {}
        }
        for p in plugins.iter_mut() {
            p.process_record(&rec);
        }
        records += 1;
    }
    if let Some(cur) = current_bin {
        for p in plugins.iter_mut() {
            p.end_bin(cur, cur + bin_size);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpstream::record::{DumpPosition, RecordStatus};
    use broker::{DataInterface, DumpType, Index, LocalBroker};

    /// Collects the (record timestamps, bin boundaries) it sees.
    struct Probe {
        seen: Vec<u64>,
        bins: Vec<(u64, u64)>,
    }

    impl Plugin for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn process_record(&mut self, record: &BgpStreamRecord) {
            self.seen.push(record.timestamp);
        }
        fn end_bin(&mut self, s: u64, e: u64) {
            self.bins.push((s, e));
        }
    }

    #[test]
    fn empty_stream_processes_nothing() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(Index::shared()))
            .interval(0, Some(100))
            .start();
        let mut probe = Probe {
            seen: vec![],
            bins: vec![],
        };
        let n = run_pipeline(&mut stream, 60, &mut [&mut probe]);
        assert_eq!(n, 0);
        assert!(probe.bins.is_empty());
    }

    // Bin-boundary logic is easier to test directly against the
    // closing rules than through a full archive; synthesise the runner
    // behaviour by feeding records through a tiny fake "stream".
    fn fake_record(ts: u64) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc00",
            DumpType::Updates,
            0,
            ts,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![],
        )
    }

    /// Re-implementation of the runner's bin arithmetic over a plain
    /// iterator, used to pin the binning contract.
    fn drive(timestamps: &[u64], bin: u64, probe: &mut Probe) {
        let mut current: Option<u64> = None;
        for &ts in timestamps {
            let rec = fake_record(ts);
            let b = ts - ts % bin;
            match current {
                None => current = Some(b),
                Some(cur) if b > cur => {
                    let mut x = cur;
                    while x < b {
                        probe.end_bin(x, x + bin);
                        x += bin;
                    }
                    current = Some(b);
                }
                _ => {}
            }
            probe.process_record(&rec);
        }
        if let Some(cur) = current {
            probe.end_bin(cur, cur + bin);
        }
    }

    #[test]
    fn bins_close_in_order_including_empty_ones() {
        let mut probe = Probe {
            seen: vec![],
            bins: vec![],
        };
        drive(&[10, 65, 300], 60, &mut probe);
        assert_eq!(probe.seen, vec![10, 65, 300]);
        // Bins: [0,60) closed at 65; [60,120), [120..300) empties,
        // then final [300,360).
        assert_eq!(
            probe.bins,
            vec![
                (0, 60),
                (60, 120),
                (120, 180),
                (180, 240),
                (240, 300),
                (300, 360)
            ]
        );
    }

    #[test]
    fn single_bin_closes_once_at_end() {
        let mut probe = Probe {
            seen: vec![],
            bins: vec![],
        };
        drive(&[5, 6, 7], 60, &mut probe);
        assert_eq!(probe.bins, vec![(0, 60)]);
    }

    #[test]
    fn run_until_stops_before_processing_the_stop_record() {
        // A single-file stream with records straddling the stop time:
        // the runner must process strictly-before-stop records only.
        use mrt::{Bgp4mp, MrtRecord, MrtWriter};

        let dir = std::env::temp_dir().join(format!("pipeline_until_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.mrt");
        {
            let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
            for ts in [100u32, 200, 300, 400] {
                w.write(&MrtRecord::bgp4mp(
                    ts,
                    Bgp4mp::StateChange {
                        peer_asn: bgp_types::Asn(65001),
                        local_asn: bgp_types::Asn(12654),
                        peer_ip: "192.0.2.1".parse().unwrap(),
                        local_ip: "192.0.2.254".parse().unwrap(),
                        old_state: bgp_types::SessionState::OpenConfirm,
                        new_state: bgp_types::SessionState::Established,
                    },
                ))
                .unwrap();
            }
        }
        let mut stream = BgpStream::builder()
            .data_interface(DataInterface::SingleFile {
                dump_type: DumpType::Updates,
                path,
                interval_start: 100,
                duration: 300,
            })
            .interval(0, Some(1000))
            .start();
        let mut probe = Probe {
            seen: vec![],
            bins: vec![],
        };
        let n = run_pipeline_until(&mut stream, 60, 300, &mut [&mut probe]);
        assert_eq!(n, 2);
        assert_eq!(probe.seen, vec![100, 200]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
