//! The routing-tables (RT) plugin (§6.2.1, Figure 8).
//!
//! Reconstructs each VP's observable Loc-RIB at fine time granularity:
//! a RIB dump provides the starting reference, Updates dumps evolve
//! it, and subsequent RIB dumps sanity-check and correct it. Because
//! the input is an inference over distributed, heterogeneous
//! measurement data, the plugin maintains a per-VP finite state
//! machine plus *shadow cells* and handles the paper's four special
//! events:
//!
//! * **E1** — a corrupted record inside a RIB dump: ignore the whole
//!   dump;
//! * **E2** — RIB records older than already-applied updates: apply a
//!   RIB record to a cell only if its timestamp is newer than the
//!   cell's last modification;
//! * **E3** — a corrupted Updates record: stop applying updates and
//!   wait for the next RIB dump;
//! * **E4** — session state messages force FSM transitions
//!   (`Established` → up, anything else → down).
//!
//! At the end of each time bin the plugin counts/publishes **diff
//! cells** — the changed portion of the reconstructed tables — which
//! Figure 9 compares against the raw BGP elem count. RouteViews
//! collectors dump no state messages, so a VP none of whose routes
//! appear in the latest RIB dump is additionally declared down
//! (footnote 5).

use std::net::IpAddr;
use std::sync::Arc;

use bgp_types::{AsPath, Asn, Prefix};
use bgpstream::{BgpStreamRecord, ElemType};
use broker::DumpType;
use bytes::{Buf, BufMut, BytesMut};
use fxhash::FxHashMap;
use mq::Cluster;

use crate::codec::{decode_cells, encode_cells, encode_meta, sort_cells, DiffCell, RtMessage};
use crate::pipeline::{Partitioning, Plugin};
use crate::runtime::{shard_of_peer, ShardedPlugin};

/// The Figure 8 macro states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacroState {
    /// No consistent routing table available.
    Down,
    /// Down, with a RIB dump being applied.
    DownRibApplication,
    /// Consistent routing table available.
    Up,
    /// Up, with a new RIB dump being applied into shadow cells.
    UpRibApplication,
}

impl MacroState {
    /// Whether a consistent routing table is available.
    pub fn table_available(self) -> bool {
        matches!(self, MacroState::Up | MacroState::UpRibApplication)
    }
}

/// The route stored in a cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellRoute {
    /// AS path of the selected route.
    pub path: AsPath,
}

#[derive(Clone, Debug, Default)]
struct Cell {
    /// `Some` = announced (the A/W flag), `None` = withdrawn/absent.
    main: Option<CellRoute>,
    /// When the main cell last changed (from an Updates record).
    main_ts: u64,
    /// Shadow storage for the RIB dump being applied.
    shadow: Option<(Option<CellRoute>, u64)>,
}

struct VpTable {
    asn: Asn,
    state: MacroState,
    cells: FxHashMap<Prefix, Cell>,
    /// Whether any RIB row for this VP was seen in the current dump.
    rib_seen: bool,
    /// Whether the VP's table was available when the current RIB
    /// started (accuracy comparisons are only meaningful then).
    check_ok: bool,
}

/// Per-bin statistics (the Figure 9 series).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RtBinStats {
    /// Bin start.
    pub bin: u64,
    /// BGP elems extracted from update messages in this bin.
    pub elems: u64,
    /// Diff cells between the previous bin's tables and this one's.
    pub diff_cells: u64,
}

/// Accuracy self-check counters (§6.2.1: error probabilities ~1e-8
/// RIS / ~1e-5 RouteViews).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RtErrorStats {
    /// Cells compared at RIB boundaries.
    pub cells_checked: u64,
    /// Cells whose reconstructed content disagreed with the RIB.
    pub cells_mismatched: u64,
}

impl RtErrorStats {
    /// Mismatching prefixes over all compared prefixes.
    pub fn error_probability(&self) -> f64 {
        if self.cells_checked == 0 {
            0.0
        } else {
            self.cells_mismatched as f64 / self.cells_checked as f64
        }
    }
}

/// The RT plugin: one instance per collector (the paper runs one
/// BGPCorsaro per collector to spread load).
pub struct RtPlugin {
    collector: String,
    vps: FxHashMap<IpAddr, VpTable>,
    /// Pre-bin value of every cell touched this bin.
    dirty: FxHashMap<(IpAddr, Prefix), Option<CellRoute>>,
    elems_in_bin: u64,
    /// A RIB dump is currently being applied.
    rib_active: bool,
    rib_corrupted: bool,
    rib_start_ts: u64,
    /// E3: a corrupted Updates record was seen; updates ignored until
    /// the next clean RIB completes.
    updates_poisoned: bool,
    mq: Option<Arc<Cluster>>,
    /// Publish a full table every this many bins (0 = never).
    full_every_bins: u64,
    bins_since_full: u64,
    /// `Some((shard, shards))` on a shard instance of the sharded
    /// runtime: only elems whose VP hashes to `shard` are applied
    /// (record-level events — E1/E3 corruption, RIB dump start/end —
    /// replay on every shard).
    shard: Option<(usize, usize)>,
    /// Shard instances retain each bin's outputs for
    /// [`ShardedPlugin::take_partial`].
    collect_partials: bool,
    pending_partial: Option<Vec<u8>>,
    /// Error counters already shipped in partials (partials carry
    /// deltas, the per-run totals live on the root).
    err_reported: RtErrorStats,
    /// The Figure 9 series.
    pub bin_series: Vec<RtBinStats>,
    /// Accuracy counters.
    pub error_stats: RtErrorStats,
}

impl RtPlugin {
    /// A plugin for `collector`'s stream.
    pub fn new(collector: &str) -> Self {
        RtPlugin {
            collector: collector.to_string(),
            vps: FxHashMap::default(),
            dirty: FxHashMap::default(),
            elems_in_bin: 0,
            rib_active: false,
            rib_corrupted: false,
            rib_start_ts: 0,
            updates_poisoned: false,
            mq: None,
            full_every_bins: 0,
            bins_since_full: 0,
            shard: None,
            collect_partials: false,
            pending_partial: None,
            err_reported: RtErrorStats::default(),
            bin_series: Vec::new(),
            error_stats: RtErrorStats::default(),
        }
    }

    /// Publish bin diffs (and periodic full tables) to the queue.
    pub fn with_queue(mut self, mq: Arc<Cluster>, full_every_bins: u64) -> Self {
        self.mq = Some(mq);
        self.full_every_bins = full_every_bins;
        self
    }

    /// The FSM state of the VP at `ip`, if known.
    pub fn vp_state(&self, ip: IpAddr) -> Option<MacroState> {
        self.vps.get(&ip).map(|v| v.state)
    }

    /// Number of announced prefixes in the VP's reconstructed table.
    pub fn vp_table_size(&self, ip: IpAddr) -> usize {
        self.vps
            .get(&ip)
            .map(|v| v.cells.values().filter(|c| c.main.is_some()).count())
            .unwrap_or(0)
    }

    /// Known VPs.
    pub fn vp_addrs(&self) -> Vec<IpAddr> {
        self.vps.keys().copied().collect()
    }

    fn vp_entry(&mut self, ip: IpAddr, asn: Asn) -> &mut VpTable {
        vp_entry_in(&mut self.vps, self.rib_active, ip, asn)
    }

    /// Shard gate: does this instance own the VP's state?
    fn owns_peer(&self, ip: &IpAddr) -> bool {
        match self.shard {
            Some((shard, shards)) => shard_of_peer(ip, shards) == shard,
            None => true,
        }
    }

    fn mark_dirty(
        dirty: &mut FxHashMap<(IpAddr, Prefix), Option<CellRoute>>,
        ip: IpAddr,
        prefix: Prefix,
        prev: &Option<CellRoute>,
    ) {
        dirty.entry((ip, prefix)).or_insert_with(|| prev.clone());
    }

    fn begin_rib(&mut self, ts: u64) {
        self.rib_active = true;
        self.rib_corrupted = false;
        self.rib_start_ts = ts;
        for vp in self.vps.values_mut() {
            vp.rib_seen = false;
            vp.check_ok = vp.state.table_available();
            vp.state = match vp.state {
                MacroState::Up | MacroState::UpRibApplication => MacroState::UpRibApplication,
                _ => MacroState::DownRibApplication,
            };
        }
    }

    fn end_rib(&mut self) {
        let corrupted = self.rib_corrupted;
        let rib_start = self.rib_start_ts;
        for (ip, vp) in self.vps.iter_mut() {
            if corrupted {
                // E1: discard the whole dump.
                for cell in vp.cells.values_mut() {
                    cell.shadow = None;
                }
                vp.state = match vp.state {
                    MacroState::UpRibApplication => MacroState::Up,
                    _ => MacroState::Down,
                };
                continue;
            }
            if !vp.rib_seen {
                // None of the VP's routes are in the latest RIB dump:
                // declare it down (RouteViews mitigation, footnote 5).
                for (prefix, cell) in vp.cells.iter_mut() {
                    if cell.main.is_some() {
                        Self::mark_dirty(&mut self.dirty, *ip, *prefix, &cell.main);
                        cell.main = None;
                        cell.main_ts = rib_start;
                    }
                    cell.shadow = None;
                }
                vp.state = MacroState::Down;
                continue;
            }
            // Accuracy check + merge.
            let prefixes: Vec<Prefix> = vp.cells.keys().copied().collect();
            for prefix in prefixes {
                // xcheck:allow(unwrap) — key came from this map's iteration
                let cell = vp.cells.get_mut(&prefix).expect("cell present");
                let untouched_since_rib = cell.main_ts <= rib_start;
                match cell.shadow.take() {
                    Some((shadow_route, shadow_ts)) => {
                        if untouched_since_rib && vp.check_ok {
                            self.error_stats.cells_checked += 1;
                            if cell.main != shadow_route {
                                self.error_stats.cells_mismatched += 1;
                            }
                        }
                        // E2: apply only if not older than the cell's
                        // last modification.
                        if shadow_ts >= cell.main_ts && cell.main != shadow_route {
                            Self::mark_dirty(&mut self.dirty, *ip, prefix, &cell.main);
                            cell.main = shadow_route;
                            cell.main_ts = shadow_ts;
                        }
                    }
                    None => {
                        // Announced but absent from the new RIB: stale
                        // unless an update touched it meanwhile.
                        if cell.main.is_some() && untouched_since_rib {
                            if vp.check_ok {
                                self.error_stats.cells_checked += 1;
                                self.error_stats.cells_mismatched += 1;
                            }
                            Self::mark_dirty(&mut self.dirty, *ip, prefix, &cell.main);
                            cell.main = None;
                            cell.main_ts = rib_start;
                        }
                    }
                }
            }
            vp.state = MacroState::Up;
        }
        self.rib_active = false;
        if !corrupted {
            // E3 recovery: a clean RIB restores update processing.
            self.updates_poisoned = false;
        }
    }
}

impl RtPlugin {
    /// Shared body of `process_record` (elem gate: peer-shard hash)
    /// and `process_sharded` (elem gate: the runtime's precomputed
    /// ownership mask). Record-level events — E1/E3 corruption, RIB
    /// dump start/end — always apply, whatever the gate.
    fn process_impl(&mut self, record: &BgpStreamRecord, mask: Option<&[bool]>) {
        if record.collector() != self.collector {
            return;
        }
        let owned = |rt: &RtPlugin, i: usize, ip: &IpAddr| match mask {
            Some(m) => m[i],
            None => rt.owns_peer(ip),
        };
        match record.dump_type() {
            DumpType::Rib => {
                if record.position.is_start() && !self.rib_active {
                    self.begin_rib(record.timestamp);
                }
                if !record.status.is_valid() {
                    self.rib_corrupted = true; // E1
                }
                if self.rib_active {
                    for (i, elem) in record.elems().iter().enumerate() {
                        if !owned(self, i, &elem.peer_address) {
                            continue;
                        }
                        if elem.elem_type != ElemType::RibEntry {
                            continue;
                        }
                        let (Some(prefix), Some(path)) = (elem.prefix, elem.as_path.clone()) else {
                            continue;
                        };
                        let ts = elem.time;
                        let vp = self.vp_entry(elem.peer_address, elem.peer_asn);
                        vp.rib_seen = true;
                        let cell = vp.cells.entry(prefix).or_default();
                        cell.shadow = Some((Some(CellRoute { path }), ts));
                    }
                }
                if record.position.is_end() && self.rib_active {
                    self.end_rib();
                }
            }
            DumpType::Updates => {
                if !record.status.is_valid() {
                    // E3: stop applying updates, wait for next RIB.
                    self.updates_poisoned = true;
                    for vp in self.vps.values_mut() {
                        vp.state = MacroState::Down;
                    }
                    return;
                }
                for (i, elem) in record.elems().iter().enumerate() {
                    if !owned(self, i, &elem.peer_address) {
                        continue;
                    }
                    match elem.elem_type {
                        ElemType::PeerState => {
                            // E4: forced transitions.
                            let rib_active = self.rib_active;
                            let vp = vp_entry_in(
                                &mut self.vps,
                                rib_active,
                                elem.peer_address,
                                elem.peer_asn,
                            );
                            let established =
                                elem.new_state.map(|s| s.is_established()).unwrap_or(false);
                            vp.state = match (established, rib_active) {
                                (true, true) => MacroState::UpRibApplication,
                                (true, false) => MacroState::Up,
                                (false, true) => MacroState::DownRibApplication,
                                (false, false) => MacroState::Down,
                            };
                            if !established {
                                // Session lost: the VP's table is no
                                // longer trustworthy.
                                for (prefix, cell) in vp.cells.iter_mut() {
                                    if cell.main.is_some() {
                                        Self::mark_dirty(
                                            &mut self.dirty,
                                            elem.peer_address,
                                            *prefix,
                                            &cell.main,
                                        );
                                        cell.main = None;
                                        cell.main_ts = elem.time;
                                    }
                                }
                            }
                        }
                        ElemType::Announcement if !self.updates_poisoned => {
                            self.elems_in_bin += 1;
                            let (Some(prefix), Some(path)) = (elem.prefix, elem.as_path.clone())
                            else {
                                continue;
                            };
                            let ts = elem.time;
                            let dirty = &mut self.dirty;
                            let ip = elem.peer_address;
                            let vp = vp_entry_in(&mut self.vps, self.rib_active, ip, elem.peer_asn);
                            let cell = vp.cells.entry(prefix).or_default();
                            let new = Some(CellRoute { path });
                            if cell.main != new {
                                Self::mark_dirty(dirty, ip, prefix, &cell.main);
                                cell.main = new;
                            }
                            cell.main_ts = ts;
                        }
                        ElemType::Withdrawal if !self.updates_poisoned => {
                            self.elems_in_bin += 1;
                            let Some(prefix) = elem.prefix else { continue };
                            let ts = elem.time;
                            let dirty = &mut self.dirty;
                            let ip = elem.peer_address;
                            let vp = vp_entry_in(&mut self.vps, self.rib_active, ip, elem.peer_asn);
                            let cell = vp.cells.entry(prefix).or_default();
                            if cell.main.is_some() {
                                Self::mark_dirty(dirty, ip, prefix, &cell.main);
                                cell.main = None;
                            }
                            cell.main_ts = ts;
                        }
                        _ => {
                            // Poisoned updates still count as elems
                            // received (they are extracted, not applied).
                            if matches!(
                                elem.elem_type,
                                ElemType::Announcement | ElemType::Withdrawal
                            ) {
                                self.elems_in_bin += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Plugin for RtPlugin {
    fn name(&self) -> &'static str {
        "routing-tables"
    }

    fn process_record(&mut self, record: &BgpStreamRecord) {
        self.process_impl(record, None);
    }

    fn end_bin(&mut self, bin_start: u64, _bin_end: u64) {
        // Count real value changes (a cell that flapped back within
        // the bin is not a diff).
        let mut diff_cells: Vec<DiffCell> = Vec::new();
        for ((ip, prefix), prev) in self.dirty.drain() {
            let current = self
                .vps
                .get(&ip)
                .and_then(|vp| vp.cells.get(&prefix))
                .and_then(|c| c.main.clone());
            if current != prev {
                let vp_asn = self.vps.get(&ip).map(|v| v.asn).unwrap_or(Asn(0));
                diff_cells.push(DiffCell {
                    vp: vp_asn,
                    prefix,
                    path: current.map(|r| r.path),
                });
            }
        }
        // Canonical order: the `dirty` drain above is HashMap-ordered,
        // which would make queue payloads differ run to run (and shard
        // layout to shard layout). Only the serializing paths need it
        // — a queue-less sequential plugin just counts the cells.
        if self.mq.is_some() || self.collect_partials {
            sort_cells(&mut diff_cells);
        }
        let elems = self.elems_in_bin;
        // Shard instances (collect_partials) keep no series of their
        // own — the stats travel in the partial, and a 24/7 run must
        // not grow per-shard memory one point per bin.
        if !self.collect_partials {
            self.bin_series.push(RtBinStats {
                bin: bin_start,
                elems,
                diff_cells: diff_cells.len() as u64,
            });
        }
        self.elems_in_bin = 0;

        // Full-table cadence: advanced by publishers (mq) *and* by
        // shard instances, which must ship full cells in the same bins
        // the sequential plugin would publish them.
        let mut full: Option<Vec<DiffCell>> = None;
        if (self.mq.is_some() || self.collect_partials) && self.full_every_bins > 0 {
            self.bins_since_full += 1;
            if self.bins_since_full >= self.full_every_bins {
                self.bins_since_full = 0;
                let mut cells = self.full_cells();
                sort_cells(&mut cells);
                full = Some(cells);
            }
        }

        if self.collect_partials {
            let checked = self.error_stats.cells_checked - self.err_reported.cells_checked;
            let mismatched = self.error_stats.cells_mismatched - self.err_reported.cells_mismatched;
            self.err_reported = self.error_stats;
            let mut out = BytesMut::new();
            out.put_u64(elems);
            out.put_u64(checked);
            out.put_u64(mismatched);
            encode_cells(&mut out, &diff_cells);
            match &full {
                Some(cells) => {
                    out.put_u8(1);
                    encode_cells(&mut out, cells);
                }
                None => out.put_u8(0),
            }
            self.pending_partial = Some(out.to_vec());
        }
        self.publish(bin_start, diff_cells, full);
    }

    fn partitioning(&self) -> Partitioning {
        // Everything this plugin tracks — cells, FSM state, `rib_seen`
        // bookkeeping, accuracy checks — is keyed by the VP, so peer
        // sharding partitions the state exactly. (Prefix sharding
        // would *not* be safe here: a shard seeing none of a VP's RIB
        // rows would wrongly declare the VP down via the footnote-5
        // rule.)
        Partitioning::ByPeer
    }

    /// Everything except configuration (queue handle, full-table
    /// cadence, shard assignment), through the queue codec's own
    /// prefix/ip/route vocabulary, each section in canonical order.
    fn checkpoint(&self) -> Vec<u8> {
        use crate::codec::{ip_sort_key, prefix_sort_key, put_ip, put_prefix, put_route};

        let mut out = BytesMut::new();
        out.put_u8(1); // version
        out.put_u16(self.collector.len() as u16);
        out.put_slice(self.collector.as_bytes());

        let mut vps: Vec<(&IpAddr, &VpTable)> = self.vps.iter().collect();
        vps.sort_by_key(|(ip, _)| ip_sort_key(ip));
        out.put_u32(vps.len() as u32);
        for (ip, vp) in vps {
            put_ip(&mut out, ip);
            out.put_u32(vp.asn.0);
            out.put_u8(match vp.state {
                MacroState::Down => 0,
                MacroState::DownRibApplication => 1,
                MacroState::Up => 2,
                MacroState::UpRibApplication => 3,
            });
            out.put_u8(vp.rib_seen as u8);
            out.put_u8(vp.check_ok as u8);
            let mut cells: Vec<(&Prefix, &Cell)> = vp.cells.iter().collect();
            cells.sort_by_key(|(p, _)| prefix_sort_key(p));
            out.put_u32(cells.len() as u32);
            for (prefix, cell) in cells {
                put_prefix(&mut out, prefix);
                put_route(&mut out, &cell.main.as_ref().map(|r| r.path.clone()));
                out.put_u64(cell.main_ts);
                match &cell.shadow {
                    None => out.put_u8(0),
                    Some((route, ts)) => {
                        out.put_u8(1);
                        put_route(&mut out, &route.as_ref().map(|r| r.path.clone()));
                        out.put_u64(*ts);
                    }
                }
            }
        }

        let mut dirty: Vec<(&(IpAddr, Prefix), &Option<CellRoute>)> = self.dirty.iter().collect();
        dirty.sort_by_key(|((ip, p), _)| (ip_sort_key(ip), prefix_sort_key(p)));
        out.put_u32(dirty.len() as u32);
        for ((ip, prefix), prev) in dirty {
            put_ip(&mut out, ip);
            put_prefix(&mut out, prefix);
            put_route(&mut out, &prev.as_ref().map(|r| r.path.clone()));
        }

        out.put_u64(self.elems_in_bin);
        out.put_u8(self.rib_active as u8);
        out.put_u8(self.rib_corrupted as u8);
        out.put_u64(self.rib_start_ts);
        out.put_u8(self.updates_poisoned as u8);
        out.put_u64(self.bins_since_full);
        match &self.pending_partial {
            None => out.put_u8(0),
            Some(p) => {
                out.put_u8(1);
                out.put_u32(p.len() as u32);
                out.put_slice(p);
            }
        }
        for stats in [&self.err_reported, &self.error_stats] {
            out.put_u64(stats.cells_checked);
            out.put_u64(stats.cells_mismatched);
        }
        out.put_u32(self.bin_series.len() as u32);
        for s in &self.bin_series {
            out.put_u64(s.bin);
            out.put_u64(s.elems);
            out.put_u64(s.diff_cells);
        }
        out.to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        use crate::codec::{get_ip, get_prefix, get_route};

        fn need(buf: &[u8], n: usize, what: &str) -> Result<(), String> {
            if buf.len() < n {
                Err(format!("rt checkpoint: truncated {what}"))
            } else {
                Ok(())
            }
        }

        let mut buf = bytes;
        need(buf, 3, "header")?;
        let version = buf.get_u8();
        if version != 1 {
            return Err(format!("rt checkpoint: unknown version {version}"));
        }
        let name_len = buf.get_u16() as usize;
        need(buf, name_len, "collector name")?;
        let collector = String::from_utf8_lossy(&buf[..name_len]).into_owned();
        buf.advance(name_len);
        if collector != self.collector {
            return Err(format!(
                "rt checkpoint: collector mismatch (checkpoint {collector:?}, instance {:?})",
                self.collector
            ));
        }

        need(buf, 4, "vp count")?;
        let n = buf.get_u32() as usize;
        let mut vps = FxHashMap::default();
        for _ in 0..n {
            let ip = get_ip(&mut buf)?;
            need(buf, 4 + 3, "vp header")?;
            let asn = Asn(buf.get_u32());
            let state = match buf.get_u8() {
                0 => MacroState::Down,
                1 => MacroState::DownRibApplication,
                2 => MacroState::Up,
                3 => MacroState::UpRibApplication,
                s => return Err(format!("rt checkpoint: unknown macro state {s}")),
            };
            let rib_seen = buf.get_u8() == 1;
            let check_ok = buf.get_u8() == 1;
            need(buf, 4, "cell count")?;
            let cell_count = buf.get_u32() as usize;
            let mut cells = FxHashMap::default();
            for _ in 0..cell_count {
                let prefix = get_prefix(&mut buf)?;
                let main = get_route(&mut buf)?.map(|path| CellRoute { path });
                need(buf, 8 + 1, "cell timestamps")?;
                let main_ts = buf.get_u64();
                let shadow = if buf.get_u8() == 1 {
                    let route = get_route(&mut buf)?.map(|path| CellRoute { path });
                    need(buf, 8, "shadow timestamp")?;
                    Some((route, buf.get_u64()))
                } else {
                    None
                };
                cells.insert(
                    prefix,
                    Cell {
                        main,
                        main_ts,
                        shadow,
                    },
                );
            }
            vps.insert(
                ip,
                VpTable {
                    asn,
                    state,
                    cells,
                    rib_seen,
                    check_ok,
                },
            );
        }

        need(buf, 4, "dirty count")?;
        let n = buf.get_u32() as usize;
        let mut dirty = FxHashMap::default();
        for _ in 0..n {
            let ip = get_ip(&mut buf)?;
            let prefix = get_prefix(&mut buf)?;
            let prev = get_route(&mut buf)?.map(|path| CellRoute { path });
            dirty.insert((ip, prefix), prev);
        }

        need(buf, 8 + 1 + 1 + 8 + 1 + 8 + 1, "scalar state")?;
        let elems_in_bin = buf.get_u64();
        let rib_active = buf.get_u8() == 1;
        let rib_corrupted = buf.get_u8() == 1;
        let rib_start_ts = buf.get_u64();
        let updates_poisoned = buf.get_u8() == 1;
        let bins_since_full = buf.get_u64();
        let pending_partial = if buf.get_u8() == 1 {
            need(buf, 4, "partial length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "partial body")?;
            let body = buf[..len].to_vec();
            buf.advance(len);
            Some(body)
        } else {
            None
        };
        need(buf, 32 + 4, "counters")?;
        let err_reported = RtErrorStats {
            cells_checked: buf.get_u64(),
            cells_mismatched: buf.get_u64(),
        };
        let error_stats = RtErrorStats {
            cells_checked: buf.get_u64(),
            cells_mismatched: buf.get_u64(),
        };
        let n = buf.get_u32() as usize;
        need(buf, n * 24, "bin series")?;
        let bin_series = (0..n)
            .map(|_| RtBinStats {
                bin: buf.get_u64(),
                elems: buf.get_u64(),
                diff_cells: buf.get_u64(),
            })
            .collect();
        if !buf.is_empty() {
            return Err("rt checkpoint: trailing bytes".into());
        }

        self.vps = vps;
        self.dirty = dirty;
        self.elems_in_bin = elems_in_bin;
        self.rib_active = rib_active;
        self.rib_corrupted = rib_corrupted;
        self.rib_start_ts = rib_start_ts;
        self.updates_poisoned = updates_poisoned;
        self.bins_since_full = bins_since_full;
        self.pending_partial = pending_partial;
        self.err_reported = err_reported;
        self.bin_series = bin_series;
        self.error_stats = error_stats;
        Ok(())
    }
}

impl RtPlugin {
    /// Every announced cell of every available VP (the `Full` message
    /// body), unsorted.
    fn full_cells(&self) -> Vec<DiffCell> {
        let mut cells = Vec::new();
        for vp in self.vps.values() {
            if !vp.state.table_available() {
                continue;
            }
            for (prefix, cell) in &vp.cells {
                if let Some(route) = &cell.main {
                    cells.push(DiffCell {
                        vp: vp.asn,
                        prefix: *prefix,
                        path: Some(route.path.clone()),
                    });
                }
            }
        }
        cells
    }

    /// Publish one bin's outputs to the queue (no-op without one).
    /// Shared by the sequential `end_bin` and the sharded merge, so
    /// both paths emit identical message sequences.
    fn publish(&self, bin_start: u64, diff: Vec<DiffCell>, full: Option<Vec<DiffCell>>) {
        let Some(mq) = &self.mq else { return };
        let msg = RtMessage::Diff {
            collector: self.collector.clone(),
            bin: bin_start,
            cells: diff,
        };
        mq.produce("rt.tables", &self.collector, bin_start, msg.encode());
        if let Some(cells) = full {
            let full = RtMessage::Full {
                collector: self.collector.clone(),
                bin: bin_start,
                cells,
            };
            mq.produce("rt.tables", &self.collector, bin_start, full.encode());
        }
        mq.produce(
            "rt.meta",
            &self.collector,
            bin_start,
            encode_meta(&self.collector, bin_start),
        );
    }
}

impl ShardedPlugin for RtPlugin {
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin> {
        let mut fresh = RtPlugin::new(&self.collector);
        // Shards compute full-table cells only if the root will
        // actually publish them.
        fresh.full_every_bins = if self.mq.is_some() {
            self.full_every_bins
        } else {
            0
        };
        fresh.shard = Some((shard, shards));
        fresh.collect_partials = true;
        Box::new(fresh)
    }

    fn process_sharded(&mut self, record: &BgpStreamRecord, mask: &[bool]) {
        self.process_impl(record, Some(mask));
    }

    fn take_partial(&mut self) -> Vec<u8> {
        self.pending_partial
            .take()
            // xcheck:allow(unwrap) — protocol: end_bin always precedes take_partial
            .expect("take_partial follows end_bin on a shard instance")
    }

    fn merge_bin(&mut self, bin_start: u64, _bin_end: u64, partials: Vec<Vec<u8>>) {
        let mut elems = 0u64;
        let mut checked = 0u64;
        let mut mismatched = 0u64;
        let mut diff: Vec<DiffCell> = Vec::new();
        let mut full: Option<Vec<DiffCell>> = None;
        for partial in &partials {
            let mut buf = &partial[..];
            elems += buf.get_u64();
            checked += buf.get_u64();
            mismatched += buf.get_u64();
            // xcheck:allow(unwrap) — partials are produced by our own take_partial
            diff.extend(decode_cells(&mut buf).expect("well-formed shard partial"));
            if buf.get_u8() == 1 {
                full.get_or_insert_with(Vec::new)
                    // xcheck:allow(unwrap) — same encoder wrote this buffer
                    .extend(decode_cells(&mut buf).expect("well-formed shard partial"));
            }
        }
        // VPs are disjoint across shards, so concatenation + canonical
        // sort reproduces the sequential cell lists exactly.
        sort_cells(&mut diff);
        if let Some(cells) = &mut full {
            sort_cells(cells);
        }
        self.bin_series.push(RtBinStats {
            bin: bin_start,
            elems,
            diff_cells: diff.len() as u64,
        });
        self.error_stats.cells_checked += checked;
        self.error_stats.cells_mismatched += mismatched;
        self.publish(bin_start, diff, full);
    }
}

fn vp_entry_in(
    vps: &mut FxHashMap<IpAddr, VpTable>,
    rib_active: bool,
    ip: IpAddr,
    asn: Asn,
) -> &mut VpTable {
    vps.entry(ip).or_insert_with(|| VpTable {
        asn,
        state: if rib_active {
            MacroState::DownRibApplication
        } else {
            MacroState::Down
        },
        cells: FxHashMap::default(),
        rib_seen: false,
        check_ok: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::SessionState;
    use bgpstream::record::{DumpPosition, RecordStatus};
    use bgpstream::BgpStreamElem;

    const VP: &str = "10.1.0.1";

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn vp_ip() -> IpAddr {
        VP.parse().unwrap()
    }

    fn rec(
        ts: u64,
        dump_type: DumpType,
        position: DumpPosition,
        status: RecordStatus,
        elems: Vec<BgpStreamElem>,
    ) -> BgpStreamRecord {
        BgpStreamRecord::new("ris", "rrc00", dump_type, 0, ts, position, status, elems)
    }

    fn elem(ty: ElemType, ts: u64, prefix: &str, path: &[u32]) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ty,
            time: ts,
            peer_address: vp_ip(),
            peer_asn: Asn(65001),
            prefix: Some(p(prefix)),
            next_hop: None,
            as_path: if path.is_empty() {
                None
            } else {
                Some(AsPath::from_sequence(path.iter().copied()))
            },
            communities: None,
            old_state: None,
            new_state: None,
        }
    }

    fn state_elem(ts: u64, new_state: SessionState) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::PeerState,
            prefix: None,
            old_state: Some(SessionState::Established),
            new_state: Some(new_state),
            ..elem(ElemType::PeerState, ts, "0.0.0.0/0", &[])
        }
    }

    /// A 2-record RIB dump carrying one route.
    fn feed_rib(rt: &mut RtPlugin, ts: u64, prefix: &str, path: &[u32]) {
        rt.process_record(&rec(
            ts,
            DumpType::Rib,
            DumpPosition::Start,
            RecordStatus::Valid,
            vec![],
        ));
        rt.process_record(&rec(
            ts,
            DumpType::Rib,
            DumpPosition::End,
            RecordStatus::Valid,
            vec![elem(ElemType::RibEntry, ts, prefix, path)],
        ));
    }

    #[test]
    fn fsm_walks_down_rib_up() {
        let mut rt = RtPlugin::new("rrc00");
        assert_eq!(rt.vp_state(vp_ip()), None);
        rt.process_record(&rec(
            100,
            DumpType::Rib,
            DumpPosition::Start,
            RecordStatus::Valid,
            vec![],
        ));
        rt.process_record(&rec(
            100,
            DumpType::Rib,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::RibEntry, 100, "10.0.0.0/8", &[65001, 137])],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::DownRibApplication));
        rt.process_record(&rec(
            101,
            DumpType::Rib,
            DumpPosition::End,
            RecordStatus::Valid,
            vec![],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
        assert_eq!(rt.vp_table_size(vp_ip()), 1);
    }

    #[test]
    fn updates_evolve_the_table() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        rt.process_record(&rec(
            200,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(
                ElemType::Announcement,
                200,
                "20.0.0.0/16",
                &[65001, 9],
            )],
        ));
        assert_eq!(rt.vp_table_size(vp_ip()), 2);
        rt.process_record(&rec(
            210,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::Withdrawal, 210, "10.0.0.0/8", &[])],
        ));
        assert_eq!(rt.vp_table_size(vp_ip()), 1);
    }

    #[test]
    fn e1_corrupted_rib_is_ignored_entirely() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        // Second RIB claims a different path but contains a corrupted
        // record: it must be discarded; the table keeps the old path.
        rt.process_record(&rec(
            500,
            DumpType::Rib,
            DumpPosition::Start,
            RecordStatus::Valid,
            vec![],
        ));
        rt.process_record(&rec(
            500,
            DumpType::Rib,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::RibEntry, 500, "10.0.0.0/8", &[65001, 666])],
        ));
        rt.process_record(&rec(
            501,
            DumpType::Rib,
            DumpPosition::Middle,
            RecordStatus::CorruptedRecord,
            vec![],
        ));
        rt.process_record(&rec(
            502,
            DumpType::Rib,
            DumpPosition::End,
            RecordStatus::Valid,
            vec![],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
        // Route unchanged (old path), and no accuracy penalty counted.
        let errs = rt.error_stats;
        assert_eq!(errs.cells_checked, 0);
        assert_eq!(rt.vp_table_size(vp_ip()), 1);
    }

    #[test]
    fn e2_stale_rib_rows_do_not_overwrite_newer_updates() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        // An update at t=600 changes the path.
        rt.process_record(&rec(
            600,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(
                ElemType::Announcement,
                600,
                "10.0.0.0/8",
                &[65001, 42],
            )],
        ));
        // A RIB whose records carry OLDER timestamps (out-of-order
        // publication): must not clobber the newer update.
        feed_rib(&mut rt, 550, "10.0.0.0/8", &[65001, 137]);
        // Table must still hold the t=600 path: check via diff series.
        rt.end_bin(0, 3600);
        // The final value (path 42) vs pre-bin value (none → announced)
        // is one diff; crucially the *stale* RIB didn't revert it.
        // Verify by re-announcing the same path: no new diff.
        rt.process_record(&rec(
            700,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(
                ElemType::Announcement,
                700,
                "10.0.0.0/8",
                &[65001, 42],
            )],
        ));
        rt.end_bin(3600, 7200);
        assert_eq!(rt.bin_series.last().unwrap().diff_cells, 0);
    }

    #[test]
    fn e3_corrupted_update_poisons_until_next_rib() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        rt.process_record(&rec(
            200,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::CorruptedRecord,
            vec![],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Down));
        // Updates while poisoned are not applied.
        rt.process_record(&rec(
            210,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement, 210, "30.0.0.0/8", &[65001, 9])],
        ));
        assert_eq!(rt.vp_table_size(vp_ip()), 1);
        // A clean RIB restores processing.
        feed_rib(&mut rt, 300, "10.0.0.0/8", &[65001, 137]);
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
        rt.process_record(&rec(
            400,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement, 400, "30.0.0.0/8", &[65001, 9])],
        ));
        assert_eq!(rt.vp_table_size(vp_ip()), 2);
    }

    #[test]
    fn e4_state_messages_force_transitions() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
        rt.process_record(&rec(
            200,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![state_elem(200, SessionState::Idle)],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Down));
        assert_eq!(rt.vp_table_size(vp_ip()), 0, "down VP's table cleared");
        rt.process_record(&rec(
            300,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![state_elem(300, SessionState::Established)],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
    }

    #[test]
    fn vp_missing_from_rib_is_declared_down() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Up));
        // Next RIB has no rows for this VP (e.g. RouteViews VP died
        // silently).
        rt.process_record(&rec(
            500,
            DumpType::Rib,
            DumpPosition::Start,
            RecordStatus::Valid,
            vec![],
        ));
        rt.process_record(&rec(
            501,
            DumpType::Rib,
            DumpPosition::End,
            RecordStatus::Valid,
            vec![],
        ));
        assert_eq!(rt.vp_state(vp_ip()), Some(MacroState::Down));
        assert_eq!(rt.vp_table_size(vp_ip()), 0);
    }

    #[test]
    fn accuracy_check_counts_mismatches() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        // Second RIB agrees → checked, no mismatch.
        feed_rib(&mut rt, 500, "10.0.0.0/8", &[65001, 137]);
        assert_eq!(rt.error_stats.cells_checked, 1);
        assert_eq!(rt.error_stats.cells_mismatched, 0);
        // Third RIB disagrees (we "missed" an update) → mismatch.
        feed_rib(&mut rt, 900, "10.0.0.0/8", &[65001, 42]);
        assert_eq!(rt.error_stats.cells_checked, 2);
        assert_eq!(rt.error_stats.cells_mismatched, 1);
        assert!(rt.error_stats.error_probability() > 0.0);
    }

    #[test]
    fn diff_cells_dedupe_within_bin_and_ignore_flap_backs() {
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 0, "10.0.0.0/8", &[65001, 137]);
        rt.end_bin(0, 60); // absorb RIB-application diffs
        let announce = |rt: &mut RtPlugin, ts: u64, path: &[u32]| {
            rt.process_record(&rec(
                ts,
                DumpType::Updates,
                DumpPosition::Middle,
                RecordStatus::Valid,
                vec![elem(ElemType::Announcement, ts, "10.0.0.0/8", path)],
            ));
        };
        // Path flaps A→B→A within one bin: zero diffs.
        announce(&mut rt, 70, &[65001, 42]);
        announce(&mut rt, 80, &[65001, 137]);
        rt.end_bin(60, 120);
        let s = rt.bin_series.last().unwrap();
        assert_eq!(s.elems, 2);
        assert_eq!(s.diff_cells, 0);
        // A single real change: one diff despite two updates.
        announce(&mut rt, 130, &[65001, 42]);
        announce(&mut rt, 140, &[65001, 42]);
        rt.end_bin(120, 180);
        let s = rt.bin_series.last().unwrap();
        assert_eq!(s.elems, 2);
        assert_eq!(s.diff_cells, 1);
    }

    #[test]
    fn queue_publication_emits_diffs_and_meta() {
        let mq = Cluster::shared();
        let mut rt = RtPlugin::new("rrc00").with_queue(mq.clone(), 2);
        feed_rib(&mut rt, 0, "10.0.0.0/8", &[65001, 137]);
        rt.end_bin(0, 60);
        rt.end_bin(60, 120); // triggers a Full (every 2 bins)
        let msgs = mq.fetch("rt.tables", 0, 0, 10);
        assert!(msgs.len() >= 2);
        let first = RtMessage::decode(&msgs[0].payload).unwrap();
        assert!(matches!(first, RtMessage::Diff { .. }));
        assert_eq!(first.cells().len(), 1);
        let has_full = msgs
            .iter()
            .any(|m| matches!(RtMessage::decode(&m.payload), Ok(RtMessage::Full { .. })));
        assert!(has_full, "no full table published");
        assert_eq!(mq.stats("rt.meta").messages, 2);
    }

    #[test]
    fn records_from_other_collectors_are_ignored() {
        let mut rt = RtPlugin::new("rrc00");
        let mut other = rec(
            10,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement, 10, "10.0.0.0/8", &[65001, 1])],
        );
        other.source = broker::SourceId::intern("ris", "rrc99", DumpType::Updates);
        rt.process_record(&other);
        assert_eq!(rt.vp_state(vp_ip()), None);
    }

    #[test]
    fn checkpoint_restores_tables_fsm_and_series_byte_identically() {
        // Build non-trivial state: a table, an in-flight updates bin
        // with dirty cells, a closed bin in the series, and a shadow
        // RIB application left open mid-dump.
        let mut rt = RtPlugin::new("rrc00");
        feed_rib(&mut rt, 100, "10.0.0.0/8", &[65001, 137]);
        rt.process_record(&rec(
            130,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(
                ElemType::Announcement,
                130,
                "20.0.0.0/16",
                &[65001, 9],
            )],
        ));
        rt.end_bin(120, 180);
        rt.process_record(&rec(
            190,
            DumpType::Updates,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::Withdrawal, 190, "10.0.0.0/8", &[])],
        ));
        // Leave a RIB application open so shadow cells are live.
        rt.process_record(&rec(
            200,
            DumpType::Rib,
            DumpPosition::Start,
            RecordStatus::Valid,
            vec![],
        ));
        rt.process_record(&rec(
            200,
            DumpType::Rib,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem(ElemType::RibEntry, 200, "20.0.0.0/16", &[65001, 9])],
        ));

        let ckpt = rt.checkpoint();
        let mut restored = RtPlugin::new("rrc00");
        restored.restore(&ckpt).expect("restore");
        assert_eq!(restored.checkpoint(), ckpt);

        // Both instances must continue byte-identically: finish the
        // dump, evolve the table, close the bin.
        for plugin in [&mut rt, &mut restored] {
            plugin.process_record(&rec(
                201,
                DumpType::Rib,
                DumpPosition::End,
                RecordStatus::Valid,
                vec![],
            ));
            plugin.process_record(&rec(
                210,
                DumpType::Updates,
                DumpPosition::Middle,
                RecordStatus::Valid,
                vec![elem(
                    ElemType::Announcement,
                    210,
                    "30.0.0.0/24",
                    &[65001, 2],
                )],
            ));
            plugin.end_bin(180, 240);
        }
        assert_eq!(rt.bin_series, restored.bin_series);
        assert_eq!(rt.error_stats, restored.error_stats);
        assert_eq!(rt.checkpoint(), restored.checkpoint());

        // A different collector's instance must refuse the checkpoint,
        // and torn checkpoints must fail loudly rather than restore a
        // partial table.
        let mut wrong = RtPlugin::new("rrc01");
        assert!(wrong.restore(&ckpt).is_err());
        let mut fresh = RtPlugin::new("rrc00");
        assert!(fresh.restore(&ckpt[..ckpt.len() - 1]).is_err());
        assert!(fresh.restore(&[]).is_err());
    }
}
