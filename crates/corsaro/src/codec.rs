//! Serialization of RT plugin output for the message queue (§6.2.2),
//! plus the shared primitives plugin checkpoints are built from.
//!
//! At the end of each time bin the RT plugin transmits the *changed*
//! portions of each VP's routing table ("diff cells"); periodically it
//! also transmits entire routing tables so consumers can (re)sync and
//! then apply subsequent diffs.
//!
//! The checkpoint/restore path (`Plugin::checkpoint`) reuses the same
//! wire vocabulary — [`put_prefix`]/[`get_prefix`],
//! [`put_ip`]/[`get_ip`], [`put_route`]/[`get_route`] — so a restored
//! plugin serializes and publishes byte-identically to one that never
//! died, and [`seal_frame`]/[`open_frame`] add the checksum envelope
//! the supervisor uses to reject checkpoints torn mid-flush.

use bgp_types::{AsPath, Asn, Prefix};
use bytes::{Buf, BufMut, BytesMut};

// The wire/checkpoint primitives themselves now live in the core
// library (`bgpstream::codec`) so the RIB layer can seal snapshots
// with the same vocabulary below the plugin runtime; re-exported here
// so historical `corsaro::codec::*` call sites are unaffected.
pub use bgpstream::codec::{
    get_ip, get_prefix, get_route, ip_sort_key, open_frame, prefix_sort_key, put_ip, put_prefix,
    put_route, seal_frame,
};

/// One changed (or full-table) cell: the state of `<prefix, VP>`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffCell {
    /// The VP's AS number.
    pub vp: Asn,
    /// The prefix.
    pub prefix: Prefix,
    /// The AS path of the selected route; `None` = withdrawn
    /// (the cell's A/W flag).
    pub path: Option<AsPath>,
}

/// Sort cells into the canonical publication order: `(vp, prefix,
/// path)`. Both the sequential RT plugin and the sharded runtime's
/// merge publish in this order, which is what makes their queue
/// payloads byte-identical (a `HashMap` drain order would differ from
/// run to run, let alone between shard layouts).
pub fn sort_cells(cells: &mut [DiffCell]) {
    cells.sort_by_cached_key(|c| {
        (
            c.vp.0,
            !c.prefix.is_ipv4(),
            c.prefix.len(),
            c.prefix.raw_bits(),
            c.path
                .as_ref()
                .map(|p| p.asns().map(|a| a.0).collect::<Vec<u32>>()),
        )
    });
}

/// Append the wire form of `cells` (count-prefixed) to `out`.
pub fn encode_cells(out: &mut BytesMut, cells: &[DiffCell]) {
    out.put_u32(cells.len() as u32);
    for c in cells {
        out.put_u32(c.vp.0);
        put_prefix(out, &c.prefix);
        put_route(out, &c.path);
    }
}

/// Decode a count-prefixed cell list, advancing `buf` past it.
pub fn decode_cells(buf: &mut &[u8]) -> Result<Vec<DiffCell>, String> {
    if buf.len() < 4 {
        return Err("truncated cell count".into());
    }
    let count = buf.get_u32() as usize;
    let mut cells = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.len() < 4 {
            return Err("truncated cell".into());
        }
        let vp = Asn(buf.get_u32());
        let prefix = get_prefix(buf)?;
        let path = get_route(buf)?;
        cells.push(DiffCell { vp, prefix, path });
    }
    Ok(cells)
}

/// An RT plugin bin message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtMessage {
    /// Changed cells between the previous bin's table and this one.
    Diff {
        /// Producing collector.
        collector: String,
        /// Bin start time.
        bin: u64,
        /// Changed cells.
        cells: Vec<DiffCell>,
    },
    /// A complete routing-table snapshot (sync point for consumers).
    Full {
        /// Producing collector.
        collector: String,
        /// Bin start time.
        bin: u64,
        /// Every announced cell.
        cells: Vec<DiffCell>,
    },
}

impl RtMessage {
    /// Bin start time.
    pub fn bin(&self) -> u64 {
        match self {
            RtMessage::Diff { bin, .. } | RtMessage::Full { bin, .. } => *bin,
        }
    }

    /// Producing collector.
    pub fn collector(&self) -> &str {
        match self {
            RtMessage::Diff { collector, .. } | RtMessage::Full { collector, .. } => collector,
        }
    }

    /// The cells.
    pub fn cells(&self) -> &[DiffCell] {
        match self {
            RtMessage::Diff { cells, .. } | RtMessage::Full { cells, .. } => cells,
        }
    }

    /// Binary encoding.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, collector, bin, cells) = match self {
            RtMessage::Diff {
                collector,
                bin,
                cells,
            } => (0u8, collector, *bin, cells),
            RtMessage::Full {
                collector,
                bin,
                cells,
            } => (1u8, collector, *bin, cells),
        };
        let mut out = BytesMut::new();
        out.put_u8(kind);
        out.put_u64(bin);
        out.put_u16(collector.len() as u16);
        out.put_slice(collector.as_bytes());
        encode_cells(&mut out, cells);
        out.to_vec()
    }

    /// Binary decoding.
    pub fn decode(mut buf: &[u8]) -> Result<RtMessage, String> {
        if buf.len() < 15 {
            return Err("rt message too short".into());
        }
        let kind = buf.get_u8();
        let bin = buf.get_u64();
        let name_len = buf.get_u16() as usize;
        if buf.len() < name_len + 4 {
            return Err("truncated collector name".into());
        }
        let collector = String::from_utf8_lossy(&buf[..name_len]).into_owned();
        buf.advance(name_len);
        let cells = decode_cells(&mut buf)?;
        match kind {
            0 => Ok(RtMessage::Diff {
                collector,
                bin,
                cells,
            }),
            1 => Ok(RtMessage::Full {
                collector,
                bin,
                cells,
            }),
            k => Err(format!("unknown rt message kind {k}")),
        }
    }
}

/// Sync meta-data: `(collector, bin)` markers watched by sync servers.
pub fn encode_meta(collector: &str, bin: u64) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u64(bin);
    out.put_slice(collector.as_bytes());
    out.to_vec()
}

/// Decode a sync meta-data marker.
pub fn decode_meta(mut buf: &[u8]) -> Result<(String, u64), String> {
    if buf.len() < 8 {
        return Err("meta too short".into());
    }
    let bin = buf.get_u64();
    Ok((String::from_utf8_lossy(buf).into_owned(), bin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn cells() -> Vec<DiffCell> {
        vec![
            DiffCell {
                vp: Asn(65001),
                prefix: "193.204.0.0/15".parse().unwrap(),
                path: Some(AsPath::from_sequence([65001, 3356, 137])),
            },
            DiffCell {
                vp: Asn(65002),
                prefix: "2001:db8::/32".parse().unwrap(),
                path: None,
            },
        ]
    }

    #[test]
    fn diff_roundtrip() {
        let m = RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 300,
            cells: cells(),
        };
        assert_eq!(RtMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn full_roundtrip() {
        let m = RtMessage::Full {
            collector: "route-views2".into(),
            bin: 0,
            cells: vec![],
        };
        assert_eq!(RtMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RtMessage::decode(&[]).is_err());
        assert!(RtMessage::decode(&[9; 20]).is_err());
        let mut ok = RtMessage::Diff {
            collector: "c".into(),
            bin: 1,
            cells: cells(),
        }
        .encode();
        ok.truncate(ok.len() - 3);
        assert!(RtMessage::decode(&ok).is_err());
    }

    #[test]
    fn sort_cells_is_canonical_regardless_of_input_order() {
        let mut a = cells();
        a.push(DiffCell {
            vp: Asn(65001),
            prefix: "193.204.0.0/15".parse().unwrap(),
            path: None,
        });
        let mut b = a.clone();
        b.reverse();
        sort_cells(&mut a);
        sort_cells(&mut b);
        assert_eq!(a, b);
        // v4 sorts before v6 for the same VP ordering rules.
        assert!(a[0].prefix.is_ipv4());
    }

    #[test]
    fn meta_roundtrip() {
        let raw = encode_meta("rrc12", 900);
        assert_eq!(decode_meta(&raw).unwrap(), ("rrc12".to_string(), 900));
        assert!(decode_meta(&[1, 2]).is_err());
    }

    #[test]
    fn primitive_roundtrips() {
        let mut out = BytesMut::new();
        let p4: Prefix = "193.204.0.0/15".parse().unwrap();
        let p6: Prefix = "2001:db8::/32".parse().unwrap();
        let ip4: IpAddr = "192.0.2.1".parse().unwrap();
        let ip6: IpAddr = "2001:db8::9".parse().unwrap();
        put_prefix(&mut out, &p4);
        put_prefix(&mut out, &p6);
        put_ip(&mut out, &ip4);
        put_ip(&mut out, &ip6);
        put_route(&mut out, &None);
        put_route(&mut out, &Some(AsPath::from_sequence([65001, 137])));
        let bytes = out.to_vec();
        let mut buf = &bytes[..];
        assert_eq!(get_prefix(&mut buf).unwrap(), p4);
        assert_eq!(get_prefix(&mut buf).unwrap(), p6);
        assert_eq!(get_ip(&mut buf).unwrap(), ip4);
        assert_eq!(get_ip(&mut buf).unwrap(), ip6);
        assert_eq!(get_route(&mut buf).unwrap(), None);
        assert_eq!(
            get_route(&mut buf).unwrap(),
            Some(AsPath::from_sequence([65001, 137]))
        );
        assert!(buf.is_empty());
        assert!(get_prefix(&mut buf).is_err());
    }

    #[test]
    fn sealed_frames_reject_any_torn_write() {
        let payload = b"per-bin partial state".to_vec();
        let frame = seal_frame(&payload);
        assert_eq!(open_frame(&frame).unwrap(), &payload[..]);
        // Torn anywhere: short prefix, clipped tail, flipped byte.
        for cut in [1, 5, frame.len() - 1] {
            assert!(open_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = frame.clone();
        flipped[6] ^= 0x40;
        assert!(open_frame(&flipped).is_err());
    }
}
