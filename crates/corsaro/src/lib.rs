//! BGPCorsaro (§6.1): continuous extraction of derived data from a
//! BGP stream in regular time bins, through a pipeline of plugins.
//!
//! Because libBGPStream provides a time-sorted stream of records,
//! BGPCorsaro can recognise the end of a time bin even when processing
//! data from multiple collectors: the runner watches record
//! timestamps and calls every plugin's `end_bin` when a boundary
//! passes.
//!
//! * [`pipeline`] — the [`pipeline::Plugin`] trait and the
//!   bin-driving runner;
//! * [`pfxmonitor`] — the §6.1 sample plugin: monitors prefixes
//!   overlapping a set of IP ranges and reports, per bin, the number
//!   of unique prefixes and unique origin ASNs (Figure 6);
//! * [`rt`] — the routing-tables (RT) plugin of §6.2.1: reconstructs
//!   each VP's observable Loc-RIB from RIB and Updates dumps via the
//!   Figure 8 FSM (shadow cells, events E1–E4), publishes per-bin
//!   diffs (§6.2.2, Figure 9) and tracks its own accuracy;
//! * [`codec`] — the diff/full-table serialization used for the
//!   Kafka-like queue;
//! * [`tag`] — stateless classification/tagging plugins and the
//!   tag-aware pipeline runner (§6.1's stateless plugin class);
//! * [`ribfeed`] — the RIB-feeding plugin: runs a `rib::RibFold`
//!   inside either runtime so live bin closes advance the queryable
//!   RIB watermark (`rib::RibQuery` resolves against the same store);
//! * [`runtime`] — the sharded multi-core runtime: fans the sorted
//!   elem stream out to N shard workers (hash-partitioned by prefix
//!   or by peer, declared per plugin via
//!   [`pipeline::Plugin::partitioning`]) and merges per-bin shard
//!   outputs deterministically, so results are byte-identical to the
//!   sequential pipeline.

#![forbid(unsafe_code)]

pub mod codec;
pub mod pfxmonitor;
pub mod pipeline;
pub mod ribfeed;
pub mod rt;
pub mod runtime;
pub mod stats;
pub mod tag;

pub use pfxmonitor::{PfxMonitor, PfxPoint};
pub use pipeline::{run_pipeline, run_pipeline_until, Partitioning, Plugin};
pub use ribfeed::RibFeeder;
pub use rt::{RtBinStats, RtErrorStats, RtPlugin};
pub use runtime::{
    BinStatus, Chaos, KillSpec, LiveRunReport, RuntimeError, ShardedPlugin, ShardedRuntime,
    ShardedRuntimeBuilder, Supervisor, SupervisorConfig,
};
pub use stats::{BinCounters, ElemCounter, StatsPoint};
pub use tag::{
    run_tagged_pipeline, ClassifierTagger, GeoTagger, TagCounter, TagGate, TagSet, TaggedPlugin,
    Tagger,
};
