//! The pfxmonitor plugin (§6.1, Figure 6).
//!
//! Monitors prefixes overlapping a given set of IP address ranges.
//! For each record it (1) selects only RIB and Updates records related
//! to overlapping prefixes, and (2) tracks, for each `<prefix, VP>`
//! pair, the ASN that originated the route. At the end of each time
//! bin it outputs the number of unique prefixes identified and the
//! number of unique origin ASNs observed by all the VPs — the two
//! time series whose divergence exposes the GARR hijacks in Figure 6.

use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

use bgp_types::trie::PrefixMatch;
use bgp_types::{Asn, Prefix, PrefixTrie};
use bgpstream::{BgpStreamRecord, ElemType};

use crate::pipeline::Plugin;

/// One output point of the plugin's two time series.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfxPoint {
    /// Bin start time.
    pub time: u64,
    /// Unique prefixes (overlapping the monitored ranges) currently
    /// announced by any VP.
    pub prefixes: usize,
    /// Unique origin ASNs announcing them.
    pub origins: usize,
}

/// The pfxmonitor plugin.
pub struct PfxMonitor {
    ranges: PrefixTrie<()>,
    /// `<prefix, VP>` → origin ASN.
    table: HashMap<(Prefix, IpAddr), Asn>,
    /// The per-bin time series.
    pub series: Vec<PfxPoint>,
}

impl PfxMonitor {
    /// Monitor everything overlapping `ranges`.
    pub fn new<I: IntoIterator<Item = Prefix>>(ranges: I) -> Self {
        let mut trie = PrefixTrie::new();
        for p in ranges {
            trie.insert(p, ());
        }
        PfxMonitor {
            ranges: trie,
            table: HashMap::new(),
            series: Vec::new(),
        }
    }

    /// Current distinct origins (useful in live monitoring loops).
    pub fn current_origins(&self) -> BTreeSet<Asn> {
        self.table.values().copied().collect()
    }
}

impl Plugin for PfxMonitor {
    fn name(&self) -> &'static str {
        "pfxmonitor"
    }

    fn process_record(&mut self, record: &BgpStreamRecord) {
        for elem in record.elems() {
            let Some(prefix) = elem.prefix else { continue };
            if !self.ranges.matches(&prefix, PrefixMatch::Any) {
                continue;
            }
            match elem.elem_type {
                ElemType::Announcement | ElemType::RibEntry => {
                    if let Some(origin) = elem.origin_asn() {
                        self.table.insert((prefix, elem.peer_address), origin);
                    }
                }
                ElemType::Withdrawal => {
                    self.table.remove(&(prefix, elem.peer_address));
                }
                ElemType::PeerState => {}
            }
        }
    }

    fn end_bin(&mut self, bin_start: u64, _bin_end: u64) {
        let prefixes: BTreeSet<Prefix> = self.table.keys().map(|(p, _)| *p).collect();
        let origins: BTreeSet<Asn> = self.table.values().copied().collect();
        self.series.push(PfxPoint {
            time: bin_start,
            prefixes: prefixes.len(),
            origins: origins.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use bgpstream::record::{DumpPosition, RecordStatus};
    use bgpstream::BgpStreamElem;
    use broker::DumpType;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rec(ts: u64, elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc00",
            DumpType::Updates,
            0,
            ts,
            DumpPosition::Middle,
            RecordStatus::Valid,
            elems,
        )
    }

    fn ann(prefix: &str, vp: &str, origin: u32) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 0,
            peer_address: vp.parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some(p(prefix)),
            next_hop: None,
            as_path: Some(AsPath::from_sequence([65001, origin])),
            communities: None,
            old_state: None,
            new_state: None,
        }
    }

    fn wd(prefix: &str, vp: &str) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            as_path: None,
            ..ann(prefix, vp, 0)
        }
    }

    #[test]
    fn tracks_origins_per_prefix_vp() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.204.10.0/24", "10.0.0.1", 137)]));
        m.process_record(&rec(2, vec![ann("193.204.10.0/24", "10.0.0.2", 137)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 1);
        assert_eq!(m.series.last().unwrap().origins, 1);

        // Hijack: second origin appears at one VP.
        m.process_record(&rec(301, vec![ann("193.204.10.0/24", "10.0.0.2", 666)]));
        m.end_bin(300, 600);
        assert_eq!(m.series.last().unwrap().origins, 2);

        // Hijack withdrawn at that VP: back to one origin.
        m.process_record(&rec(601, vec![ann("193.204.10.0/24", "10.0.0.2", 137)]));
        m.end_bin(600, 900);
        assert_eq!(m.series.last().unwrap().origins, 1);
    }

    #[test]
    fn ignores_non_overlapping_prefixes() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("10.0.0.0/8", "10.0.0.1", 1)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 0);
    }

    #[test]
    fn overlap_includes_less_specific_announcements() {
        // A /8 covering the monitored /15 still matches (Any overlap).
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.0.0.0/8", "10.0.0.1", 137)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 1);
    }

    #[test]
    fn withdrawals_shrink_the_table() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.204.10.0/24", "10.0.0.1", 137)]));
        m.process_record(&rec(2, vec![wd("193.204.10.0/24", "10.0.0.1")]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 0);
        assert_eq!(m.series.last().unwrap().origins, 0);
    }

    #[test]
    fn aggregation_and_deaggregation_counts_prefixes() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(
            1,
            vec![
                ann("193.204.0.0/16", "10.0.0.1", 137),
                ann("193.205.0.0/16", "10.0.0.1", 137),
            ],
        ));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 2);
        assert_eq!(m.series.last().unwrap().origins, 1);
    }
}
