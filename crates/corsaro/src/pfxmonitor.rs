//! The pfxmonitor plugin (§6.1, Figure 6).
//!
//! Monitors prefixes overlapping a given set of IP address ranges.
//! For each record it (1) selects only RIB and Updates records related
//! to overlapping prefixes, and (2) tracks, for each `<prefix, VP>`
//! pair, the ASN that originated the route. At the end of each time
//! bin it outputs the number of unique prefixes identified and the
//! number of unique origin ASNs observed by all the VPs — the two
//! time series whose divergence exposes the GARR hijacks in Figure 6.

use std::collections::BTreeSet;
use std::net::IpAddr;
use std::sync::Arc;

use bgp_types::trie::PrefixMatch;
use bgp_types::{Asn, Prefix, PrefixTrie};
use bgpstream::{BgpStreamRecord, ElemType};
use bytes::{Buf, BufMut};
use fxhash::FxHashMap;

use crate::pipeline::{Partitioning, Plugin};
use crate::runtime::{shard_of_prefix, ShardedPlugin};

/// One output point of the plugin's two time series.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfxPoint {
    /// Bin start time.
    pub time: u64,
    /// Unique prefixes (overlapping the monitored ranges) currently
    /// announced by any VP.
    pub prefixes: usize,
    /// Unique origin ASNs announcing them.
    pub origins: usize,
}

/// The pfxmonitor plugin.
///
/// Distinct-prefix and distinct-origin counts are maintained
/// *incrementally* (reference-counted alongside the `<prefix, VP>`
/// table), so closing a bin is O(1) and — under the sharded runtime —
/// the per-bin partial is O(changes in the bin), not O(table). On a
/// full-feed table of hundreds of thousands of cells, an O(table)
/// interval barrier would serialise exactly the work sharding exists
/// to spread out.
pub struct PfxMonitor {
    /// The monitored ranges. Behind an `Arc` so the sharded runtime's
    /// N forks share one trie instead of rebuilding (and storing) a
    /// copy per worker; the same compiled structure also serves as
    /// every shard's per-elem range gate.
    ranges: Arc<PrefixTrie<()>>,
    /// `<prefix, VP>` → origin ASN. Fx-hashed: probed once per
    /// overlapping elem, the hottest map in the plugin.
    table: FxHashMap<(Prefix, IpAddr), Asn>,
    /// Prefix → number of table entries carrying it.
    prefix_refs: FxHashMap<Prefix, u32>,
    /// Origin → number of table entries carrying it.
    origin_refs: FxHashMap<Asn, u32>,
    /// `Some((shard, shards))` on a shard instance of the sharded
    /// runtime: only elems whose prefix hashes to `shard` are applied.
    shard: Option<(usize, usize)>,
    /// Shard instances record the bin's origin-presence transitions
    /// here (the partial shipped at each barrier); `None` on
    /// sequential/root instances.
    delta: Option<Vec<u8>>,
    delta_ops: u32,
    /// Root-side (merge) state: the latest distinct-prefix count
    /// reported by each shard. Prefixes are shard-disjoint, so the
    /// union count is the sum.
    shard_prefix_counts: Vec<u32>,
    /// The per-bin time series.
    pub series: Vec<PfxPoint>,
}

impl PfxMonitor {
    /// Monitor everything overlapping `ranges`.
    pub fn new<I: IntoIterator<Item = Prefix>>(ranges: I) -> Self {
        let mut trie = PrefixTrie::new();
        for p in ranges {
            trie.insert(p, ());
        }
        Self::with_shared_ranges(Arc::new(trie))
    }

    /// Monitor everything overlapping an already-built (possibly
    /// shared) range trie — what [`ShardedPlugin::fork`] uses so all
    /// shard instances reference one trie.
    pub fn with_shared_ranges(ranges: Arc<PrefixTrie<()>>) -> Self {
        PfxMonitor {
            ranges,
            table: FxHashMap::default(),
            prefix_refs: FxHashMap::default(),
            origin_refs: FxHashMap::default(),
            shard: None,
            delta: None,
            delta_ops: 0,
            shard_prefix_counts: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Current distinct origins (useful in live monitoring loops).
    pub fn current_origins(&self) -> BTreeSet<Asn> {
        self.origin_refs.keys().copied().collect()
    }

    /// Apply "route for `(prefix, vp)` is now announced by `origin`"
    /// to the table and the refcounted distinct sets.
    fn apply_set(&mut self, prefix: Prefix, vp: IpAddr, origin: Asn) {
        match self.table.insert((prefix, vp), origin) {
            Some(old) if old == origin => return, // no change
            Some(old) => {
                if decref(&mut self.origin_refs, old) {
                    self.record_op(1, old);
                }
            }
            None => {
                *self.prefix_refs.entry(prefix).or_insert(0) += 1;
            }
        }
        if incref(&mut self.origin_refs, origin) {
            self.record_op(0, origin);
        }
    }

    /// Apply "route for `(prefix, vp)` is withdrawn".
    fn apply_remove(&mut self, prefix: Prefix, vp: IpAddr) {
        let Some(old) = self.table.remove(&(prefix, vp)) else {
            return; // no change
        };
        decref(&mut self.prefix_refs, prefix);
        if decref(&mut self.origin_refs, old) {
            self.record_op(1, old);
        }
    }

    /// Match one elem against the ranges and apply it to the table.
    fn apply_elem(&mut self, prefix: Prefix, elem: &bgpstream::BgpStreamElem) {
        if !self.ranges.matches(&prefix, PrefixMatch::Any) {
            return;
        }
        match elem.elem_type {
            ElemType::Announcement | ElemType::RibEntry => {
                if let Some(origin) = elem.origin_asn() {
                    self.apply_set(prefix, elem.peer_address, origin);
                }
            }
            ElemType::Withdrawal => {
                self.apply_remove(prefix, elem.peer_address);
            }
            ElemType::PeerState => {}
        }
    }

    /// Append one origin-presence transition (`tag` 0 = appeared,
    /// 1 = vanished) to the shard delta; no-op outside the sharded
    /// runtime.
    fn record_op(&mut self, tag: u8, origin: Asn) {
        let Some(delta) = &mut self.delta else { return };
        delta.put_u8(tag);
        delta.put_u32(origin.0);
        self.delta_ops += 1;
    }
}

/// Increment; true when the key just appeared.
fn incref<K: std::hash::Hash + Eq>(refs: &mut FxHashMap<K, u32>, key: K) -> bool {
    let n = refs.entry(key).or_insert(0);
    *n += 1;
    *n == 1
}

/// Decrement; true when the key just vanished.
fn decref<K: std::hash::Hash + Eq>(refs: &mut FxHashMap<K, u32>, key: K) -> bool {
    match refs.get_mut(&key) {
        Some(1) => {
            refs.remove(&key);
            true
        }
        Some(n) => {
            *n -= 1;
            false
        }
        None => {
            debug_assert!(false, "decref of untracked key");
            false
        }
    }
}

impl Plugin for PfxMonitor {
    fn name(&self) -> &'static str {
        "pfxmonitor"
    }

    fn process_record(&mut self, record: &BgpStreamRecord) {
        for elem in record.elems() {
            let Some(prefix) = elem.prefix else { continue };
            // Shard gate (only on shard instances driven outside the
            // runtime's mask path; the runtime precomputes ownership
            // per record instead of hashing here per plugin).
            if let Some((shard, shards)) = self.shard {
                if shard_of_prefix(&prefix, shards) != shard {
                    continue;
                }
            }
            self.apply_elem(prefix, elem);
        }
    }

    fn end_bin(&mut self, bin_start: u64, _bin_end: u64) {
        // Shard instances (delta collection on) keep no series of
        // their own — only the merged root series is ever read, and a
        // 24/7 run must not grow per-shard memory one point per bin.
        if self.delta.is_none() {
            self.series.push(PfxPoint {
                time: bin_start,
                prefixes: self.prefix_refs.len(),
                origins: self.origin_refs.len(),
            });
        }
    }

    fn partitioning(&self) -> Partitioning {
        // Table state is keyed by `(prefix, VP)` and the bin output is
        // a union of per-prefix facts, so prefix sharding partitions
        // the state exactly.
        Partitioning::ByPrefix
    }

    /// Everything except the shared range trie (configuration, not
    /// state), each section in canonical order so two instances that
    /// processed the same records checkpoint byte-identically.
    fn checkpoint(&self) -> Vec<u8> {
        use bytes::BytesMut;

        use crate::codec::{ip_sort_key, prefix_sort_key, put_ip, put_prefix};

        let mut out = BytesMut::new();
        out.put_u8(1); // version

        let mut table: Vec<(&(Prefix, IpAddr), &Asn)> = self.table.iter().collect();
        table.sort_by_key(|((p, ip), _)| (prefix_sort_key(p), ip_sort_key(ip)));
        out.put_u32(table.len() as u32);
        for ((prefix, vp), origin) in table {
            put_prefix(&mut out, prefix);
            put_ip(&mut out, vp);
            out.put_u32(origin.0);
        }

        let mut prefixes: Vec<(&Prefix, &u32)> = self.prefix_refs.iter().collect();
        prefixes.sort_by_key(|(p, _)| prefix_sort_key(p));
        out.put_u32(prefixes.len() as u32);
        for (prefix, n) in prefixes {
            put_prefix(&mut out, prefix);
            out.put_u32(*n);
        }

        let mut origins: Vec<(&Asn, &u32)> = self.origin_refs.iter().collect();
        origins.sort_by_key(|(a, _)| a.0);
        out.put_u32(origins.len() as u32);
        for (origin, n) in origins {
            out.put_u32(origin.0);
            out.put_u32(*n);
        }

        match &self.delta {
            None => out.put_u8(0),
            Some(delta) => {
                out.put_u8(1);
                out.put_u32(delta.len() as u32);
                out.put_slice(delta);
                out.put_u32(self.delta_ops);
            }
        }

        out.put_u32(self.shard_prefix_counts.len() as u32);
        for n in &self.shard_prefix_counts {
            out.put_u32(*n);
        }

        out.put_u32(self.series.len() as u32);
        for pt in &self.series {
            out.put_u64(pt.time);
            out.put_u64(pt.prefixes as u64);
            out.put_u64(pt.origins as u64);
        }
        out.to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        use crate::codec::{get_ip, get_prefix};

        fn need(buf: &[u8], n: usize, what: &str) -> Result<(), String> {
            if buf.len() < n {
                Err(format!("pfxmonitor checkpoint: truncated {what}"))
            } else {
                Ok(())
            }
        }

        let mut buf = bytes;
        need(buf, 1, "version")?;
        let version = buf.get_u8();
        if version != 1 {
            return Err(format!("pfxmonitor checkpoint: unknown version {version}"));
        }

        need(buf, 4, "table count")?;
        let n = buf.get_u32() as usize;
        let mut table = FxHashMap::default();
        for _ in 0..n {
            let prefix = get_prefix(&mut buf)?;
            let vp = get_ip(&mut buf)?;
            need(buf, 4, "table origin")?;
            table.insert((prefix, vp), Asn(buf.get_u32()));
        }

        need(buf, 4, "prefix ref count")?;
        let n = buf.get_u32() as usize;
        let mut prefix_refs = FxHashMap::default();
        for _ in 0..n {
            let prefix = get_prefix(&mut buf)?;
            need(buf, 4, "prefix refcount")?;
            prefix_refs.insert(prefix, buf.get_u32());
        }

        need(buf, 4, "origin ref count")?;
        let n = buf.get_u32() as usize;
        let mut origin_refs = FxHashMap::default();
        for _ in 0..n {
            need(buf, 8, "origin refcount")?;
            origin_refs.insert(Asn(buf.get_u32()), buf.get_u32());
        }

        need(buf, 1, "delta flag")?;
        let (delta, delta_ops) = if buf.get_u8() == 1 {
            need(buf, 4, "delta length")?;
            let len = buf.get_u32() as usize;
            need(buf, len + 4, "delta body")?;
            let body = buf[..len].to_vec();
            buf.advance(len);
            (Some(body), buf.get_u32())
        } else {
            (None, 0)
        };

        need(buf, 4, "shard count list")?;
        let n = buf.get_u32() as usize;
        need(buf, n * 4, "shard counts")?;
        let shard_prefix_counts = (0..n).map(|_| buf.get_u32()).collect();

        need(buf, 4, "series count")?;
        let n = buf.get_u32() as usize;
        need(buf, n * 24, "series points")?;
        let series = (0..n)
            .map(|_| PfxPoint {
                time: buf.get_u64(),
                prefixes: buf.get_u64() as usize,
                origins: buf.get_u64() as usize,
            })
            .collect();

        if !buf.is_empty() {
            return Err("pfxmonitor checkpoint: trailing bytes".into());
        }
        self.table = table;
        self.prefix_refs = prefix_refs;
        self.origin_refs = origin_refs;
        self.delta = delta;
        self.delta_ops = delta_ops;
        self.shard_prefix_counts = shard_prefix_counts;
        self.series = series;
        Ok(())
    }
}

impl ShardedPlugin for PfxMonitor {
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin> {
        // Forks share the root's range trie by refcount: forking N
        // shards costs N `Arc` clones, not N trie rebuilds.
        let mut fresh = PfxMonitor::with_shared_ranges(self.ranges.clone());
        fresh.shard = Some((shard, shards));
        fresh.delta = Some(Vec::new());
        Box::new(fresh)
    }

    fn process_sharded(&mut self, record: &BgpStreamRecord, mask: &[bool]) {
        for (i, elem) in record.elems().iter().enumerate() {
            if !mask[i] {
                continue;
            }
            let Some(prefix) = elem.prefix else { continue };
            self.apply_elem(prefix, elem);
        }
    }

    /// Partial = the shard's distinct-prefix count plus the bin's
    /// origin-*presence* transitions, O(origin churn). Prefix counts
    /// sum across shards (prefixes are shard-disjoint); origins are
    /// not disjoint, so the root refcounts per-shard presence instead
    /// — both O(1)-per-change, so the serialized interval barrier
    /// never does O(table) work.
    fn take_partial(&mut self) -> Vec<u8> {
        let ops = std::mem::take(&mut self.delta_ops);
        // xcheck:allow(unwrap) — delta is always Some on shard instances
        let body = self.delta.as_mut().expect("take_partial on a shard");
        let mut out = Vec::with_capacity(8 + body.len());
        out.put_u32(self.prefix_refs.len() as u32);
        out.put_u32(ops);
        out.append(body);
        out
    }

    fn merge_bin(&mut self, bin_start: u64, _bin_end: u64, partials: Vec<Vec<u8>>) {
        self.shard_prefix_counts.resize(partials.len(), 0);
        for (shard, partial) in partials.iter().enumerate() {
            let mut buf = &partial[..];
            self.shard_prefix_counts[shard] = buf.get_u32();
            let ops = buf.get_u32();
            for _ in 0..ops {
                let tag = buf.get_u8();
                let origin = Asn(buf.get_u32());
                // `origin_refs` on the root counts shards where the
                // origin is present; transitions from different shards
                // commute, so replay order across partials is
                // irrelevant.
                if tag == 0 {
                    incref(&mut self.origin_refs, origin);
                } else {
                    decref(&mut self.origin_refs, origin);
                }
            }
        }
        self.series.push(PfxPoint {
            time: bin_start,
            prefixes: self.shard_prefix_counts.iter().sum::<u32>() as usize,
            origins: self.origin_refs.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use bgpstream::record::{DumpPosition, RecordStatus};
    use bgpstream::BgpStreamElem;
    use broker::DumpType;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rec(ts: u64, elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            "rrc00",
            DumpType::Updates,
            0,
            ts,
            DumpPosition::Middle,
            RecordStatus::Valid,
            elems,
        )
    }

    fn ann(prefix: &str, vp: &str, origin: u32) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: 0,
            peer_address: vp.parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some(p(prefix)),
            next_hop: None,
            as_path: Some(AsPath::from_sequence([65001, origin])),
            communities: None,
            old_state: None,
            new_state: None,
        }
    }

    fn wd(prefix: &str, vp: &str) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ElemType::Withdrawal,
            as_path: None,
            ..ann(prefix, vp, 0)
        }
    }

    #[test]
    fn tracks_origins_per_prefix_vp() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.204.10.0/24", "10.0.0.1", 137)]));
        m.process_record(&rec(2, vec![ann("193.204.10.0/24", "10.0.0.2", 137)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 1);
        assert_eq!(m.series.last().unwrap().origins, 1);

        // Hijack: second origin appears at one VP.
        m.process_record(&rec(301, vec![ann("193.204.10.0/24", "10.0.0.2", 666)]));
        m.end_bin(300, 600);
        assert_eq!(m.series.last().unwrap().origins, 2);

        // Hijack withdrawn at that VP: back to one origin.
        m.process_record(&rec(601, vec![ann("193.204.10.0/24", "10.0.0.2", 137)]));
        m.end_bin(600, 900);
        assert_eq!(m.series.last().unwrap().origins, 1);
    }

    #[test]
    fn ignores_non_overlapping_prefixes() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("10.0.0.0/8", "10.0.0.1", 1)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 0);
    }

    #[test]
    fn overlap_includes_less_specific_announcements() {
        // A /8 covering the monitored /15 still matches (Any overlap).
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.0.0.0/8", "10.0.0.1", 137)]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 1);
    }

    #[test]
    fn withdrawals_shrink_the_table() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.204.10.0/24", "10.0.0.1", 137)]));
        m.process_record(&rec(2, vec![wd("193.204.10.0/24", "10.0.0.1")]));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 0);
        assert_eq!(m.series.last().unwrap().origins, 0);
    }

    #[test]
    fn checkpoint_restores_table_refs_and_series_byte_identically() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(1, vec![ann("193.204.10.0/24", "10.0.0.1", 137)]));
        m.process_record(&rec(2, vec![ann("193.204.11.0/24", "10.0.0.2", 666)]));
        m.end_bin(0, 300);
        m.process_record(&rec(301, vec![wd("193.204.10.0/24", "10.0.0.1")]));

        let ckpt = m.checkpoint();
        let mut fresh = PfxMonitor::new([p("193.204.0.0/15")]);
        fresh.restore(&ckpt).expect("restore");
        // Re-checkpoint is byte-identical (canonical section orders).
        assert_eq!(fresh.checkpoint(), ckpt);
        // Both continue identically through the next bin.
        for plug in [&mut m, &mut fresh] {
            plug.process_record(&rec(310, vec![ann("193.204.12.0/24", "10.0.0.1", 137)]));
            plug.end_bin(300, 600);
        }
        assert_eq!(format!("{:?}", fresh.series), format!("{:?}", m.series));

        // A torn restore is rejected, not half-applied.
        assert!(fresh.restore(&ckpt[..ckpt.len() - 3]).is_err());
        assert!(PfxMonitor::new([]).restore(&[9, 9]).is_err());
    }

    #[test]
    fn aggregation_and_deaggregation_counts_prefixes() {
        let mut m = PfxMonitor::new([p("193.204.0.0/15")]);
        m.process_record(&rec(
            1,
            vec![
                ann("193.204.0.0/16", "10.0.0.1", 137),
                ann("193.205.0.0/16", "10.0.0.1", 137),
            ],
        ));
        m.end_bin(0, 300);
        assert_eq!(m.series.last().unwrap().prefixes, 2);
        assert_eq!(m.series.last().unwrap().origins, 1);
    }
}
