//! A stateless classification plugin (§6.1's "stateless" plugin
//! category): counts records and elems per bin, per collector and per
//! class. Downstream plugins (or operators) use these series to watch
//! feed health — e.g. a collector going quiet, or a burst of
//! withdrawals.

use std::collections::BTreeMap;

use bgpstream::{BgpStreamRecord, ElemType};
use bytes::{Buf, BufMut, BytesMut};

use crate::pipeline::Plugin;
use crate::runtime::ShardedPlugin;

/// Per-bin, per-collector counters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BinCounters {
    /// Records seen (all statuses).
    pub records: u64,
    /// Records with a non-valid status.
    pub invalid_records: u64,
    /// Announcement elems.
    pub announcements: u64,
    /// Withdrawal elems.
    pub withdrawals: u64,
    /// RIB-entry elems.
    pub rib_entries: u64,
    /// State-message elems.
    pub state_messages: u64,
}

/// One output point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatsPoint {
    /// Bin start time.
    pub time: u64,
    /// Counters per collector.
    pub per_collector: BTreeMap<String, BinCounters>,
}

/// The elem/record statistics plugin.
#[derive(Default)]
pub struct ElemCounter {
    current: BTreeMap<String, BinCounters>,
    /// The completed bins.
    pub series: Vec<StatsPoint>,
}

impl ElemCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total elems across the whole run.
    pub fn total_elems(&self) -> u64 {
        self.series
            .iter()
            .flat_map(|p| p.per_collector.values())
            .map(|c| c.announcements + c.withdrawals + c.rib_entries + c.state_messages)
            .sum()
    }
}

impl Plugin for ElemCounter {
    fn name(&self) -> &'static str {
        "elem-counter"
    }

    fn process_record(&mut self, record: &BgpStreamRecord) {
        // Probe with the interned `&str` first: allocating the `String`
        // key only on a collector's first record keeps the per-record
        // path allocation-free.
        let collector = record.collector();
        if !self.current.contains_key(collector) {
            self.current
                .insert(collector.to_string(), BinCounters::default());
        }
        // xcheck:allow(unwrap) — inserted just above when absent
        let c = self.current.get_mut(collector).expect("just inserted");
        c.records += 1;
        if !record.status.is_valid() {
            c.invalid_records += 1;
        }
        for elem in record.elems() {
            match elem.elem_type {
                ElemType::Announcement => c.announcements += 1,
                ElemType::Withdrawal => c.withdrawals += 1,
                ElemType::RibEntry => c.rib_entries += 1,
                ElemType::PeerState => c.state_messages += 1,
            }
        }
    }

    fn end_bin(&mut self, bin_start: u64, _bin_end: u64) {
        self.series.push(StatsPoint {
            time: bin_start,
            per_collector: std::mem::take(&mut self.current),
        });
    }

    // Record-level counters (`records`, `invalid_records`) cannot be
    // reconstructed from hash-partitioned elems — a record whose elems
    // span shards would be counted once per shard — so this plugin
    // keeps the default `Partitioning::Pinned`: one instance, pinned
    // to a single worker, still off the reader thread.

    /// The in-flight bin plus the completed series, reusing the
    /// partial's per-collector layout (BTreeMap keeps collector order
    /// canonical, so equal state ⇒ equal bytes).
    fn checkpoint(&self) -> Vec<u8> {
        fn put_counters(out: &mut BytesMut, per_collector: &BTreeMap<String, BinCounters>) {
            out.put_u32(per_collector.len() as u32);
            for (name, c) in per_collector {
                out.put_u16(name.len() as u16);
                out.put_slice(name.as_bytes());
                for v in [
                    c.records,
                    c.invalid_records,
                    c.announcements,
                    c.withdrawals,
                    c.rib_entries,
                    c.state_messages,
                ] {
                    out.put_u64(v);
                }
            }
        }
        let mut out = BytesMut::new();
        out.put_u8(1); // version
        put_counters(&mut out, &self.current);
        out.put_u32(self.series.len() as u32);
        for point in &self.series {
            out.put_u64(point.time);
            put_counters(&mut out, &point.per_collector);
        }
        out.to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        fn need(buf: &[u8], n: usize, what: &str) -> Result<(), String> {
            if buf.len() < n {
                Err(format!("stats checkpoint: truncated {what}"))
            } else {
                Ok(())
            }
        }
        fn get_counters(buf: &mut &[u8]) -> Result<BTreeMap<String, BinCounters>, String> {
            need(buf, 4, "collector count")?;
            let n = buf.get_u32() as usize;
            let mut per_collector = BTreeMap::new();
            for _ in 0..n {
                need(buf, 2, "collector name length")?;
                let len = buf.get_u16() as usize;
                need(buf, len + 48, "collector entry")?;
                let name = String::from_utf8_lossy(&buf[..len]).into_owned();
                buf.advance(len);
                let c = BinCounters {
                    records: buf.get_u64(),
                    invalid_records: buf.get_u64(),
                    announcements: buf.get_u64(),
                    withdrawals: buf.get_u64(),
                    rib_entries: buf.get_u64(),
                    state_messages: buf.get_u64(),
                };
                per_collector.insert(name, c);
            }
            Ok(per_collector)
        }

        let mut buf = bytes;
        need(buf, 1, "header")?;
        let version = buf.get_u8();
        if version != 1 {
            return Err(format!("stats checkpoint: unknown version {version}"));
        }
        let current = get_counters(&mut buf)?;
        need(buf, 4, "series count")?;
        let n = buf.get_u32() as usize;
        let mut series = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            need(buf, 8, "series point time")?;
            let time = buf.get_u64();
            series.push(StatsPoint {
                time,
                per_collector: get_counters(&mut buf)?,
            });
        }
        if !buf.is_empty() {
            return Err("stats checkpoint: trailing bytes".into());
        }
        self.current = current;
        self.series = series;
        Ok(())
    }
}

impl ShardedPlugin for ElemCounter {
    fn fork(&self, _shard: usize, _shards: usize) -> Box<dyn ShardedPlugin> {
        Box::new(ElemCounter::new())
    }

    /// Partial = the bin's `StatsPoint`, encoded losslessly (sorted by
    /// collector name thanks to the `BTreeMap`). The point is *popped*
    /// — the shard instance keeps no series of its own, so a 24/7 run
    /// does not grow per-shard memory one point per bin.
    fn take_partial(&mut self) -> Vec<u8> {
        // xcheck:allow(unwrap) — protocol: end_bin always precedes take_partial
        let point = self.series.pop().expect("take_partial follows end_bin");
        let mut out = BytesMut::new();
        out.put_u64(point.time);
        out.put_u32(point.per_collector.len() as u32);
        for (name, c) in &point.per_collector {
            out.put_u16(name.len() as u16);
            out.put_slice(name.as_bytes());
            for v in [
                c.records,
                c.invalid_records,
                c.announcements,
                c.withdrawals,
                c.rib_entries,
                c.state_messages,
            ] {
                out.put_u64(v);
            }
        }
        out.to_vec()
    }

    fn merge_bin(&mut self, bin_start: u64, _bin_end: u64, partials: Vec<Vec<u8>>) {
        // Pinned: exactly one partial, decoded back into the series.
        let mut per_collector = BTreeMap::new();
        for partial in &partials {
            let mut buf = &partial[..];
            let _time = buf.get_u64();
            let n = buf.get_u32();
            for _ in 0..n {
                let len = buf.get_u16() as usize;
                let name = String::from_utf8_lossy(&buf[..len]).into_owned();
                buf.advance(len);
                let c = BinCounters {
                    records: buf.get_u64(),
                    invalid_records: buf.get_u64(),
                    announcements: buf.get_u64(),
                    withdrawals: buf.get_u64(),
                    rib_entries: buf.get_u64(),
                    state_messages: buf.get_u64(),
                };
                per_collector.insert(name, c);
            }
        }
        self.series.push(StatsPoint {
            time: bin_start,
            per_collector,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn, Prefix};
    use bgpstream::record::{DumpPosition, RecordStatus};
    use bgpstream::BgpStreamElem;
    use broker::DumpType;

    fn elem(ty: ElemType) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ty,
            time: 0,
            peer_address: "10.0.0.1".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some("10.0.0.0/8".parse::<Prefix>().unwrap()),
            next_hop: None,
            as_path: Some(AsPath::from_sequence([65001, 1])),
            communities: None,
            old_state: None,
            new_state: None,
        }
    }

    fn rec(collector: &str, status: RecordStatus, elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
        BgpStreamRecord::new(
            "ris",
            collector,
            DumpType::Updates,
            0,
            1,
            DumpPosition::Middle,
            status,
            elems,
        )
    }

    #[test]
    fn counts_by_collector_and_class() {
        let mut p = ElemCounter::new();
        p.process_record(&rec(
            "rrc00",
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement), elem(ElemType::Withdrawal)],
        ));
        p.process_record(&rec(
            "rv2",
            RecordStatus::Valid,
            vec![elem(ElemType::RibEntry)],
        ));
        p.process_record(&rec("rrc00", RecordStatus::CorruptedRecord, vec![]));
        p.end_bin(0, 60);
        let point = &p.series[0];
        let rrc = &point.per_collector["rrc00"];
        assert_eq!(rrc.records, 2);
        assert_eq!(rrc.invalid_records, 1);
        assert_eq!(rrc.announcements, 1);
        assert_eq!(rrc.withdrawals, 1);
        assert_eq!(point.per_collector["rv2"].rib_entries, 1);
        assert_eq!(p.total_elems(), 3);
    }

    #[test]
    fn bins_reset_counters() {
        let mut p = ElemCounter::new();
        p.process_record(&rec(
            "rrc00",
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement)],
        ));
        p.end_bin(0, 60);
        p.end_bin(60, 120);
        assert_eq!(p.series.len(), 2);
        assert!(p.series[1].per_collector.is_empty());
    }

    #[test]
    fn checkpoint_restores_current_bin_and_series_byte_identically() {
        let mut p = ElemCounter::new();
        p.process_record(&rec(
            "rrc00",
            RecordStatus::Valid,
            vec![elem(ElemType::Announcement), elem(ElemType::Withdrawal)],
        ));
        p.end_bin(0, 60);
        // Leave an in-flight bin so `current` is non-empty too.
        p.process_record(&rec(
            "rv2",
            RecordStatus::CorruptedRecord,
            vec![elem(ElemType::RibEntry)],
        ));

        let ckpt = p.checkpoint();
        let mut restored = ElemCounter::new();
        restored.restore(&ckpt).expect("restore");
        assert_eq!(restored.checkpoint(), ckpt);

        for plugin in [&mut p, &mut restored] {
            plugin.process_record(&rec(
                "rrc00",
                RecordStatus::Valid,
                vec![elem(ElemType::PeerState)],
            ));
            plugin.end_bin(60, 120);
        }
        assert_eq!(p.series, restored.series);
        assert_eq!(p.checkpoint(), restored.checkpoint());

        let mut fresh = ElemCounter::new();
        assert!(fresh.restore(&ckpt[..ckpt.len() - 1]).is_err());
        assert!(fresh.restore(&[]).is_err());
    }
}
