//! The RIB-feeding plugin: runs a [`RibFold`] inside the plugin
//! runtimes so live runs reconstruct queryable RIB state.
//!
//! This is the glue that makes historical runs, live runs and
//! interactive queries share one type vocabulary: the fold logic
//! lives in `crates/rib` ([`RibFold`]), the sequential pipeline and
//! the sharded/supervised live runtime both drive it through this
//! [`Plugin`], and consumers resolve [`rib::RibQuery`] against the
//! same [`RibStore`] handle the feeder publishes to. In live mode,
//! `run_live` closing bins off the broker watermark is exactly what
//! advances the RIB watermark — a query admitted at `T` is guaranteed
//! to see every elem below `T` the collectors have published.
//!
//! The plugin is [`Partitioning::Pinned`]: one instance owns the full
//! stream on one worker, which keeps the journal it publishes in
//! stream order (the store's contract). Checkpoint/restore delegate
//! to the fold's sealed frames, so a supervisor-restored feeder
//! re-publishes byte-identically and the store's idempotent watermark
//! guard drops the replayed duplicates.

use std::sync::Arc;

use bgpstream::BgpStreamRecord;
use rib::{RibFold, RibStore};

use crate::pipeline::{Partitioning, Plugin};
use crate::runtime::ShardedPlugin;

/// Feeds a shared [`RibStore`] from the record stream. See the
/// module docs.
pub struct RibFeeder {
    fold: RibFold,
}

impl RibFeeder {
    /// A feeder sealing snapshots every `snapshot_every` seconds of
    /// stream time into `store`.
    pub fn new(snapshot_every: u64, store: Arc<dyn RibStore>) -> Self {
        RibFeeder {
            fold: RibFold::new(snapshot_every).with_store(store),
        }
    }

    /// Wrap an existing fold (e.g. one restored out-of-band).
    pub fn from_fold(fold: RibFold) -> Self {
        RibFeeder { fold }
    }

    /// The wrapped fold (inspect table state, watermark, stats).
    pub fn fold(&self) -> &RibFold {
        &self.fold
    }
}

impl Plugin for RibFeeder {
    fn name(&self) -> &'static str {
        "ribfeed"
    }

    fn process_record(&mut self, record: &BgpStreamRecord) {
        self.fold.apply_record(record);
    }

    fn end_bin(&mut self, _bin_start: u64, bin_end: u64) {
        self.fold.advance_watermark(bin_end);
    }

    fn partitioning(&self) -> Partitioning {
        Partitioning::Pinned
    }

    fn checkpoint(&self) -> Vec<u8> {
        self.fold.checkpoint()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.fold.restore(bytes)
    }
}

impl ShardedPlugin for RibFeeder {
    fn fork(&self, _shard: usize, _shards: usize) -> Box<dyn ShardedPlugin> {
        // Pinned: forked as (0, 1); the fork shares the store handle
        // and starts from empty fold state.
        let fold = RibFold::new(self.fold.snapshot_every());
        let fold = match self.fold.store() {
            Some(store) => fold.with_store(store.clone()),
            None => fold,
        };
        Box::new(RibFeeder { fold })
    }

    /// The feeder's output is its store publications, which the
    /// pinned worker instance already made in `end_bin`; there is no
    /// per-bin partial to ship to the coordinator.
    fn take_partial(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Nothing to merge: the root instance never folds (in sharded
    /// mode the fold state lives on the worker, the queryable output
    /// in the shared store).
    fn merge_bin(&mut self, _bin_start: u64, _bin_end: u64, _partials: Vec<Vec<u8>>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rib::{MemoryRibStore, RibQuery};

    use bgp_types::Asn;
    use bgpstream::{BgpStreamElem, DumpPosition, ElemType, RecordStatus};
    use broker::DumpType;

    fn record(ts: u64, prefix: &str) -> BgpStreamRecord {
        let elem = BgpStreamElem {
            elem_type: ElemType::Announcement,
            time: ts,
            peer_address: "10.0.0.9".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: Some(prefix.parse().unwrap()),
            next_hop: None,
            as_path: Some(bgp_types::AsPath::from_sequence([65001, 42])),
            communities: None,
            old_state: None,
            new_state: None,
        };
        BgpStreamRecord::new(
            "ris",
            "rrc00",
            DumpType::Updates,
            ts,
            ts,
            DumpPosition::Middle,
            RecordStatus::Valid,
            vec![elem],
        )
    }

    #[test]
    fn feeder_publishes_on_bin_close_and_checkpoints() {
        let store = MemoryRibStore::shared();
        let mut feeder = RibFeeder::new(0, store.clone());
        feeder.process_record(&record(10, "1.0.0.0/8"));
        feeder.process_record(&record(20, "2.0.0.0/8"));
        // Nothing visible until the bin closes.
        assert!(RibQuery::new().table(&*store).is_err());
        feeder.end_bin(0, 60);
        let view = RibQuery::new().table(&*store).unwrap();
        assert_eq!(view.len(), 2);

        // Restore into a fresh fork and verify replayed bins dedupe.
        let frame = feeder.checkpoint();
        let mut revived = feeder.fork(0, 1);
        revived.restore(&frame).unwrap();
        revived.process_record(&record(10, "1.0.0.0/8"));
        revived.process_record(&record(20, "2.0.0.0/8"));
        revived.end_bin(0, 60);
        assert_eq!(store.event_count(), 2, "replayed publish must be dropped");
        assert_eq!(revived.checkpoint(), frame);
    }
}
