//! The sharded, multi-core consumer runtime (§6's scale-out
//! deployment: "more BGPCorsaro instances than cores" becomes "more
//! shards than one core can absorb").
//!
//! [`run_pipeline`](crate::run_pipeline) drives every plugin on the
//! calling thread; once the sorted stream outruns the consumers, the
//! plugin layer is the bottleneck. A [`ShardedRuntime`] keeps the
//! stream read sequential (time order is the product §3.3.4 sells)
//! but fans the *processing* out:
//!
//! 1. the coordinator (the calling thread) pulls record **batches**
//!    from the stream ([`BgpStream::next_batch`]) — under selective
//!    filters the stream's compiled pushdown has already rejected
//!    non-matching records before decode, so most envelopes arrive
//!    elem-less and broadcast for pennies — and broadcasts each
//!    batch — behind an `Arc`, so a broadcast is a refcount bump per
//!    worker — into N per-worker bounded queues
//!    ([`analytics::mapreduce::ShardPool`]); bounded queues mean a
//!    slow worker backpressures the reader instead of buffering
//!    without limit;
//! 2. every worker owns one **shard instance** of each partitioned
//!    plugin (forked via [`ShardedPlugin::fork`]). A shard instance
//!    sees every record envelope (so record-level events — corrupted
//!    dumps, RIB dump start/end — replay identically on every shard)
//!    but processes only the elems its shard owns, per the plugin's
//!    [`Partitioning`]: hash of the prefix, hash of the peer address,
//!    or pinned to a single worker;
//! 3. at each bin boundary the coordinator broadcasts a barrier;
//!    every shard instance closes its bin and ships a serialized
//!    **partial** back; the coordinator merges the partials *in shard
//!    order* on the root plugin ([`ShardedPlugin::merge_bin`]), so
//!    per-bin outputs are byte-identical to the sequential pipeline
//!    regardless of worker count or queue interleaving.
//!
//! Determinism argument: each worker's queue is FIFO, batches and
//! barriers are enqueued in stream order, shard ownership is a pure
//! hash, and the merge consumes partials indexed by `(bin, plugin,
//! shard)` — no step observes scheduling order.
//!
//! ```
//! use bgpstream::BgpStream;
//! use broker::{Index, LocalBroker};
//! use corsaro::runtime::ShardedRuntime;
//! use corsaro::PfxMonitor;
//!
//! let mut stream = BgpStream::builder()
//!     .broker_client(LocalBroker::shared(Index::shared()))
//!     .interval(0, Some(3600))
//!     .start();
//! let mut monitor = PfxMonitor::new(["193.204.0.0/15".parse().unwrap()]);
//! let runtime = ShardedRuntime::builder()
//!     .workers(4)
//!     .bin_size(300)
//!     .build();
//! let records = runtime.run(&mut stream, &mut [&mut monitor]);
//! assert_eq!(records, 0); // the index above is empty
//! // `monitor.series` now holds exactly what `run_pipeline` would
//! // have produced, merged deterministically from the shards.
//! ```

use bsync::atomic::{AtomicBool, Ordering};
use std::collections::VecDeque;
use std::net::IpAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use analytics::mapreduce::ShardPool;
use bgp_types::Prefix;
use bgpstream::{BatchStep, BgpStream, BgpStreamRecord};
use broker::BrokerError;
use bsync::channel::{Receiver, Sender, TryRecvError, TrySendError};
use bsync::time::Clock;

use crate::codec;
use crate::pipeline::{Partitioning, Plugin};

/// A plugin the sharded runtime can fan out.
///
/// The contract mirrors a map-reduce over time bins: shard instances
/// (created by [`fork`](ShardedPlugin::fork)) process disjoint elem
/// subsets, emit a serialized partial per bin
/// ([`take_partial`](ShardedPlugin::take_partial), called right after
/// `end_bin`), and the root instance folds the partials — always in
/// shard order — into its canonical per-bin output
/// ([`merge_bin`](ShardedPlugin::merge_bin)). For a correct
/// implementation, merging the partials of N shards must reproduce
/// the sequential output byte-for-byte; `fork(0, 1)` (one shard that
/// owns everything) is the degenerate case tests lean on.
pub trait ShardedPlugin: Plugin + Send {
    /// A fresh instance that owns shard `shard` of `shards` (same
    /// configuration, empty state). Pinned plugins are forked as
    /// `fork(0, 1)`.
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin>;

    /// Process a record on a shard instance: `mask[i]` is true iff
    /// this shard owns elem `i` of the record. The runtime computes
    /// the mask *once per record per partitioning mode* and shares it
    /// across all same-mode plugins on the worker, so the per-elem
    /// shard hash is not replicated per plugin. Implementations must
    /// touch owned elems only; record-level state (corruption flags,
    /// dump boundaries) is fair game for every shard.
    ///
    /// The default ignores the mask and processes everything — only
    /// correct for `Pinned` plugins (whose mask is all-true).
    fn process_sharded(&mut self, record: &BgpStreamRecord, mask: &[bool]) {
        let _ = mask;
        self.process_record(record);
    }

    /// Serialized partial output of the bin that just closed; called
    /// on shard instances immediately after their `end_bin`.
    fn take_partial(&mut self) -> Vec<u8>;

    /// Fold shard partials (ordered by shard index) into the
    /// canonical output for `[bin_start, bin_end)`, recording it on
    /// `self` exactly as a sequential `end_bin` would have.
    fn merge_bin(&mut self, bin_start: u64, bin_end: u64, partials: Vec<Vec<u8>>);
}

/// Stable shard hash for a prefix (a splitmix64-style mix over the
/// prefix bits and length — deliberately *not* `DefaultHasher`, so
/// shard placement is a documented function of the data, nothing
/// else; and cheap enough to run once per elem on every worker).
pub fn shard_of_prefix(prefix: &Prefix, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let bits = prefix.raw_bits();
    let key = (bits as u64)
        ^ ((bits >> 64) as u64)
        ^ ((prefix.len() as u64) << 1)
        ^ prefix.is_ipv4() as u64;
    (mix64(key) % shards as u64) as usize
}

/// Stable shard hash for a VP address.
pub fn shard_of_peer(peer: &IpAddr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let key = match peer {
        IpAddr::V4(a) => u32::from_be_bytes(a.octets()) as u64,
        IpAddr::V6(a) => {
            let b = u128::from_be_bytes(a.octets());
            (b as u64) ^ ((b >> 64) as u64) ^ 1
        }
    };
    (mix64(key) % shards as u64) as usize
}

/// splitmix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Configuration for a [`ShardedRuntime`].
pub struct ShardedRuntimeBuilder {
    workers: usize,
    bin_size: u64,
    batch_records: usize,
    queue_batches: usize,
}

impl Default for ShardedRuntimeBuilder {
    fn default() -> Self {
        ShardedRuntimeBuilder {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            bin_size: 60,
            batch_records: 256,
            queue_batches: 4,
        }
    }
}

impl ShardedRuntimeBuilder {
    /// Number of shard workers (default: available parallelism).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Time-bin size in seconds (default 60), aligned like
    /// [`run_pipeline`](crate::run_pipeline).
    pub fn bin_size(mut self, seconds: u64) -> Self {
        self.bin_size = seconds.max(1);
        self
    }

    /// Records per broadcast batch (default 256). Larger batches
    /// amortise channel traffic; smaller ones reduce latency.
    pub fn batch_records(mut self, n: usize) -> Self {
        self.batch_records = n.max(1);
        self
    }

    /// Bounded queue depth per worker, in batches (default 4): the
    /// backpressure window between the reader and a slow worker.
    pub fn queue_batches(mut self, n: usize) -> Self {
        self.queue_batches = n.max(1);
        self
    }

    /// Finish configuration.
    pub fn build(self) -> ShardedRuntime {
        ShardedRuntime { cfg: self }
    }
}

/// The sharded consumer runtime. See the [module docs](self) for the
/// execution model; construct via [`ShardedRuntime::builder`].
pub struct ShardedRuntime {
    cfg: ShardedRuntimeBuilder,
}

/// Why a live session could not continue. The split mirrors
/// [`BrokerError`]'s recoverable/fatal distinction one layer up: a
/// [`Supervisor`] acts on the recoverable variants (restart from
/// checkpoint) and surfaces the fatal ones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// A shard worker panicked while processing a plugin. Recoverable:
    /// a supervisor restarts the shard from its last checkpoint; an
    /// unsupervised run tears down cleanly and reports it.
    WorkerPanicked {
        /// Worker index that died.
        worker: usize,
    },
    /// A shard worker stopped making progress past the configured
    /// stall timeout (wedged plugin, livelocked dependency).
    /// Recoverable the same way a panic is.
    WorkerStalled {
        /// Worker index that stalled.
        worker: usize,
    },
    /// A stored checkpoint failed to restore into a fresh shard
    /// instance. Fatal: the runtime's own recovery state is corrupt,
    /// so retrying cannot help.
    Checkpoint(String),
    /// The underlying stream died with a broker error; recoverability
    /// delegates to [`BrokerError::is_recoverable`].
    Stream(BrokerError),
}

impl RuntimeError {
    /// Whether a supervised retry/restart could plausibly get the
    /// session going again (see the variant docs).
    pub fn is_recoverable(&self) -> bool {
        match self {
            RuntimeError::WorkerPanicked { .. } | RuntimeError::WorkerStalled { .. } => true,
            RuntimeError::Checkpoint(_) => false,
            RuntimeError::Stream(e) => e.is_recoverable(),
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::WorkerPanicked { worker } => {
                write!(
                    f,
                    "shard worker {worker} panicked while processing a plugin"
                )
            }
            RuntimeError::WorkerStalled { worker } => {
                write!(
                    f,
                    "shard worker {worker} stalled past the supervision timeout"
                )
            }
            RuntimeError::Checkpoint(msg) => write!(f, "checkpoint restore failed: {msg}"),
            RuntimeError::Stream(e) => write!(f, "stream failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Whether a merged bin carries the full shard set or degraded
/// (synthesized-empty) partials from dead workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinStatus {
    /// Every shard's real partial was merged.
    Complete,
    /// At least one shard was dead past its restart budget; its slots
    /// were filled with empty partials so the bin could close instead
    /// of wedging the session. The bin start is recorded in
    /// [`LiveRunReport::partial_bins`].
    Partial,
}

/// One scheduled worker crash for chaos testing: the worker panics
/// when it is about to process the record with global index
/// `at_record` (0-based arrival order), `times` times in a row. With
/// `times: 1` the respawned worker sails past the same record on
/// replay; larger values model a deterministically recurring crash
/// that exhausts the restart budget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KillSpec {
    /// Worker index to kill.
    pub worker: usize,
    /// Global record index (arrival order) the kill fires at.
    pub at_record: u64,
    /// How many times the kill re-fires across restarts.
    pub times: u32,
}

/// A deterministic crash schedule injected into a supervised run —
/// the runtime-level half of `collector-sim`'s fault vocabulary.
#[derive(Clone, Default, Debug)]
pub struct Chaos {
    /// Worker kills (see [`KillSpec`]).
    pub kills: Vec<KillSpec>,
    /// `(worker, nth)`: tear the `nth` checkpoint (1-based) taken by
    /// `worker` mid-write. The frame checksum rejects it and the
    /// previous checkpoint stays authoritative, so recovery replays a
    /// wider window — output must not change.
    pub torn_checkpoints: Vec<(usize, u64)>,
}

/// Tuning for a [`Supervisor`]. All timing flows through the injected
/// [`Clock`], so tests drive backoff and stall detection on a manual
/// timeline.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Restart budget per worker; the attempt after the budget is
    /// exhausted degrades the worker instead (see [`BinStatus`]).
    pub max_restarts: u32,
    /// First-restart backoff; doubles per attempt (exponential).
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
    /// A worker with outstanding messages and no progress for this
    /// long is declared stalled and restarted from its checkpoint.
    pub stall_timeout_ms: u64,
    /// Time source for backoff and stall deadlines.
    pub clock: Clock,
    /// Seed for backoff jitter (deterministic given the seed).
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            backoff_base_ms: 200,
            backoff_max_ms: 5_000,
            stall_timeout_ms: 30_000,
            clock: Clock::system(),
            seed: 0x5eed_c0de,
        }
    }
}

/// Crash-safe wrapper around [`ShardedRuntime::run_live`]: detects
/// worker panics and stalls, restarts the shard from its last
/// checkpoint (workers checkpoint every hosted plugin at every bin
/// barrier through the deterministic plugin codec, sealed with a
/// checksum frame so torn writes are rejected), and replays the
/// coordinator's message log past the checkpoint — so a restored
/// worker is byte-identical to one that never died. When a worker
/// exhausts its restart budget the supervisor degrades it: later bins
/// close with [`BinStatus::Partial`] instead of wedging the session.
///
/// ```
/// use bgpstream::BgpStream;
/// use broker::{Index, LocalBroker};
/// use corsaro::runtime::{ShardedRuntime, Supervisor};
/// use corsaro::PfxMonitor;
///
/// let mut stream = BgpStream::builder()
///     .broker_client(LocalBroker::shared(Index::shared()))
///     .interval(0, Some(3600))
///     .start();
/// let mut monitor = PfxMonitor::new(["193.204.0.0/15".parse().unwrap()]);
/// let supervisor = Supervisor::new(ShardedRuntime::builder().workers(2).build());
/// let report = supervisor
///     .run_live(&mut stream, 3600, None, &mut [&mut monitor])
///     .expect("empty index cannot fail");
/// assert_eq!(report.records, 0);
/// assert_eq!(report.restarts, 0);
/// ```
pub struct Supervisor {
    runtime: ShardedRuntime,
    cfg: SupervisorConfig,
    chaos: Chaos,
}

impl Supervisor {
    /// Supervise `runtime` with the default [`SupervisorConfig`].
    pub fn new(runtime: ShardedRuntime) -> Self {
        Supervisor {
            runtime,
            cfg: SupervisorConfig::default(),
            chaos: Chaos::default(),
        }
    }

    /// Replace the supervision tuning.
    pub fn with_config(mut self, cfg: SupervisorConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Inject a crash schedule (chaos testing only; the default is no
    /// chaos).
    pub fn with_chaos(mut self, chaos: Chaos) -> Self {
        self.chaos = chaos;
        self
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &ShardedRuntime {
        &self.runtime
    }

    /// [`ShardedRuntime::run_live`] under supervision: same stream,
    /// stop and shutdown semantics, but worker panics and stalls are
    /// absorbed by checkpoint-restore-replay instead of ending the
    /// session, up to the per-worker restart budget.
    pub fn run_live(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        shutdown: Option<&AtomicBool>,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<LiveRunReport, RuntimeError> {
        self.runtime.run_live_inner(
            stream,
            stop,
            shutdown,
            roots,
            Some((&self.cfg, &self.chaos)),
        )
    }
}

/// What a [`ShardedRuntime::run_live`] session did.
#[derive(Clone, Debug, Default)]
pub struct LiveRunReport {
    /// Records processed (same meaning as the return value of
    /// [`ShardedRuntime::run_until`]).
    pub records: u64,
    /// Time bins closed and merged onto the root plugins.
    pub bins_closed: u64,
    /// True when the session ended because the shutdown flag was
    /// raised (as opposed to reaching `stop`).
    pub shutdown: bool,
    /// Worker respawns performed by a [`Supervisor`] (0 when
    /// unsupervised or nothing crashed).
    pub restarts: u64,
    /// Panic/stall events observed, including those that exhausted a
    /// restart budget and degraded the worker instead of respawning.
    pub retries: u64,
    /// Bin starts merged with [`BinStatus::Partial`], in close order.
    pub partial_bins: Vec<u64>,
}

/// Messages broadcast to shard workers. `seq` is the coordinator's
/// global message sequence number: workers echo it in progress acks
/// and checkpoints, and the supervisor's replay log is indexed by it.
#[derive(Clone)]
enum ShardMsg {
    /// A run of records, all belonging to the current bin. `base` is
    /// the global (arrival-order) index of the first record, used to
    /// anchor chaos kill points.
    Batch {
        seq: u64,
        base: u64,
        recs: Arc<Vec<BgpStreamRecord>>,
    },
    /// Close the bin `[bin_start, bin_end)` and ship partials.
    EndBin {
        seq: u64,
        bin_start: u64,
        bin_end: u64,
    },
}

impl ShardMsg {
    fn seq(&self) -> u64 {
        match self {
            ShardMsg::Batch { seq, .. } | ShardMsg::EndBin { seq, .. } => *seq,
        }
    }
}

/// Messages from shard workers back to the coordinator. Every message
/// carries the worker's `epoch` (bumped on each restart) so stragglers
/// from a detached zombie worker are filtered out.
enum ResMsg {
    Partial {
        plugin: usize,
        worker: usize,
        epoch: u64,
        bin_start: u64,
        bytes: Vec<u8>,
    },
    /// Sealed checkpoint frames (one per hosted plugin, in hosted
    /// order) taken right after the `EndBin` with sequence `seq`.
    /// Supervised runs only.
    Checkpoint {
        worker: usize,
        epoch: u64,
        seq: u64,
        frames: Vec<Vec<u8>>,
    },
    /// Heartbeat: the worker finished handling message `seq`.
    /// Supervised runs only.
    Progress { worker: usize, epoch: u64, seq: u64 },
    Panicked {
        worker: usize,
        epoch: u64,
        /// Set when a chaos kill fired: the global record index, so
        /// the coordinator decrements the matching [`KillSpec`].
        killed_at: Option<u64>,
    },
}

/// One hosted shard instance.
struct Hosted {
    /// Index of the root plugin this instance shards.
    root_idx: usize,
    partitioning: Partitioning,
    plugin: Box<dyn ShardedPlugin>,
}

/// One shard worker's private state.
struct WorkerState {
    plugins: Vec<Hosted>,
    res_tx: Sender<ResMsg>,
    worker: usize,
    workers: usize,
    /// Restart generation this worker belongs to; echoed in every
    /// result message so the coordinator can discard zombie output.
    epoch: u64,
    /// Supervised workers emit progress acks and per-bin checkpoints.
    supervised: bool,
    /// Remaining chaos kills for this worker: `(at_record, times)`.
    kills: Vec<(u64, u32)>,
    /// Global record index of the chaos kill that is about to fire,
    /// recorded just before the injected panic so the panic handler
    /// can report it.
    pending_kill: Option<u64>,
    /// Reusable per-record ownership masks, one per partitioning mode
    /// in use: computed once per record, shared by every same-mode
    /// plugin instance on this worker.
    mask_prefix: Vec<bool>,
    mask_peer: Vec<bool>,
    need_prefix_mask: bool,
    need_peer_mask: bool,
    /// Set after a plugin panicked: remaining messages are drained
    /// without processing so the coordinator never deadlocks.
    poisoned: bool,
}

impl WorkerState {
    fn handle(&mut self, msg: ShardMsg) {
        if self.poisoned {
            return;
        }
        let worker = self.worker;
        let epoch = self.epoch;
        let seq = msg.seq();
        // The worker loop is the one sanctioned isolation boundary: a
        // plugin panic becomes ResMsg::Panicked and the supervisor
        // decides recovery.
        // xcheck:allow(catch-unwind) — see above
        let r = catch_unwind(AssertUnwindSafe(|| match msg {
            ShardMsg::Batch { base, recs, .. } => {
                for (i, rec) in recs.iter().enumerate() {
                    let global = base + i as u64;
                    if self.supervised {
                        if let Some(kill) = self.kills.iter_mut().find(|k| k.1 > 0 && k.0 == global)
                        {
                            kill.1 -= 1;
                            self.pending_kill = Some(global);
                            panic!("chaos: kill worker {worker} at record {global}");
                        }
                    }
                    self.process(rec);
                }
            }
            ShardMsg::EndBin {
                bin_start, bin_end, ..
            } => {
                for hosted in self.plugins.iter_mut() {
                    hosted.plugin.end_bin(bin_start, bin_end);
                    let bytes = hosted.plugin.take_partial();
                    let _ = self.res_tx.send(ResMsg::Partial {
                        plugin: hosted.root_idx,
                        worker,
                        epoch,
                        bin_start,
                        bytes,
                    });
                }
                if self.supervised {
                    // Checkpoint at the bin barrier: plugin state is
                    // exactly what an uninterrupted worker would carry
                    // into the next bin, and the sealed frames reject
                    // torn writes on restore.
                    let frames: Vec<Vec<u8>> = self
                        .plugins
                        .iter()
                        .map(|h| codec::seal_frame(&h.plugin.checkpoint()))
                        .collect();
                    let _ = self.res_tx.send(ResMsg::Checkpoint {
                        worker,
                        epoch,
                        seq,
                        frames,
                    });
                }
            }
        }));
        match r {
            Ok(()) => {
                if self.supervised {
                    let _ = self.res_tx.send(ResMsg::Progress { worker, epoch, seq });
                }
            }
            Err(_) => {
                self.poisoned = true;
                let _ = self.res_tx.send(ResMsg::Panicked {
                    worker,
                    epoch,
                    killed_at: self.pending_kill.take(),
                });
            }
        }
    }

    fn process(&mut self, rec: &BgpStreamRecord) {
        let elems = rec.elems();
        if self.need_prefix_mask {
            self.mask_prefix.clear();
            self.mask_prefix
                .extend(elems.iter().map(|e| match &e.prefix {
                    // Prefix-less elems (state messages) broadcast to
                    // every shard: per-VP bookkeeping must replay
                    // everywhere a VP's prefixes might live.
                    None => true,
                    Some(p) => shard_of_prefix(p, self.workers) == self.worker,
                }));
        }
        if self.need_peer_mask {
            self.mask_peer.clear();
            self.mask_peer.extend(
                elems
                    .iter()
                    .map(|e| shard_of_peer(&e.peer_address, self.workers) == self.worker),
            );
        }
        for hosted in self.plugins.iter_mut() {
            match hosted.partitioning {
                Partitioning::Pinned => hosted.plugin.process_record(rec),
                Partitioning::ByPrefix => hosted.plugin.process_sharded(rec, &self.mask_prefix),
                Partitioning::ByPeer => hosted.plugin.process_sharded(rec, &self.mask_peer),
            }
        }
    }
}

/// An open bin barrier awaiting shard partials.
struct PendingBin {
    bin_start: u64,
    bin_end: u64,
    /// One slot per hosted plugin instance (flat index).
    slots: Vec<Option<Vec<u8>>>,
    missing: usize,
    status: BinStatus,
}

/// Per-plugin placement: which workers host a shard instance, and
/// where each `(plugin, worker)` pair lives in the flat slot array.
struct Placement {
    /// `holders[p]` = sorted worker indexes hosting plugin `p`.
    holders: Vec<Vec<usize>>,
    /// `base[p]` = first flat slot of plugin `p`.
    base: Vec<usize>,
    total_instances: usize,
}

impl Placement {
    fn new(partitionings: &[Partitioning], workers: usize) -> Self {
        let mut holders = Vec::with_capacity(partitionings.len());
        let mut base = Vec::with_capacity(partitionings.len());
        let mut total = 0usize;
        for (p, part) in partitionings.iter().enumerate() {
            let h: Vec<usize> = match part {
                Partitioning::Pinned => vec![p % workers],
                Partitioning::ByPrefix | Partitioning::ByPeer => (0..workers).collect(),
            };
            base.push(total);
            total += h.len();
            holders.push(h);
        }
        Placement {
            holders,
            base,
            total_instances: total,
        }
    }

    fn slot(&self, plugin: usize, worker: usize) -> usize {
        let pos = self.holders[plugin]
            .iter()
            .position(|&w| w == worker)
            // xcheck:allow(unwrap) — placement routed this worker to the plugin
            .expect("partial from a worker that does not host this plugin");
        self.base[plugin] + pos
    }
}

impl ShardedRuntime {
    /// Start configuring a runtime.
    pub fn builder() -> ShardedRuntimeBuilder {
        ShardedRuntimeBuilder::default()
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Drive `plugins` over the whole stream. Returns the number of
    /// records processed; per-bin outputs land on the root plugins
    /// exactly as under [`run_pipeline`](crate::run_pipeline).
    pub fn run(&self, stream: &mut BgpStream, plugins: &mut [&mut dyn ShardedPlugin]) -> u64 {
        self.run_until(stream, u64::MAX, plugins)
    }

    /// [`ShardedRuntime::run`] with the stop semantics of
    /// [`run_pipeline_until`](crate::run_pipeline_until): returns once
    /// a record timestamped at or after `stop` arrives (that record is
    /// not processed).
    ///
    /// Panics on a [`RuntimeError`] (worker panic or stream failure) —
    /// the historical runners keep their infallible `u64` signature;
    /// callers that want to *handle* failure use
    /// [`ShardedRuntime::run_live`] or a [`Supervisor`].
    pub fn run_until(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> u64 {
        // One coordinator loop serves both runners: on a historical
        // stream `next_batch_step` never reports Idle, so run_live's
        // extra watermark-driven closing is unreachable and the flow
        // reduces to exactly the historical batching/binning/stop
        // semantics (the determinism suite pins this equivalence).
        match self.run_live(stream, stop, None, roots) {
            Ok(report) => report.records,
            Err(e) => panic!("sharded runtime failed: {e}"),
        }
    }

    /// Drive `roots` over a **live** stream, closing time bins off the
    /// broker's completeness watermark instead of stream EOF (which a
    /// live stream never reaches).
    ///
    /// The loop is built on [`BgpStream::next_batch_step`], so the
    /// coordinator regains control whenever the stream would block:
    ///
    /// * records are batched, broadcast and binned exactly as in
    ///   [`ShardedRuntime::run_until`] — bins close when a record of a
    ///   later bin arrives;
    /// * on [`BatchStep::Idle`] the runtime additionally closes every
    ///   bin whose end lies at or below the stream's
    ///   `released_through` watermark: the broker has vouched that
    ///   nothing older can arrive, so the bin is complete even though
    ///   no later record has been seen yet. Quiet periods therefore
    ///   emit dense (empty) bins promptly instead of stalling the time
    ///   series;
    /// * `shutdown` (checked between steps) requests a cooperative
    ///   exit: the current batch is flushed, workers join, and every
    ///   already-closed bin is merged — nothing hangs and no partials
    ///   are lost, but the in-progress bin is *not* closed (it is
    ///   incomplete by definition).
    ///
    /// The session ends at `stop` with the exact semantics of
    /// [`ShardedRuntime::run_until`] (a record at or after `stop` is
    /// consumed but not processed; read-ahead goes back to the
    /// stream), or as soon as the watermark proves every record below
    /// `stop` has been delivered. For every closed bin the merged
    /// output on the root plugins is byte-identical to a historical
    /// [`run_pipeline`](crate::run_pipeline) over the same (final)
    /// archive — the live-vs-historical equivalence CI proves across
    /// fault schedules, crash schedules and worker counts.
    ///
    /// A worker panic ends the session with
    /// [`RuntimeError::WorkerPanicked`] after a clean teardown (the
    /// pool drains and rebuilds on the next run — no poisoned state
    /// survives); a stream failure surfaces as
    /// [`RuntimeError::Stream`]. Wrap the runtime in a [`Supervisor`]
    /// to recover instead.
    pub fn run_live(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        shutdown: Option<&AtomicBool>,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<LiveRunReport, RuntimeError> {
        self.run_live_inner(stream, stop, shutdown, roots, None)
    }

    fn run_live_inner(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        shutdown: Option<&AtomicBool>,
        roots: &mut [&mut dyn ShardedPlugin],
        sup: Option<(&SupervisorConfig, &Chaos)>,
    ) -> Result<LiveRunReport, RuntimeError> {
        let bin_size = self.cfg.bin_size.max(1);
        let supervised = sup.is_some();
        let mut session = LiveSession::new(self, roots, sup);
        // The bin currently receiving records; `dirty` = at least one
        // record fell into it since it opened (only dirty bins close
        // at session end, mirroring the sequential runner's EOF close).
        let mut current_bin: Option<u64> = None;
        let mut dirty = false;
        let mut batch: Vec<BgpStreamRecord> = Vec::with_capacity(self.cfg.batch_records);

        'read: loop {
            if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
                session.report.shutdown = true;
                break 'read;
            }
            match stream.next_batch_step(self.cfg.batch_records) {
                BatchStep::Records(recs) => {
                    let mut recs = recs.into_iter();
                    while let Some(rec) = recs.next() {
                        if rec.timestamp >= stop {
                            stream.unread(recs.collect());
                            break 'read;
                        }
                        let bin = rec.timestamp - rec.timestamp % bin_size;
                        match current_bin {
                            None => current_bin = Some(bin),
                            Some(cur) if bin > cur => {
                                session.flush(&mut batch, roots)?;
                                let mut b = cur;
                                while b < bin {
                                    session.close_bin(roots, b, b + bin_size)?;
                                    b += bin_size;
                                }
                                current_bin = Some(bin);
                            }
                            _ => {}
                        }
                        dirty = true;
                        batch.push(rec);
                        session.report.records += 1;
                        if batch.len() >= self.cfg.batch_records {
                            session.flush(&mut batch, roots)?;
                        }
                    }
                    session.drain_results(roots, false)?;
                }
                BatchStep::Idle { released_through } => {
                    // Watermark-driven closing: everything below the
                    // watermark has been delivered, so bins ending at
                    // or below it are complete — including empty ones.
                    // A `u64::MAX` limit is not a bin boundary but an
                    // end-of-feed signal (provider parked the
                    // watermark at the end of time with nothing left,
                    // or `stop == u64::MAX` on an open-ended session):
                    // closing empty bins toward it would spin forever,
                    // so it only ever terminates via the break below.
                    let limit = released_through.min(stop);
                    if limit != u64::MAX && current_bin.is_some_and(|cur| cur + bin_size <= limit) {
                        session.flush(&mut batch, roots)?;
                        while let Some(cur) = current_bin {
                            if cur + bin_size > limit {
                                break;
                            }
                            session.close_bin(roots, cur, cur + bin_size)?;
                            current_bin = Some(cur + bin_size);
                            dirty = false;
                        }
                    }
                    session.drain_results(roots, false)?;
                    if supervised {
                        // Heartbeat check: a worker sitting on
                        // unacknowledged messages past the stall
                        // timeout is restarted from its checkpoint.
                        session.check_stalls(roots)?;
                    }
                    if released_through >= stop {
                        // Every record below `stop` has been released
                        // and delivered: the session is complete.
                        break 'read;
                    }
                }
                BatchStep::End => {
                    if let Some(e) = stream.last_error() {
                        return Err(RuntimeError::Stream(e.clone()));
                    }
                    break 'read;
                }
            }
        }
        session.flush(&mut batch, roots)?;
        if dirty && !session.report.shutdown {
            if let Some(cur) = current_bin {
                session.close_bin(roots, cur, cur + bin_size)?;
            }
        }
        session.finish(roots)
    }
}

/// Deterministic xorshift64 for backoff jitter (no OS entropy — runs
/// must replay identically from the seed).
fn jitter_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

/// Supervision state carried by a [`LiveSession`] when run through a
/// [`Supervisor`].
struct SupState {
    cfg: SupervisorConfig,
    /// Master kill schedule; `times` decremented as kills fire so a
    /// respawned worker re-arms only the remaining budget.
    kills: Vec<KillSpec>,
    torn: Vec<(usize, u64)>,
    /// Checkpoints received per worker (all epochs), for torn-write
    /// injection accounting.
    ckpt_seen: Vec<u64>,
    /// Latest valid checkpoint per worker: `(seq of the EndBin it was
    /// taken at, opened frame payloads in hosted-plugin order)`.
    ckpt: Vec<Option<(u64, Vec<Vec<u8>>)>>,
    attempts: Vec<u32>,
    epochs: Vec<u64>,
    /// Replay log: every broadcast message since the oldest checkpoint
    /// any live worker might restart from (batches hold `Arc`s, so an
    /// entry is cheap).
    log: VecDeque<ShardMsg>,
    sent_seq: Vec<u64>,
    acked_seq: Vec<u64>,
    last_progress_ms: Vec<u64>,
    rng: u64,
}

impl SupState {
    fn new(cfg: &SupervisorConfig, chaos: &Chaos, workers: usize) -> Self {
        let now = cfg.clock.now_millis();
        SupState {
            cfg: cfg.clone(),
            kills: chaos.kills.clone(),
            torn: chaos.torn_checkpoints.clone(),
            ckpt_seen: vec![0; workers],
            ckpt: (0..workers).map(|_| None).collect(),
            attempts: vec![0; workers],
            epochs: vec![0; workers],
            log: VecDeque::new(),
            sent_seq: vec![0; workers],
            acked_seq: vec![0; workers],
            last_progress_ms: vec![now; workers],
            rng: cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    fn ckpt_seq(&self, w: usize) -> u64 {
        self.ckpt[w].as_ref().map(|(s, _)| *s).unwrap_or(0)
    }
}

/// Coordinator state for one `run_live` session: one single-worker
/// [`ShardPool`] per shard (so a restart is literally "drain one pool
/// and rebuild it"), the pending-bin merge queue, and optional
/// supervision state.
struct LiveSession<'rt> {
    rt: &'rt ShardedRuntime,
    workers: usize,
    partitionings: Vec<Partitioning>,
    placement: Placement,
    /// `None` = degraded: the worker exhausted its restart budget and
    /// its slots are synthesized from here on.
    pools: Vec<Option<ShardPool<ShardMsg>>>,
    dead: Vec<bool>,
    /// Kept for respawns under supervision; `None` from the start on
    /// unsupervised runs so `res_rx` disconnects once workers exit.
    res_tx: Option<Sender<ResMsg>>,
    res_rx: Receiver<ResMsg>,
    pending: VecDeque<PendingBin>,
    report: LiveRunReport,
    next_seq: u64,
    next_base: u64,
    sup: Option<SupState>,
}

impl<'rt> LiveSession<'rt> {
    fn new(
        rt: &'rt ShardedRuntime,
        roots: &mut [&mut dyn ShardedPlugin],
        sup: Option<(&SupervisorConfig, &Chaos)>,
    ) -> Self {
        let workers = rt.cfg.workers.max(1);
        let partitionings: Vec<Partitioning> = roots.iter().map(|p| p.partitioning()).collect();
        let placement = Placement::new(&partitionings, workers);
        let (res_tx, res_rx) = bsync::channel::unbounded::<ResMsg>();
        let mut session = LiveSession {
            rt,
            workers,
            partitionings,
            placement,
            pools: (0..workers).map(|_| None).collect(),
            dead: vec![false; workers],
            res_tx: Some(res_tx),
            res_rx,
            pending: VecDeque::new(),
            report: LiveRunReport::default(),
            next_seq: 0,
            next_base: 0,
            sup: sup.map(|(cfg, chaos)| SupState::new(cfg, chaos, workers)),
        };
        for w in 0..workers {
            let state = session.make_worker_state(w, roots, 0);
            session.pools[w] = Some(session.spawn_one(state));
        }
        if session.sup.is_none() {
            // Unsupervised: the final blocking drain detects worker
            // exit via channel disconnect, so the coordinator must not
            // hold a sender.
            session.res_tx = None;
        }
        session
    }

    /// Fork a fresh shard instance set for worker `w` (same grouping
    /// the original spawn used, so checkpoint frames line up with
    /// hosted order across restarts).
    fn make_worker_state(
        &self,
        w: usize,
        roots: &[&mut dyn ShardedPlugin],
        epoch: u64,
    ) -> WorkerState {
        let mut plugins = Vec::new();
        for (p, part) in self.partitionings.iter().enumerate() {
            match part {
                Partitioning::Pinned if p % self.workers == w => plugins.push(Hosted {
                    root_idx: p,
                    partitioning: Partitioning::Pinned,
                    plugin: roots[p].fork(0, 1),
                }),
                part @ (Partitioning::ByPrefix | Partitioning::ByPeer) => plugins.push(Hosted {
                    root_idx: p,
                    partitioning: *part,
                    plugin: roots[p].fork(w, self.workers),
                }),
                _ => {}
            }
        }
        let need_prefix_mask = plugins
            .iter()
            .any(|h| h.partitioning == Partitioning::ByPrefix);
        let need_peer_mask = plugins
            .iter()
            .any(|h| h.partitioning == Partitioning::ByPeer);
        let kills = self
            .sup
            .as_ref()
            .map(|s| {
                s.kills
                    .iter()
                    .filter(|k| k.worker == w && k.times > 0)
                    .map(|k| (k.at_record, k.times))
                    .collect()
            })
            .unwrap_or_default();
        WorkerState {
            plugins,
            res_tx: self
                .res_tx
                .clone()
                // xcheck:allow(unwrap) — res_tx lives until finish()
                .expect("worker spawned while the session is open"),
            worker: w,
            workers: self.workers,
            epoch,
            supervised: self.sup.is_some(),
            kills,
            pending_kill: None,
            mask_prefix: Vec::new(),
            mask_peer: Vec::new(),
            need_prefix_mask,
            need_peer_mask,
            poisoned: false,
        }
    }

    fn spawn_one(&self, state: WorkerState) -> ShardPool<ShardMsg> {
        let mut slot = Some(state);
        ShardPool::spawn(
            1,
            self.rt.cfg.queue_batches,
            // xcheck:allow(unwrap) — a 1-worker pool calls init exactly once
            move |_| slot.take().expect("single worker initialised once"),
            |_w, state: &mut WorkerState, msg: ShardMsg| state.handle(msg),
        )
    }

    fn alloc_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Broadcast `msg` to every live worker (and the replay log).
    fn broadcast(
        &mut self,
        msg: ShardMsg,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<(), RuntimeError> {
        if let Some(sup) = &mut self.sup {
            sup.log.push_back(msg.clone());
        }
        for w in 0..self.workers {
            if self.dead[w] {
                continue;
            }
            self.send_to(w, msg.clone(), roots)?;
        }
        Ok(())
    }

    /// Deliver one message to worker `w`. Unsupervised: a plain
    /// blocking send (backpressure). Supervised: a `try_send` poll
    /// loop so a worker that stops draining its queue is detected as a
    /// stall within `stall_timeout_ms` and restarted; a restart's
    /// replay may deliver the message for us, which `sent_seq` tracks.
    fn send_to(
        &mut self,
        w: usize,
        msg: ShardMsg,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<(), RuntimeError> {
        if self.sup.is_none() {
            // xcheck:allow(unwrap) — unsupervised pools are never degraded
            self.pools[w].as_ref().expect("pool alive").broadcast(msg);
            return Ok(());
        }
        let seq = msg.seq();
        let mut msg = msg;
        let mut full_since: Option<u64> = None;
        loop {
            let sup = self.sup.as_ref().expect("supervised"); // xcheck:allow(unwrap) — Some on the supervised path by construction
            if self.dead[w] || sup.sent_seq[w] >= seq {
                return Ok(());
            }
            let pool = self.pools[w].as_ref().expect("live worker has a pool"); // xcheck:allow(unwrap) — guarded by !self.dead[w] above
            match pool.try_send(0, msg) {
                Ok(()) => {
                    let sup = self.sup.as_mut().expect("supervised"); // xcheck:allow(unwrap) — Some on the supervised path by construction
                    sup.sent_seq[w] = sup.sent_seq[w].max(seq);
                    return Ok(());
                }
                Err(TrySendError::Full(m)) => {
                    msg = m;
                    let now = sup.cfg.clock.now_millis();
                    let timeout = sup.cfg.stall_timeout_ms;
                    let since = *full_since.get_or_insert(now);
                    self.drain_results(roots, false)?;
                    if now.saturating_sub(since) >= timeout {
                        self.report.retries += 1;
                        self.restart_worker(w, roots)?;
                        full_since = None;
                    } else {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected(m)) => {
                    // The worker thread itself died (not a caught
                    // plugin panic — those keep draining). Restart it.
                    msg = m;
                    self.report.retries += 1;
                    self.restart_worker(w, roots)?;
                }
            }
        }
    }

    fn flush(
        &mut self,
        batch: &mut Vec<BgpStreamRecord>,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<(), RuntimeError> {
        if batch.is_empty() {
            return Ok(());
        }
        let cap = self.rt.cfg.batch_records;
        let recs = Arc::new(std::mem::replace(batch, Vec::with_capacity(cap)));
        let base = self.next_base;
        self.next_base += recs.len() as u64;
        let seq = self.alloc_seq();
        self.broadcast(ShardMsg::Batch { seq, base, recs }, roots)
    }

    fn close_bin(
        &mut self,
        roots: &mut [&mut dyn ShardedPlugin],
        bin_start: u64,
        bin_end: u64,
    ) -> Result<(), RuntimeError> {
        let seq = self.alloc_seq();
        let total = self.placement.total_instances;
        let mut bin = PendingBin {
            bin_start,
            bin_end,
            slots: (0..total).map(|_| None).collect(),
            missing: total,
            status: BinStatus::Complete,
        };
        for w in 0..self.workers {
            if self.dead[w] {
                fill_dead_slots(
                    &self.placement,
                    &self.partitionings,
                    self.workers,
                    &mut bin,
                    w,
                    roots,
                );
            }
        }
        // Queue the bin before broadcasting so partials from a
        // mid-broadcast restart replay find their slots.
        self.pending.push_back(bin);
        self.report.bins_closed += 1;
        self.broadcast(
            ShardMsg::EndBin {
                seq,
                bin_start,
                bin_end,
            },
            roots,
        )
    }

    /// Restart worker `w` from its last checkpoint: bump the epoch
    /// (zombie output is discarded by epoch filtering), back off with
    /// seeded jitter, detach the old pool, fork-and-restore a fresh
    /// shard instance set, and replay every logged message past the
    /// checkpoint. Past the restart budget the worker degrades
    /// instead.
    fn restart_worker(
        &mut self,
        w: usize,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<(), RuntimeError> {
        let sup = self.sup.as_mut().expect("supervised"); // xcheck:allow(unwrap) — Some on the supervised path by construction
        sup.attempts[w] += 1;
        sup.epochs[w] += 1;
        if sup.attempts[w] > sup.cfg.max_restarts {
            if let Some(pool) = self.pools[w].take() {
                pool.detach();
            }
            self.degrade(w, roots);
            return Ok(());
        }
        self.report.restarts += 1;
        let exp = (sup.attempts[w] - 1).min(20);
        let backoff = sup
            .cfg
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(sup.cfg.backoff_max_ms);
        let jitter = if backoff == 0 {
            0
        } else {
            jitter_rng(&mut sup.rng) % (backoff / 2 + 1)
        };
        if backoff + jitter > 0 {
            sup.cfg.clock.sleep(Duration::from_millis(backoff + jitter));
        }
        // Detach rather than join: a *stalled* worker never exits, and
        // a panicked one is poisoned and drains on its own.
        if let Some(pool) = self.pools[w].take() {
            pool.detach();
        }
        let epoch = sup.epochs[w];
        let from_seq = sup.ckpt_seq(w);
        let frames = sup.ckpt[w].as_ref().map(|(_, f)| f.clone());
        let mut state = self.make_worker_state(w, roots, epoch);
        if let Some(frames) = frames {
            if frames.len() != state.plugins.len() {
                return Err(RuntimeError::Checkpoint(format!(
                    "worker {w}: {} checkpoint frames for {} hosted plugins",
                    frames.len(),
                    state.plugins.len()
                )));
            }
            for (hosted, frame) in state.plugins.iter_mut().zip(frames.iter()) {
                hosted
                    .plugin
                    .restore(frame)
                    .map_err(RuntimeError::Checkpoint)?;
            }
        }
        self.pools[w] = Some(self.spawn_one(state));
        let sup = self.sup.as_mut().expect("supervised"); // xcheck:allow(unwrap) — Some on the supervised path by construction
        sup.sent_seq[w] = from_seq;
        sup.acked_seq[w] = from_seq;
        sup.last_progress_ms[w] = sup.cfg.clock.now_millis();
        let replay: Vec<ShardMsg> = sup
            .log
            .iter()
            .filter(|m| m.seq() > from_seq)
            .cloned()
            .collect();
        for m in replay {
            self.send_to(w, m, roots)?;
        }
        Ok(())
    }

    /// Graceful degradation: mark `w` dead and complete its slots in
    /// every pending bin with synthesized empty partials so the
    /// session keeps closing bins (marked [`BinStatus::Partial`])
    /// instead of wedging.
    fn degrade(&mut self, w: usize, roots: &mut [&mut dyn ShardedPlugin]) {
        self.dead[w] = true;
        let mut bins = std::mem::take(&mut self.pending);
        for bin in bins.iter_mut() {
            fill_dead_slots(
                &self.placement,
                &self.partitionings,
                self.workers,
                bin,
                w,
                roots,
            );
        }
        self.pending = bins;
    }

    /// Idle-path stall detection off worker heartbeats: a live worker
    /// with unacknowledged messages and no progress past the timeout
    /// is restarted (its pool is detached; the zombie thread parks on
    /// whatever wedged it).
    fn check_stalls(&mut self, roots: &mut [&mut dyn ShardedPlugin]) -> Result<(), RuntimeError> {
        let Some(sup) = &self.sup else {
            return Ok(());
        };
        let now = sup.cfg.clock.now_millis();
        let timeout = sup.cfg.stall_timeout_ms;
        let stalled: Vec<usize> = (0..self.workers)
            .filter(|&w| {
                !self.dead[w]
                    && sup.sent_seq[w] > sup.acked_seq[w]
                    && now.saturating_sub(sup.last_progress_ms[w]) >= timeout
            })
            .collect();
        for w in stalled {
            let sup = self.sup.as_ref().expect("supervised"); // xcheck:allow(unwrap) — Some on the supervised path by construction
            if self.dead[w] || sup.sent_seq[w] <= sup.acked_seq[w] {
                continue;
            }
            self.report.retries += 1;
            self.restart_worker(w, roots)?;
        }
        Ok(())
    }

    /// Fold arrived partials into the roots, strictly in bin order.
    /// With `block` set, waits until every pending bin is merged.
    fn drain_results(
        &mut self,
        roots: &mut [&mut dyn ShardedPlugin],
        block: bool,
    ) -> Result<(), RuntimeError> {
        loop {
            self.merge_ready(roots);
            if block && self.pending.is_empty() {
                return Ok(());
            }
            let msg = if block {
                if self.sup.is_some() {
                    // Supervised blocking drain must keep crash and
                    // stall handling live, so it polls instead of
                    // parking on `recv`.
                    match self.res_rx.try_recv() {
                        Ok(m) => m,
                        Err(TryRecvError::Empty) => {
                            self.check_stalls(roots)?;
                            std::thread::yield_now();
                            continue;
                        }
                        Err(TryRecvError::Disconnected) => return Ok(()),
                    }
                } else {
                    match self.res_rx.recv() {
                        Ok(m) => m,
                        Err(_) => {
                            assert!(
                                self.pending.is_empty(),
                                "shard workers exited with {} bin(s) unmerged",
                                self.pending.len()
                            );
                            return Ok(());
                        }
                    }
                }
            } else {
                match self.res_rx.try_recv() {
                    Ok(m) => m,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Ok(()),
                }
            };
            self.on_msg(msg, roots)?;
        }
    }

    fn merge_ready(&mut self, roots: &mut [&mut dyn ShardedPlugin]) {
        while self
            .pending
            .front()
            .map(|b| b.missing == 0)
            .unwrap_or(false)
        {
            // xcheck:allow(unwrap) — front existence checked by the loop condition
            let done = self.pending.pop_front().expect("front checked");
            if done.status == BinStatus::Partial {
                self.report.partial_bins.push(done.bin_start);
            }
            let mut slots = done.slots;
            for (p, root) in roots.iter_mut().enumerate() {
                let partials: Vec<Vec<u8>> = self.placement.holders[p]
                    .iter()
                    .map(|&w| {
                        slots[self.placement.slot(p, w)]
                            .take()
                            // xcheck:allow(unwrap) — missing == 0 means every slot is filled
                            .expect("bin complete, slot filled")
                    })
                    .collect();
                root.merge_bin(done.bin_start, done.bin_end, partials);
            }
        }
    }

    fn on_msg(
        &mut self,
        msg: ResMsg,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<(), RuntimeError> {
        match msg {
            ResMsg::Partial {
                plugin,
                worker,
                epoch,
                bin_start,
                bytes,
            } => {
                if let Some(sup) = &mut self.sup {
                    if epoch != sup.epochs[worker] {
                        return Ok(()); // zombie epoch
                    }
                    sup.last_progress_ms[worker] = sup.cfg.clock.now_millis();
                }
                let slot = self.placement.slot(plugin, worker);
                let Some(bin) = self.pending.iter_mut().find(|b| b.bin_start == bin_start) else {
                    if self.sup.is_some() {
                        // Replay past a torn checkpoint re-answers a
                        // bin that already merged; deterministic
                        // replay makes the bytes identical, so the
                        // duplicate is dropped.
                        return Ok(());
                    }
                    panic!("partial for an unknown bin");
                };
                if bin.slots[slot].is_some() {
                    debug_assert!(
                        self.sup.is_some(),
                        "duplicate partial on an unsupervised run"
                    );
                    return Ok(());
                }
                bin.slots[slot] = Some(bytes);
                bin.missing -= 1;
                Ok(())
            }
            ResMsg::Progress { worker, epoch, seq } => {
                if let Some(sup) = &mut self.sup {
                    if epoch == sup.epochs[worker] {
                        sup.acked_seq[worker] = sup.acked_seq[worker].max(seq);
                        sup.last_progress_ms[worker] = sup.cfg.clock.now_millis();
                    }
                }
                Ok(())
            }
            ResMsg::Checkpoint {
                worker,
                epoch,
                seq,
                mut frames,
            } => {
                let Some(sup) = &mut self.sup else {
                    return Ok(());
                };
                if epoch != sup.epochs[worker] {
                    return Ok(());
                }
                sup.ckpt_seen[worker] += 1;
                let nth = sup.ckpt_seen[worker];
                if sup.torn.iter().any(|&(tw, tn)| tw == worker && tn == nth) {
                    // Chaos: simulate a write torn mid-flush on the
                    // last frame.
                    if let Some(last) = frames.last_mut() {
                        let cut = last.len().saturating_sub(5);
                        last.truncate(cut);
                    }
                }
                let opened: Result<Vec<Vec<u8>>, String> = frames
                    .iter()
                    .map(|f| codec::open_frame(f).map(|p| p.to_vec()))
                    .collect();
                match opened {
                    Ok(payloads) => {
                        sup.ckpt[worker] = Some((seq, payloads));
                        // Trim replay entries no live worker can need.
                        let min_seq = (0..self.workers)
                            .filter(|&w| !self.dead[w])
                            .map(|w| sup.ckpt_seq(w))
                            .min()
                            .unwrap_or(0);
                        while sup.log.front().is_some_and(|m| m.seq() <= min_seq) {
                            sup.log.pop_front();
                        }
                    }
                    Err(_) => {
                        // Torn write: the previous checkpoint stays
                        // authoritative and replay covers the gap.
                    }
                }
                Ok(())
            }
            ResMsg::Panicked {
                worker,
                epoch,
                killed_at,
            } => match &mut self.sup {
                None => Err(RuntimeError::WorkerPanicked { worker }),
                Some(sup) => {
                    if epoch != sup.epochs[worker] || self.dead[worker] {
                        return Ok(());
                    }
                    if let Some(at) = killed_at {
                        if let Some(k) = sup
                            .kills
                            .iter_mut()
                            .find(|k| k.worker == worker && k.at_record == at && k.times > 0)
                        {
                            k.times -= 1;
                        }
                    }
                    self.report.retries += 1;
                    self.restart_worker(worker, roots)
                }
            },
        }
    }

    /// End of session: merge everything still pending, retire the
    /// workers, and hand back the report.
    fn finish(
        mut self,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> Result<LiveRunReport, RuntimeError> {
        if self.sup.is_some() {
            // Crashes on the final bins are still recovered here; only
            // once nothing is pending do the workers retire.
            self.drain_results(roots, true)?;
            for pool in self.pools.iter_mut() {
                if let Some(p) = pool.take() {
                    p.join();
                }
            }
            self.res_tx = None;
            // Swallow stragglers (zombie epochs, trailing progress, a
            // kill that fired after the last barrier).
            while self.res_rx.try_recv().is_ok() {}
        } else {
            for pool in self.pools.iter_mut() {
                if let Some(p) = pool.take() {
                    p.join();
                }
            }
            // res_tx is already None: recv drains until disconnect.
            self.drain_results(roots, true)?;
        }
        Ok(std::mem::take(&mut self.report))
    }
}

/// Complete worker `w`'s slots in `bin` with partials synthesized from
/// empty forks (for [`crate::RtPlugin`]-style plugins the fork must
/// still see `end_bin` before `take_partial`). Marks the bin
/// [`BinStatus::Partial`].
fn fill_dead_slots(
    placement: &Placement,
    partitionings: &[Partitioning],
    workers: usize,
    bin: &mut PendingBin,
    w: usize,
    roots: &mut [&mut dyn ShardedPlugin],
) {
    for (p, holders) in placement.holders.iter().enumerate() {
        if !holders.contains(&w) {
            continue;
        }
        let slot = placement.slot(p, w);
        if bin.slots[slot].is_some() {
            continue;
        }
        let mut fork = match partitionings[p] {
            Partitioning::Pinned => roots[p].fork(0, 1),
            Partitioning::ByPrefix | Partitioning::ByPeer => roots[p].fork(w, workers),
        };
        fork.end_bin(bin.bin_start, bin.bin_end);
        bin.slots[slot] = Some(fork.take_partial());
        bin.missing -= 1;
        bin.status = BinStatus::Partial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hashes_are_stable_and_in_range() {
        let p: Prefix = "193.204.10.0/24".parse().unwrap();
        let a = shard_of_prefix(&p, 4);
        assert_eq!(a, shard_of_prefix(&p, 4));
        assert!(a < 4);
        assert_eq!(shard_of_prefix(&p, 1), 0);
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        let b = shard_of_peer(&ip, 4);
        assert_eq!(b, shard_of_peer(&ip, 4));
        assert!(b < 4);
        assert_eq!(shard_of_peer(&ip, 0), 0);
    }

    #[test]
    fn prefix_shards_spread() {
        // Not a distribution-quality test, just "not everything lands
        // on one shard".
        let mut seen = [false; 4];
        for i in 0..64u8 {
            let p: Prefix = format!("10.{i}.0.0/16").parse().unwrap();
            seen[shard_of_prefix(&p, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn placement_pins_and_partitions() {
        let pl = Placement::new(
            &[
                Partitioning::Pinned,
                Partitioning::ByPrefix,
                Partitioning::Pinned,
            ],
            3,
        );
        assert_eq!(pl.holders[0], vec![0]);
        assert_eq!(pl.holders[1], vec![0, 1, 2]);
        assert_eq!(pl.holders[2], vec![2]);
        assert_eq!(pl.total_instances, 5);
        // Flat slots are unique and dense.
        let mut slots: Vec<usize> = pl
            .holders
            .iter()
            .enumerate()
            .flat_map(|(p, hs)| hs.iter().map(move |&w| (p, w)))
            .map(|(p, w)| pl.slot(p, w))
            .collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..5).collect::<Vec<_>>());
    }
}
